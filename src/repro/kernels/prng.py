"""Counter-based PRNG with bit-identical scalar and vectorized paths.

The synthetic data generators must produce *byte-identical* datasets with
and without numpy (the 31 measurement-plane goldens and the scale-tier
digests pin them).  Stateful generators can't do that — numpy's Generator
draws have no pure-python twin — so generation is built on a stateless
counter PRNG instead:

    value(i) = splitmix64(key + GOLDEN * (i + 1))

Each logical draw has a fixed index: row ``r`` of a generator with
``draws_per_row = D`` owns indices ``r*D .. r*D + D - 1``.  Because the
draw for a row depends only on ``(key, index)``:

* the python path can evaluate draws one row at a time,
* the numpy path can evaluate a whole chunk of rows at once with wrapping
  ``uint64`` arithmetic,
* and **chunk-size invariance holds by construction** — streaming 1M rows
  in chunks of 10k or 200k yields the same bytes, which is what the
  streamed-digest goldens rely on.

Doubles come from the top 53 bits (``(x >> 11) * 2**-53``), exact in both
paths.  Categorical draws go through cumulative-weight tables built once
in pure python (see :func:`cumulative_weights`) and inverted with
``bisect_right`` / ``np.searchsorted(side='right')``, which agree on
identical doubles.  No transcendental sampling (Box–Muller etc.) is used
anywhere: non-uniform shapes are expressed as explicit finite pmfs, so
there is no libm in the reproducibility contract.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Sequence

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_MIX_1 = 0xBF58476D1CE4E5B9
_MIX_2 = 0x94D049BB133111EB
_TO_DOUBLE = 2.0 ** -53


def mix64(value: int) -> int:
    """The splitmix64 finalizer: a 64-bit bijective avalanche mix."""
    value &= _MASK64
    value ^= value >> 30
    value = (value * _MIX_1) & _MASK64
    value ^= value >> 27
    value = (value * _MIX_2) & _MASK64
    value ^= value >> 31
    return value


def stream_key(seed: int, name: str) -> int:
    """A 64-bit stream key from a user seed and a stream name.

    Distinct names decorrelate streams sharing one seed (each generator
    column family gets its own name), and the same ``(seed, name)`` always
    maps to the same key on every platform.
    """
    key = mix64((seed & _MASK64) ^ 0x5851F42D4C957F2D)
    for byte in name.encode("utf-8"):
        key = mix64(key ^ (byte + 0x100))
    return key


class CounterStream:
    """A stateless stream of uniform doubles indexed by ``(row, draw)``.

    ``draws_per_row`` fixes each row's index budget up front; generators
    must never exceed it (that would alias another row's draws).  Unused
    draw slots are simply never evaluated — skipping them costs nothing,
    unlike stateful generators where every draw advances shared state.
    """

    __slots__ = ("key", "draws_per_row")

    def __init__(self, seed: int, name: str, draws_per_row: int):
        if draws_per_row < 1:
            raise ValueError(f"draws_per_row must be >= 1, got {draws_per_row}")
        self.key = stream_key(seed, name)
        self.draws_per_row = draws_per_row

    def double(self, row: int, draw: int) -> float:
        """The uniform double in [0, 1) for one ``(row, draw)`` slot."""
        index = row * self.draws_per_row + draw
        return (mix64(self.key + _GOLDEN * (index + 1)) >> 11) * _TO_DOUBLE

    def doubles_block(self, np, row_start: int, row_count: int, draw: int):
        """Vectorized ``double`` over rows ``row_start .. +row_count`` (numpy).

        Bit-identical to the scalar path: the same wrapping 64-bit
        arithmetic evaluated with ``uint64`` arrays.  ``np`` is passed in
        so this module never imports numpy itself.
        """
        rows = np.arange(row_start, row_start + row_count, dtype=np.uint64)
        index = rows * np.uint64(self.draws_per_row) + np.uint64(draw)
        value = self.key + _GOLDEN * (index + np.uint64(1))
        value ^= value >> np.uint64(30)
        value *= np.uint64(_MIX_1)
        value ^= value >> np.uint64(27)
        value *= np.uint64(_MIX_2)
        value ^= value >> np.uint64(31)
        return (value >> np.uint64(11)).astype(np.float64) * _TO_DOUBLE


def cumulative_weights(weights: Sequence[float]) -> list[float]:
    """Normalized cumulative weights for categorical inversion.

    Built once per table in pure python (sequential accumulation), shared
    verbatim by both backends — the numpy path wraps the *same* float list
    in an array, so searchsorted and bisect see identical boundaries.  The
    final entry is pinned to exactly 1.0 so a draw of 0.999... can never
    fall off the end.
    """
    total = 0.0
    for weight in weights:
        if weight < 0 or not math.isfinite(weight):
            raise ValueError(f"weights must be finite and non-negative, got {weight}")
        total += weight
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    cumulative: list[float] = []
    running = 0.0
    for weight in weights:
        running += weight
        cumulative.append(running / total)
    cumulative[-1] = 1.0
    return cumulative


def categorical(u: float, cumulative: Sequence[float]) -> int:
    """Index of the category a uniform double falls into.

    ``bisect_right`` matches ``np.searchsorted(side='right')`` exactly on
    identical doubles, so scalar and vectorized inversion agree.
    """
    index = bisect_right(cumulative, u)
    return min(index, len(cumulative) - 1)


def bounded_int(u: float, n: int) -> int:
    """A uniform int in ``range(n)`` from one double (clamped at ``n - 1``)."""
    index = int(u * n)
    return n - 1 if index >= n else index


__all__ = [
    "CounterStream",
    "bounded_int",
    "categorical",
    "cumulative_weights",
    "mix64",
    "stream_key",
]
