"""Command-line interface.

Subcommands mirror the workflow of the examples:

* ``repro generate`` — write a synthetic Adult workload to CSV;
* ``repro anonymize`` — anonymize a generated workload with one algorithm;
* ``repro compare`` — run several algorithms and print the full
  vector-based comparison report;
* ``repro audit`` — bias-audit one algorithm's release;
* ``repro paper`` — regenerate the paper's running example tables;
* ``repro study`` — run an algorithm × k grid through the parallel,
  content-addressed study runtime (:mod:`repro.runtime`);
* ``repro worker`` — join a ``--transport socket`` study as a remote
  task worker;
* ``repro runs`` — run-directory maintenance (merge cooperative
  per-writer event logs);
* ``repro serve`` — long-lived anonymization service over HTTP
  (:mod:`repro.serve`);
* ``repro bench`` — concurrent workload benchmarks (``bench serve``);
* ``repro obs`` — summarize a run's trace/metrics artifacts
  (:mod:`repro.obs`);
* ``repro lint`` — static analysis (codebase rules + artifact checks).

Invoke as ``python -m repro.cli <command> ...`` (or the module's
:func:`main` programmatically).  Only the synthetic Adult workload is
wired up here — the CSV path keeps runs reproducible and self-contained.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from . import __version__
from .analysis import bias_summary, comparison_report
from .anonymize.algorithms import (
    Anonymizer,
    Datafly,
    Mondrian,
    MuArgus,
    OptimalLattice,
    Samarati,
)
from .core.properties import breach_probability, equivalence_class_size
from .core.rproperty import privacy_profile
from .datasets import adult_dataset, adult_hierarchies, write_csv
from .datasets import paper_tables
from .lint import cli as lint_cli
from .obs import cli as obs_cli
from .runtime import cli as runtime_cli
from .serve import cli as serve_cli
from .utility import discernibility, general_loss

ALGORITHMS = {
    "datafly": Datafly,
    "samarati": Samarati,
    "mondrian": Mondrian,
    "optimal": OptimalLattice,
    "muargus": MuArgus,
}


def _build_algorithm(name: str, k: int) -> Anonymizer:
    try:
        factory = ALGORITHMS[name]
    except KeyError:
        raise SystemExit(
            f"unknown algorithm {name!r}; choose from {sorted(ALGORITHMS)}"
        ) from None
    return factory(k)


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Vector-based comparison of disclosure control algorithms "
        "(Dewri et al., EDBT 2009).",
    )
    parser.add_argument("--version", action="version", version=__version__)
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="write a synthetic Adult workload to CSV"
    )
    generate.add_argument("output", help="destination CSV path")
    generate.add_argument("--rows", type=int, default=1000)
    generate.add_argument("--seed", type=int, default=42)

    anonymize = commands.add_parser(
        "anonymize", help="anonymize a synthetic workload and write the release"
    )
    anonymize.add_argument("output", help="destination CSV path")
    anonymize.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS), default="mondrian"
    )
    anonymize.add_argument("--k", type=int, default=5)
    anonymize.add_argument("--rows", type=int, default=1000)
    anonymize.add_argument("--seed", type=int, default=42)

    compare = commands.add_parser(
        "compare", help="compare algorithms with the vector framework"
    )
    compare.add_argument(
        "--algorithms",
        nargs="+",
        choices=sorted(ALGORITHMS),
        default=["datafly", "mondrian"],
    )
    compare.add_argument("--k", type=int, default=5)
    compare.add_argument("--rows", type=int, default=500)
    compare.add_argument("--seed", type=int, default=42)
    compare.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="anonymize algorithms in parallel worker processes via the "
        "study runtime (1 = serial in-process, the default)",
    )

    audit = commands.add_parser("audit", help="bias-audit one release")
    audit.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS), default="datafly"
    )
    audit.add_argument("--k", type=int, default=10)
    audit.add_argument("--rows", type=int, default=500)
    audit.add_argument("--seed", type=int, default=42)

    commands.add_parser(
        "paper", help="regenerate the paper's Tables 1-3 running example"
    )

    study = commands.add_parser(
        "study",
        help="run an algorithm x k grid on the parallel, memoized runtime",
    )
    runtime_cli.configure_parser(study)

    worker = commands.add_parser(
        "worker",
        help="connect to a study coordinator as a socket-transport worker",
    )
    runtime_cli.configure_worker_parser(worker)

    runs = commands.add_parser(
        "runs",
        help="run-directory maintenance (merge cooperative writer logs)",
    )
    runtime_cli.configure_runs_parser(runs)

    sweep = commands.add_parser(
        "sweep", help="k-sweep one algorithm (privacy / bias / utility)"
    )
    sweep.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS), default="mondrian"
    )
    sweep.add_argument("--ks", type=int, nargs="+", default=[2, 5, 10, 25])
    sweep.add_argument("--rows", type=int, default=500)
    sweep.add_argument("--seed", type=int, default=42)

    attack = commands.add_parser(
        "attack", help="linkage-attack one algorithm's release"
    )
    attack.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS), default="mondrian"
    )
    attack.add_argument("--k", type=int, default=5)
    attack.add_argument("--rows", type=int, default=300)
    attack.add_argument("--seed", type=int, default=42)
    attack.add_argument("--trials", type=int, default=1000)

    serve = commands.add_parser(
        "serve",
        help="start the resident anonymization service (HTTP)",
    )
    serve_cli.configure_serve_parser(serve)

    bench = commands.add_parser(
        "bench",
        help="concurrent workload benchmarks (suite: serve)",
    )
    serve_cli.configure_bench_parser(bench)

    obs = commands.add_parser(
        "obs",
        help="summarize a run directory's trace/metrics artifacts",
    )
    obs_cli.configure_parser(obs)

    lint = commands.add_parser(
        "lint",
        help="static analysis: REP00x codebase rules and artifact checks",
    )
    lint_cli.configure_parser(lint)
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    data = adult_dataset(args.rows, seed=args.seed)
    write_csv(data, args.output)
    print(f"wrote {len(data)} rows to {args.output}")
    return 0


def _cmd_anonymize(args: argparse.Namespace) -> int:
    data = adult_dataset(args.rows, seed=args.seed)
    hierarchies = adult_hierarchies()
    release = _build_algorithm(args.algorithm, args.k).anonymize(data, hierarchies)
    write_csv(release.released, args.output)
    print(
        f"{release.name}: k={release.k()} suppressed={len(release.suppressed)} "
        f"LM={general_loss(release, hierarchies):.3f} "
        f"DM={discernibility(release)}"
    )
    print(f"wrote release to {args.output}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    data = adult_dataset(args.rows, seed=args.seed)
    hierarchies = adult_hierarchies()
    if getattr(args, "jobs", 1) > 1:
        from .runtime.study import AlgorithmSpec, DatasetSpec, run_release_grid

        releases = run_release_grid(
            [AlgorithmSpec.of(name, k=args.k) for name in args.algorithms],
            DatasetSpec.of("adult", rows=args.rows, seed=args.seed),
            jobs=args.jobs,
            seed=args.seed,
        )
    else:
        releases = [
            _build_algorithm(name, args.k).anonymize(data, hierarchies)
            for name in args.algorithms
        ]
    profile = privacy_profile("occupation")
    print(comparison_report(releases, profile))
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    data = adult_dataset(args.rows, seed=args.seed)
    hierarchies = adult_hierarchies()
    release = _build_algorithm(args.algorithm, args.k).anonymize(data, hierarchies)
    print(f"release: {release.name}, k={release.k()}, "
          f"suppressed={len(release.suppressed)}")
    print(bias_summary(equivalence_class_size(release)).describe())
    print(bias_summary(breach_probability(release)).describe())
    return 0


def _cmd_paper(args: argparse.Namespace) -> int:
    print("Table 1:")
    print(paper_tables.table1().to_text())
    for name, release in paper_tables.all_generalizations().items():
        print(f"\n{name} (k={release.k()}):")
        print(release.released.to_text())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .analysis import format_sweep, k_sweep

    data = adult_dataset(args.rows, seed=args.seed)
    hierarchies = adult_hierarchies()
    rows = k_sweep(
        lambda k: _build_algorithm(args.algorithm, k),
        data,
        hierarchies,
        ks=args.ks,
    )
    print(f"{args.algorithm} on {args.rows} synthetic Adult rows:")
    print(format_sweep(rows))
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from .attack import linkage_report, simulate_linkage

    data = adult_dataset(args.rows, seed=args.seed)
    hierarchies = adult_hierarchies()
    release = _build_algorithm(args.algorithm, args.k).anonymize(data, hierarchies)
    report = linkage_report(release, hierarchies=hierarchies)
    empirical = simulate_linkage(
        release, trials=args.trials, seed=args.seed, hierarchies=hierarchies
    )
    print(f"release: {release.name} (k={release.k()})")
    print(report.describe())
    print(f"Monte Carlo re-identification rate ({args.trials} trials): "
          f"{empirical:.4f}")
    return 0


_HANDLERS = {
    "generate": _cmd_generate,
    "anonymize": _cmd_anonymize,
    "compare": _cmd_compare,
    "audit": _cmd_audit,
    "paper": _cmd_paper,
    "study": runtime_cli.run,
    "worker": runtime_cli.run_worker,
    "runs": runtime_cli.run_runs,
    "sweep": _cmd_sweep,
    "attack": _cmd_attack,
    "serve": serve_cli.run_serve,
    "bench": serve_cli.run_bench,
    "obs": obs_cli.run,
    "lint": lint_cli.run,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
