"""Counters, gauges, and histograms for the study runtime.

A :class:`MetricsRegistry` is a plain in-process accumulator: counters are
monotone sums, gauges are last-write-wins values, histograms keep
``count/sum/min/max`` (enough for hit-rates and latency summaries without
bucketing policy).  Snapshots are flat JSON-able dicts under a versioned
schema string, so they can be written next to a run manifest, merged across
worker processes, and validated by lint rule ART011.

The disabled path is :data:`NULL_METRICS`, whose mutators are no-ops — the
same zero-overhead contract as :class:`repro.obs.trace.NullTracer`.
"""

from __future__ import annotations

from typing import Any, Mapping

#: Schema tag stamped into every snapshot; bump on incompatible changes.
METRICS_SCHEMA = "repro.obs/metrics@1"


class NullMetrics:
    """Metrics sink of the disabled path: every mutator is a no-op."""

    __slots__ = ()

    enabled = False

    def inc(self, name: str, value: float = 1) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def snapshot(self) -> dict[str, Any]:
        return {
            "schema": METRICS_SCHEMA,
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        pass

    def mark(self) -> dict[str, Any]:
        return {}

    def delta_since(self, mark: Mapping[str, Any]) -> dict[str, Any]:
        return self.snapshot()


NULL_METRICS = NullMetrics()


class MetricsRegistry:
    """An enabled metrics sink accumulating counters/gauges/histograms."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        # name -> [count, sum, min, max]
        self._histograms: dict[str, list[float]] = {}

    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the counter ``name`` (created at zero)."""
        if value < 0:
            raise ValueError(f"counter increment must be >= 0, got {value}")
        self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the histogram ``name``."""
        stats = self._histograms.get(name)
        if stats is None:
            self._histograms[name] = [1, value, value, value]
        else:
            stats[0] += 1
            stats[1] += value
            if value < stats[2]:
                stats[2] = value
            if value > stats[3]:
                stats[3] = value

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (zero if never incremented)."""
        return self._counters.get(name, 0)

    def snapshot(self) -> dict[str, Any]:
        """A flat JSON-able copy of all metrics, keys sorted.

        Histograms render as ``{"count", "sum", "min", "max"}`` mappings.
        """
        return {
            "schema": METRICS_SCHEMA,
            "counters": {name: self._counters[name] for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name] for name in sorted(self._gauges)},
            "histograms": {
                name: {
                    "count": stats[0],
                    "sum": stats[1],
                    "min": stats[2],
                    "max": stats[3],
                }
                for name, stats in sorted(self._histograms.items())
            },
        }

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a snapshot (e.g. shipped back from a worker) into this one.

        Counters add, gauges last-write-win, histograms combine their
        count/sum/min/max summaries.
        """
        for name, value in snapshot.get("counters", {}).items():
            self._counters[name] = self._counters.get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            self._gauges[name] = value
        for name, incoming in snapshot.get("histograms", {}).items():
            stats = self._histograms.get(name)
            if stats is None:
                self._histograms[name] = [
                    incoming["count"],
                    incoming["sum"],
                    incoming["min"],
                    incoming["max"],
                ]
            else:
                stats[0] += incoming["count"]
                stats[1] += incoming["sum"]
                if incoming["min"] < stats[2]:
                    stats[2] = incoming["min"]
                if incoming["max"] > stats[3]:
                    stats[3] = incoming["max"]

    def mark(self) -> dict[str, Any]:
        """A snapshot usable as a baseline for :meth:`delta_since`."""
        return self.snapshot()

    def delta_since(self, mark: Mapping[str, Any]) -> dict[str, Any]:
        """What accumulated after ``mark`` was taken.

        Counters subtract (dropping zero deltas); gauges report their
        current values; histograms subtract count/sum and keep current
        min/max (exact bounds of only-the-delta samples are not
        recoverable from summaries, and hit-rates — the quantity consumed
        downstream — need only count and sum).  This is what gives a
        long-lived process per-run metric reporting instead of cumulative
        leakage across studies.
        """
        current = self.snapshot()
        base_counters = mark.get("counters", {})
        counters = {}
        for name, value in current["counters"].items():
            delta = value - base_counters.get(name, 0)
            if delta:
                counters[name] = delta
        base_hists = mark.get("histograms", {})
        histograms = {}
        for name, stats in current["histograms"].items():
            base = base_hists.get(name)
            if base is None:
                histograms[name] = stats
                continue
            count = stats["count"] - base["count"]
            if count <= 0:
                continue
            histograms[name] = {
                "count": count,
                "sum": stats["sum"] - base["sum"],
                "min": stats["min"],
                "max": stats["max"],
            }
        return {
            "schema": METRICS_SCHEMA,
            "counters": counters,
            "gauges": current["gauges"],
            "histograms": histograms,
        }
