"""repro.obs — observability plane for the study runtime.

One :class:`Observation` bundles a tracer and a metrics registry.  The
module-level *current observation* defaults to :data:`NULL_OBSERVATION`
(shared no-op singletons), so instrumented code — executor, cache, engine,
recoding workspace — calls :func:`tracer` / :func:`metrics` unconditionally
and pays nothing unless a caller has installed a live observation with
:func:`observing`.

The current observation is process-local by design: worker processes start
at the null default, the pool worker installs a fresh live observation per
task when the coordinator asks for one, and ships the recorded spans and a
metrics snapshot back in the task result (see
``repro.runtime.executor._pool_execute``).  Nothing here touches ambient
global state that could leak between sequential studies — per-run reporting
is cut with :meth:`MetricsRegistry.delta_since`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, Union

from .metrics import METRICS_SCHEMA, MetricsRegistry, NULL_METRICS, NullMetrics
from .trace import (
    NULL_TRACER,
    FakeClock,
    NullTracer,
    Span,
    Tracer,
    slowest_spans,
    span_tree,
    spans_from_payload,
)

__all__ = [
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "NULL_TRACER",
    "FakeClock",
    "NullTracer",
    "Span",
    "Tracer",
    "slowest_spans",
    "span_tree",
    "spans_from_payload",
    "Observation",
    "NULL_OBSERVATION",
    "current",
    "tracer",
    "metrics",
    "observing",
]


class Observation:
    """A tracer + metrics registry pair, enabled as a unit."""

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None):
        self.trace: Tracer = Tracer(clock=clock)
        self.metrics: MetricsRegistry = MetricsRegistry()


class _NullObservation:
    """The disabled pair installed by default."""

    __slots__ = ()

    enabled = False
    trace: NullTracer = NULL_TRACER
    metrics: NullMetrics = NULL_METRICS


NULL_OBSERVATION = _NullObservation()

_current: Union[Observation, _NullObservation] = NULL_OBSERVATION


def current() -> Union[Observation, _NullObservation]:
    """The process-local current observation (null unless installed)."""
    return _current


def tracer() -> Union[Tracer, NullTracer]:
    """The current tracer (the shared no-op tracer when disabled)."""
    return _current.trace


def metrics() -> Union[MetricsRegistry, NullMetrics]:
    """The current metrics sink (the shared no-op sink when disabled)."""
    return _current.metrics


@contextmanager
def observing(obs: Union[Observation, _NullObservation]) -> Iterator[None]:
    """Install ``obs`` as the current observation for the block's duration."""
    global _current
    previous = _current
    _current = obs
    try:
        yield
    finally:
        _current = previous
