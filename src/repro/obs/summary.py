"""Observability reports over study run directories.

``repro obs summarize RUN_DIR`` reads the artifacts one traced run leaves
behind — ``manifest.json``, ``events.jsonl``, ``trace.json``,
``metrics.json`` — and renders the three questions the runtime could not
answer before this plane existed: where did the time go (slowest task
spans), where did the cache hits go (hit-rate by algorithm), and how much
partition work was reused instead of recomputed.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Mapping

from .export import read_metrics_snapshot, spans_from_trace_file
from .trace import TASK_CATEGORY, slowest_spans

#: How many spans the slowest-tasks section lists.
SLOWEST_LIMIT = 10


def algorithm_of_task(task_id: str) -> str | None:
    """The algorithm name a study task id belongs to, if any.

    Study task ids are ``anonymize:<label>``, ``measure:<metric>:<label>``
    and ``compare:<metric>``; cell labels look like ``datafly[k=5]`` (with
    an optional ``#n`` duplicate suffix).  ``compare`` tasks span the whole
    family and carry no single algorithm.
    """
    if task_id.startswith("anonymize:"):
        label = task_id[len("anonymize:"):]
    elif task_id.startswith("measure:"):
        remainder = task_id[len("measure:"):]
        _, _, label = remainder.partition(":")
    else:
        return None
    name = label.split("[", 1)[0].split("#", 1)[0]
    return name or None


def cache_rates_by_algorithm(events: list[dict[str, Any]]) -> dict[str, dict[str, int]]:
    """Per-algorithm ``{"hits", "executed"}`` tallies from an event log."""
    tallies: dict[str, dict[str, int]] = {}
    for event in events:
        kind = event.get("event")
        if kind not in ("cache-hit", "finished"):
            continue
        task = event.get("task")
        if not isinstance(task, str):
            continue
        algorithm = algorithm_of_task(task)
        if algorithm is None:
            continue
        bucket = tallies.setdefault(algorithm, {"hits": 0, "executed": 0})
        bucket["hits" if kind == "cache-hit" else "executed"] += 1
    return tallies


def partition_reuse(counters: Mapping[str, Any]) -> dict[str, float] | None:
    """Partition-derivation tallies + reuse rate from a metrics snapshot.

    Reuse counts every partition request *not* grouped from scratch —
    LRU hits and incremental derivations — over all requests.  Returns
    ``None`` when the run recorded no partition activity.
    """
    fresh = float(counters.get("workspace.partition.fresh", 0))
    derived = float(counters.get("workspace.partition.derived", 0))
    hits = float(counters.get("workspace.partition.hit", 0))
    total = fresh + derived + hits
    if total == 0:
        return None
    return {
        "fresh": fresh,
        "derived": derived,
        "hits": hits,
        "reuse_rate": (derived + hits) / total,
    }


def summarize_run(run_dir: str | Path) -> str:
    """The full text report for one run directory."""
    # Late import: repro.runtime transitively imports the engine; obs must
    # stay importable without it for the zero-dependency core.
    from ..runtime.events import (
        EVENTS_FILENAME,
        METRICS_FILENAME,
        TRACE_FILENAME,
        read_events,
        read_manifest,
    )

    run_path = Path(run_dir)
    lines: list[str] = [f"run: {run_path}"]

    manifest: dict[str, Any] | None = None
    try:
        manifest = read_manifest(run_path)
    except (OSError, ValueError):
        lines.append("manifest: missing or unreadable")
    if manifest is not None:
        lines.append(
            f"status: {manifest.get('status', '?')}  "
            f"tasks: {manifest.get('tasks', '?')}  "
            f"executed: {manifest.get('executed', '?')}  "
            f"cache hits: {manifest.get('cache_hits', '?')}  "
            f"wall: {manifest.get('wall_seconds', 0.0):.2f}s"
        )

    trace_path = run_path / TRACE_FILENAME
    if trace_path.exists():
        spans = spans_from_trace_file(trace_path)
        slowest = slowest_spans(spans, SLOWEST_LIMIT, categories=[TASK_CATEGORY])
        if slowest:
            lines.append("")
            lines.append(f"slowest tasks (top {len(slowest)} of {len(spans)} spans):")
            width = max(len(span.name) for span in slowest)
            for span in slowest:
                lines.append(f"  {span.name.ljust(width)}  {span.duration * 1e3:9.2f} ms")
    else:
        lines.append(f"trace: no {TRACE_FILENAME} (run was not traced)")

    events = read_events(run_path / EVENTS_FILENAME)
    rates = cache_rates_by_algorithm(events)
    if rates:
        lines.append("")
        lines.append("cache hit-rate by algorithm:")
        width = max(len(name) for name in rates)
        for name in sorted(rates):
            bucket = rates[name]
            total = bucket["hits"] + bucket["executed"]
            rate = bucket["hits"] / total * 100.0 if total else 0.0
            lines.append(
                f"  {name.ljust(width)}  {bucket['hits']:>4} hit / "
                f"{total:>4} task(s)  ({rate:5.1f}%)"
            )

    metrics_path = run_path / METRICS_FILENAME
    if metrics_path.exists():
        snapshot = read_metrics_snapshot(metrics_path)
        counters = snapshot.get("counters", {})
        reuse = partition_reuse(counters)
        lines.append("")
        if reuse is not None:
            lines.append(
                f"partition reuse: {reuse['reuse_rate'] * 100.0:.1f}% "
                f"({reuse['fresh']:.0f} fresh, {reuse['derived']:.0f} derived, "
                f"{reuse['hits']:.0f} LRU hit(s))"
            )
        else:
            lines.append("partition reuse: no partition activity recorded")
        cache_counters = {
            name: value
            for name, value in sorted(counters.items())
            if name.startswith("cache.")
        }
        if cache_counters:
            rendered = "  ".join(
                f"{name.removeprefix('cache.')}={value:.0f}"
                for name, value in cache_counters.items()
            )
            lines.append(f"result cache: {rendered}")
    else:
        lines.append(f"metrics: no {METRICS_FILENAME} (run was not traced)")

    return "\n".join(lines)
