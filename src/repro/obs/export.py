"""Exporters: spans to Chrome-trace JSON, metrics to a flat snapshot file.

The trace format is the Chrome Trace Event JSON format (loadable in
``chrome://tracing`` and https://ui.perfetto.dev): an object with a
``traceEvents`` list of complete ("X") events, timestamps and durations in
microseconds.  Span ids and parent ids ride along in ``args`` so the exact
tree is recoverable from the file — that is what lint rule ART011 and the
golden fixture validate.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from ..utility.atomic import atomic_writer
from .trace import Span

#: Trace-format tag stamped into every exported trace file.
TRACE_SCHEMA = "repro.obs/trace@1"


def _atomic_write_json(payload: Any, path: Path) -> None:
    with atomic_writer(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, indent=2)
        handle.write("\n")


def chrome_trace_payload(
    spans: Sequence[Span], process_name: str = "repro"
) -> dict[str, Any]:
    """The Chrome-trace JSON object for a span list.

    Events are sorted by start time (then span id) so timestamps in the
    file are monotone non-decreasing regardless of close order.
    """
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "ts": 0,
            "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    origin = min((span.start for span in spans), default=0.0)
    known = {span.span_id for span in spans}
    for span in sorted(spans, key=lambda s: (s.start, s.span_id)):
        args: dict[str, Any] = {"span": span.span_id}
        # A parent outside the exported set (e.g. an enclosing span still
        # open when a per-run slice was cut) renders as a root.
        if span.parent_id is not None and span.parent_id in known:
            args["parent"] = span.parent_id
        args.update(span.args)
        events.append(
            {
                "ph": "X",
                "pid": 1,
                "tid": 1,
                "ts": round((span.start - origin) * 1e6, 3),
                "dur": round(max(span.duration, 0.0) * 1e6, 3),
                "name": span.name,
                "cat": span.category,
                "args": args,
            }
        )
    return {
        "schema": TRACE_SCHEMA,
        "displayTimeUnit": "ms",
        "traceEvents": events,
    }


def write_chrome_trace(
    spans: Sequence[Span], path: str | Path, process_name: str = "repro"
) -> Path:
    """Write spans to ``path`` as Chrome-trace JSON (atomic). Returns path."""
    target = Path(path)
    _atomic_write_json(chrome_trace_payload(spans, process_name), target)
    return target


def write_metrics_snapshot(snapshot: Mapping[str, Any], path: str | Path) -> Path:
    """Write a metrics snapshot to ``path`` as sorted JSON (atomic)."""
    target = Path(path)
    _atomic_write_json(dict(snapshot), target)
    return target


def read_trace_events(path: str | Path) -> list[dict[str, Any]]:
    """The ``traceEvents`` list of a Chrome-trace file."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError(f"{path}: not a Chrome-trace file (no traceEvents list)")
    return events


def spans_from_trace_file(path: str | Path) -> list[Span]:
    """Rebuild :class:`Span` objects from an exported Chrome-trace file."""
    spans: list[Span] = []
    for event in read_trace_events(path):
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args", {}))
        span_id = int(args.pop("span"))
        parent = args.pop("parent", None)
        start = float(event["ts"]) / 1e6
        spans.append(
            Span(
                span_id=span_id,
                parent_id=None if parent is None else int(parent),
                name=str(event["name"]),
                category=str(event.get("cat", "runtime")),
                start=start,
                end=start + float(event.get("dur", 0.0)) / 1e6,
                args=args,
            )
        )
    return spans


def read_metrics_snapshot(path: str | Path) -> dict[str, Any]:
    """Load a metrics snapshot file."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: not a metrics snapshot (not an object)")
    return payload


def iter_complete_events(
    events: Iterable[Mapping[str, Any]],
) -> Iterable[Mapping[str, Any]]:
    """Only the ``ph == "X"`` (complete-span) events of a trace."""
    return (event for event in events if event.get("ph") == "X")
