"""The ``repro obs`` subcommand.

Currently one action: ``repro obs summarize RUN_DIR`` — render the
observability report (slowest tasks, cache hit-rate by algorithm,
partition-reuse rate) for a run directory produced by a traced
``repro study --run-dir`` invocation.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from .summary import summarize_run


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro obs`` arguments to a subcommand parser."""
    actions = parser.add_subparsers(dest="obs_action", required=True)
    summarize = actions.add_parser(
        "summarize",
        help="report slowest tasks, cache hit-rates and partition reuse "
        "for one run directory",
    )
    summarize.add_argument(
        "run_dir",
        help="a study run directory (repro study --run-dir ...)",
    )


def run(args: argparse.Namespace) -> int:
    """Execute ``repro obs`` and return the process exit code."""
    if args.obs_action == "summarize":
        run_path = Path(args.run_dir)
        if not run_path.is_dir():
            print(f"not a run directory: {args.run_dir}")
            return 2
        has_artifacts = any(
            (run_path / name).exists()
            for name in ("manifest.json", "events.jsonl", "trace.json")
        )
        if not has_artifacts:
            print(
                f"{args.run_dir} holds no run artifacts "
                "(expected manifest.json / events.jsonl / trace.json)"
            )
            return 2
        print(summarize_run(run_path))
        return 0
    print(f"unknown obs action {args.obs_action!r}")
    return 2
