"""Deterministic span tracing for the study runtime.

A :class:`Span` is one timed interval with an explicit integer id and an
explicit parent id — no thread-locals, no global interning — so a recorded
span list is picklable, can cross the worker-pool boundary, and two runs of
the same serial study under the same clock produce byte-identical spans.

The clock is injected (``time.perf_counter`` by default): tests pin a
:class:`FakeClock` and get fully deterministic timestamps, which is what
makes the golden trace fixture possible.  Span ids are allocated
sequentially per tracer; worker-side spans are re-based into the
coordinator's id space by :meth:`Tracer.graft`, which also shifts their
timestamps onto the coordinator's clock axis.

The disabled path is a :class:`NullTracer` whose :meth:`~NullTracer.span`
returns one shared no-op context manager — no allocation, no branches in
instrumented code, and bit-identical behavior of everything it wraps.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Callable, Iterable, Mapping, Sequence

#: Span category used by executor task spans (one per attempt).
TASK_CATEGORY = "task"


@dataclasses.dataclass
class Span:
    """One completed timed interval.

    ``span_id``/``parent_id`` are explicit (``parent_id`` is ``None`` for
    roots), so the tree structure survives pickling and process boundaries
    without any ambient state.
    """

    span_id: int
    parent_id: int | None
    name: str
    category: str
    start: float
    end: float
    args: dict[str, Any] = dataclasses.field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Wall-clock length of the span in clock units (seconds)."""
        return self.end - self.start


class _ActiveSpan:
    """Context manager recording one span on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    @property
    def span_id(self) -> int:
        return self._span.span_id

    @property
    def duration(self) -> float:
        """Span length; only meaningful after ``__exit__``."""
        return self._span.duration

    def set(self, **args: Any) -> None:
        """Attach extra arguments to the span."""
        self._span.args.update(args)

    def __enter__(self) -> "_ActiveSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, traceback: Any) -> bool:
        if exc_type is not None:
            self._span.args["error"] = exc_type.__name__
        self._tracer._close(self._span)
        return False


class NullSpan:
    """The shared no-op span of the disabled path."""

    __slots__ = ()

    span_id = 0
    duration = 0.0

    def set(self, **args: Any) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, traceback: Any) -> bool:
        return False


NULL_SPAN = NullSpan()


class NullTracer:
    """Tracer of the disabled path: every call is a no-op.

    ``span`` returns the one shared :data:`NULL_SPAN` instance, so the
    untraced hot path performs no allocation and records nothing.
    """

    __slots__ = ()

    enabled = False
    spans: tuple[Span, ...] = ()

    def span(self, name: str, category: str = "runtime", **args: Any) -> NullSpan:
        return NULL_SPAN

    def now(self) -> float:
        return 0.0

    def current_id(self) -> int | None:
        return None

    def graft(
        self,
        spans: Sequence[Span],
        parent_id: int | None = None,
        shift: float = 0.0,
    ) -> None:
        pass


NULL_TRACER = NullTracer()


class Tracer:
    """Records spans against an injected monotonic clock.

    Parameters
    ----------
    clock:
        Zero-argument callable returning monotonically non-decreasing
        floats.  Defaults to ``time.perf_counter``; tests inject a
        :class:`FakeClock` for deterministic fixtures.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None):
        self.clock = clock if clock is not None else time.perf_counter
        self.spans: list[Span] = []
        self._stack: list[int] = []
        self._next_id = 1

    def now(self) -> float:
        """The current clock reading."""
        return self.clock()

    def current_id(self) -> int | None:
        """Id of the innermost open span (``None`` outside any span)."""
        return self._stack[-1] if self._stack else None

    def _allocate_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def span(self, name: str, category: str = "runtime", **args: Any) -> _ActiveSpan:
        """Open a span as a context manager; recorded when it exits."""
        span = Span(
            span_id=self._allocate_id(),
            parent_id=self.current_id(),
            name=name,
            category=category,
            start=self.clock(),
            end=0.0,
            args=dict(args),
        )
        self._stack.append(span.span_id)
        return _ActiveSpan(self, span)

    def _close(self, span: Span) -> None:
        span.end = self.clock()
        # Spans always close innermost-first (context managers), but guard
        # against a caller holding one open across another's exit.
        if self._stack and self._stack[-1] == span.span_id:
            self._stack.pop()
        elif span.span_id in self._stack:
            self._stack.remove(span.span_id)
        self.spans.append(span)

    def graft(
        self,
        spans: Sequence[Span],
        parent_id: int | None = None,
        shift: float = 0.0,
    ) -> None:
        """Adopt foreign (worker-side) spans into this tracer.

        Ids are re-based into this tracer's sequence (preserving the
        foreign parent/child structure); foreign roots become children of
        ``parent_id`` (or of the current open span when ``None``); all
        timestamps are shifted by ``shift`` to land on this tracer's clock
        axis.
        """
        if parent_id is None:
            parent_id = self.current_id()
        mapping = {span.span_id: self._allocate_id() for span in spans}
        for span in spans:
            self.spans.append(
                Span(
                    span_id=mapping[span.span_id],
                    parent_id=mapping.get(span.parent_id, parent_id),
                    name=span.name,
                    category=span.category,
                    start=span.start + shift,
                    end=span.end + shift,
                    args=dict(span.args),
                )
            )


class FakeClock:
    """A deterministic clock: every reading advances by a fixed step.

    Injected into :class:`Tracer` by tests and the golden-fixture
    generator so span timestamps depend only on the *sequence* of clock
    reads, never on the machine.
    """

    def __init__(self, start: float = 0.0, step: float = 0.001):
        self._now = float(start)
        self._step = float(step)

    def __call__(self) -> float:
        self._now += self._step
        return self._now


def span_index(spans: Iterable[Span]) -> dict[int, Span]:
    """Spans keyed by id (raises on duplicate ids)."""
    index: dict[int, Span] = {}
    for span in spans:
        if span.span_id in index:
            raise ValueError(f"duplicate span id {span.span_id}")
        index[span.span_id] = span
    return index


def span_tree(spans: Iterable[Span]) -> list[dict[str, Any]]:
    """The forest structure of a span list, timing-free.

    Returns nested ``{"name", "category", "children"}`` dicts with
    children (and roots) sorted by ``(name, category)`` recursively — the
    canonical form used to compare a serial run's trace against a parallel
    one, where only scheduling order may differ.
    """
    children: dict[int | None, list[Span]] = {}
    index = span_index(spans)
    for span in index.values():
        parent = span.parent_id if span.parent_id in index else None
        children.setdefault(parent, []).append(span)

    def build(span: Span) -> dict[str, Any]:
        return {
            "name": span.name,
            "category": span.category,
            "children": sorted(
                (build(child) for child in children.get(span.span_id, ())),
                key=lambda node: (node["name"], node["category"]),
            ),
        }

    return sorted(
        (build(root) for root in children.get(None, ())),
        key=lambda node: (node["name"], node["category"]),
    )


def slowest_spans(
    spans: Iterable[Span],
    limit: int = 10,
    categories: Sequence[str] | None = None,
) -> list[Span]:
    """The ``limit`` longest spans, optionally restricted to categories."""
    wanted = None if categories is None else set(categories)
    pool = [
        span
        for span in spans
        if wanted is None or span.category in wanted
    ]
    pool.sort(key=lambda span: (-span.duration, span.name, span.span_id))
    return pool[:limit]


def spans_from_payload(records: Iterable[Mapping[str, Any]]) -> list[Span]:
    """Rebuild spans from their dict form (trace files, JSON payloads)."""
    spans = []
    for record in records:
        spans.append(
            Span(
                span_id=int(record["span_id"]),
                parent_id=(
                    None
                    if record.get("parent_id") is None
                    else int(record["parent_id"])
                ),
                name=str(record["name"]),
                category=str(record.get("category", "runtime")),
                start=float(record["start"]),
                end=float(record["end"]),
                args=dict(record.get("args", {})),
            )
        )
    return spans
