"""Parametric synthetic workloads with controllable skew.

Anonymization bias (Section 2 of the paper) is driven by skew in the joint
quasi-identifier distribution: uniform data packs equivalence classes
evenly, skewed data leaves a long tail of small classes that drag the
scalar k down while most tuples enjoy far larger classes.  This generator
exposes the skew as a single dial, so the bias-vs-skew relationship can be
measured (benchmark E7).

Schema: two numeric QIs, two categorical QIs, one sensitive attribute.
"""

from __future__ import annotations

import numpy as np

from ..hierarchy.base import Hierarchy
from ..hierarchy.categorical import TaxonomyHierarchy
from ..hierarchy.numeric import Banding, IntervalHierarchy
from .dataset import Dataset
from .schema import AttributeKind, Schema, quasi_identifier, sensitive

NUMERIC_BOUNDS = (0.0, 100.0)
CATEGORY_COUNT = 12
SENSITIVE_VALUES = ("A", "B", "C", "D", "E")


def synthetic_schema() -> Schema:
    """Schema of the skewable workload."""
    return Schema.of(
        quasi_identifier("x", AttributeKind.NUMERIC),
        quasi_identifier("y", AttributeKind.NUMERIC),
        quasi_identifier("group", AttributeKind.CATEGORICAL),
        quasi_identifier("region", AttributeKind.CATEGORICAL),
        sensitive("condition", AttributeKind.CATEGORICAL),
    )


def _zipf_probabilities(count: int, skew: float) -> np.ndarray:
    ranks = np.arange(1, count + 1, dtype=float)
    weights = ranks ** (-skew) if skew > 0 else np.ones(count)
    return weights / weights.sum()


def skewed_dataset(size: int, skew: float, seed: int = 0) -> Dataset:
    """Generate ``size`` rows whose QI distribution skew is ``skew``.

    ``skew = 0`` gives uniform categories and uniform numerics; larger
    values give Zipf-distributed categories (exponent = ``skew``) and
    numerics concentrated around a mode with variance shrinking in
    ``skew`` (so popular combinations pile up).
    """
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    if skew < 0:
        raise ValueError(f"skew must be non-negative, got {skew}")
    rng = np.random.default_rng(seed)
    low, high = NUMERIC_BOUNDS
    categories = [f"g{i}" for i in range(CATEGORY_COUNT)]
    regions = [f"r{i}" for i in range(CATEGORY_COUNT)]
    category_p = _zipf_probabilities(CATEGORY_COUNT, skew)

    rows = []
    for _ in range(size):
        if skew == 0:
            x = rng.uniform(low, high)
            y = rng.uniform(low, high)
        else:
            spread = (high - low) / (2.0 + 2.0 * skew)
            x = float(np.clip(rng.normal((low + high) / 2, spread), low, high))
            y = float(np.clip(rng.normal((low + high) / 3, spread), low, high))
        group = categories[rng.choice(CATEGORY_COUNT, p=category_p)]
        region = regions[rng.choice(CATEGORY_COUNT, p=category_p)]
        condition = SENSITIVE_VALUES[
            rng.choice(len(SENSITIVE_VALUES), p=_zipf_probabilities(
                len(SENSITIVE_VALUES), skew / 2
            ))
        ]
        rows.append((round(x, 1), round(y, 1), group, region, condition))
    return Dataset(synthetic_schema(), rows)


def synthetic_hierarchies() -> dict[str, Hierarchy]:
    """Fixed hierarchies for the skewable workload (independent of skew, so
    bias differences come from the data alone)."""
    def numeric(name: str) -> IntervalHierarchy:
        return IntervalHierarchy(
            name,
            [Banding(5), Banding(10), Banding(25), Banding(50)],
            NUMERIC_BOUNDS,
        )

    def grouped(name: str, prefix: str) -> TaxonomyHierarchy:
        # 12 leaves -> 4 triads -> 2 halves -> *
        paths = {}
        for i in range(CATEGORY_COUNT):
            paths[f"{prefix}{i}"] = (
                f"{name}:{i // 3}",
                f"{name}:half{i // 6}",
            )
        return TaxonomyHierarchy(name, paths)

    return {
        "x": numeric("x"),
        "y": numeric("y"),
        "group": grouped("group", "g"),
        "region": grouped("region", "r"),
    }
