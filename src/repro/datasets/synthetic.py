"""Parametric synthetic workloads with controllable skew.

Anonymization bias (Section 2 of the paper) is driven by skew in the joint
quasi-identifier distribution: uniform data packs equivalence classes
evenly, skewed data leaves a long tail of small classes that drag the
scalar k down while most tuples enjoy far larger classes.  This generator
exposes the skew as a single dial, so the bias-vs-skew relationship can be
measured (benchmark E7).

Schema: two numeric QIs, two categorical QIs, one sensitive attribute.
Numerics live on a fixed 0.1-step grid over :data:`NUMERIC_BOUNDS`;
skewed numerics are discrete gaussian pmfs over that grid, so no
transcendental sampler sits on the per-row path and the counter-PRNG
generation (see :mod:`repro.kernels.prng`) is byte-identical with and
without numpy.  :func:`iter_skewed_chunks` streams the table chunk-wise.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..hierarchy.base import Hierarchy
from ..hierarchy.categorical import TaxonomyHierarchy
from ..hierarchy.numeric import Banding, IntervalHierarchy
from ..kernels import active as active_kernels
from ..kernels.prng import CounterStream, bounded_int, categorical, cumulative_weights
from .dataset import Dataset
from .schema import AttributeKind, Schema, quasi_identifier, sensitive
from .streaming import (
    DEFAULT_CHUNK_ROWS,
    check_chunking,
    chunk_spans,
    dataset_from_chunks,
    normal_weights,
)

NUMERIC_BOUNDS = (0.0, 100.0)
CATEGORY_COUNT = 12
SENSITIVE_VALUES = ("A", "B", "C", "D", "E")

#: The numeric value grid: 0.0, 0.1, ..., 100.0.
_GRID = [position / 10.0 for position in range(1001)]

_DRAWS_PER_ROW = 5
_D_X, _D_Y, _D_GROUP, _D_REGION, _D_CONDITION = range(_DRAWS_PER_ROW)
_STREAM_NAME = "synthetic"


def synthetic_schema() -> Schema:
    """Schema of the skewable workload."""
    return Schema.of(
        quasi_identifier("x", AttributeKind.NUMERIC),
        quasi_identifier("y", AttributeKind.NUMERIC),
        quasi_identifier("group", AttributeKind.CATEGORICAL),
        quasi_identifier("region", AttributeKind.CATEGORICAL),
        sensitive("condition", AttributeKind.CATEGORICAL),
    )


def _zipf_weights(count: int, skew: float) -> list[float]:
    """Unnormalized Zipf weights (uniform at ``skew == 0``)."""
    return [float(rank) ** -skew for rank in range(1, count + 1)]


class _SkewTables:
    """Per-``skew`` cumulative tables, shared by both generation paths."""

    def __init__(self, skew: float):
        low, high = NUMERIC_BOUNDS
        self.categories = [f"g{i}" for i in range(CATEGORY_COUNT)]
        self.regions = [f"r{i}" for i in range(CATEGORY_COUNT)]
        self.category_cum = cumulative_weights(
            _zipf_weights(CATEGORY_COUNT, skew)
        )
        self.condition_cum = cumulative_weights(
            _zipf_weights(len(SENSITIVE_VALUES), skew / 2)
        )
        if skew == 0:
            # Uniform numerics invert directly through bounded_int.
            self.x_cum = self.y_cum = None
        else:
            spread = (high - low) / (2.0 + 2.0 * skew)
            self.x_cum = cumulative_weights(
                normal_weights(_GRID, (low + high) / 2, spread)
            )
            self.y_cum = cumulative_weights(
                normal_weights(_GRID, (low + high) / 3, spread)
            )


def _python_chunk(
    stream: CounterStream, tables: _SkewTables, row_start: int, row_count: int
) -> list[tuple[Any, ...]]:
    """Scalar generation path — the executable specification."""
    rows: list[tuple[Any, ...]] = []
    for row in range(row_start, row_start + row_count):
        u_x = stream.double(row, _D_X)
        u_y = stream.double(row, _D_Y)
        if tables.x_cum is None:
            x = _GRID[bounded_int(u_x, len(_GRID))]
            y = _GRID[bounded_int(u_y, len(_GRID))]
        else:
            x = _GRID[categorical(u_x, tables.x_cum)]
            y = _GRID[categorical(u_y, tables.y_cum)]
        group = tables.categories[
            categorical(stream.double(row, _D_GROUP), tables.category_cum)
        ]
        region = tables.regions[
            categorical(stream.double(row, _D_REGION), tables.category_cum)
        ]
        condition = SENSITIVE_VALUES[
            categorical(stream.double(row, _D_CONDITION), tables.condition_cum)
        ]
        rows.append((x, y, group, region, condition))
    return rows


def _numpy_chunk(
    np, stream: CounterStream, tables: _SkewTables, row_start: int, row_count: int
) -> list[tuple[Any, ...]]:
    """Vectorized generation path; byte-identical to :func:`_python_chunk`."""
    draws = [
        stream.doubles_block(np, row_start, row_count, slot)
        for slot in range(_DRAWS_PER_ROW)
    ]

    def invert(cumulative: list[float], u):
        index = np.searchsorted(np.asarray(cumulative), u, side="right")
        return np.minimum(index, len(cumulative) - 1)

    if tables.x_cum is None:
        grid_size = len(_GRID)
        x_index = np.minimum(
            (draws[_D_X] * grid_size).astype(np.int64), grid_size - 1
        )
        y_index = np.minimum(
            (draws[_D_Y] * grid_size).astype(np.int64), grid_size - 1
        )
    else:
        x_index = invert(tables.x_cum, draws[_D_X])
        y_index = invert(tables.y_cum, draws[_D_Y])
    group_index = invert(tables.category_cum, draws[_D_GROUP])
    region_index = invert(tables.category_cum, draws[_D_REGION])
    condition_index = invert(tables.condition_cum, draws[_D_CONDITION])

    x_column = [_GRID[i] for i in x_index.tolist()]
    y_column = [_GRID[i] for i in y_index.tolist()]
    group_column = [tables.categories[i] for i in group_index.tolist()]
    region_column = [tables.regions[i] for i in region_index.tolist()]
    condition_column = [SENSITIVE_VALUES[i] for i in condition_index.tolist()]
    return list(
        zip(x_column, y_column, group_column, region_column, condition_column)
    )


def iter_skewed_chunks(
    size: int,
    skew: float,
    seed: int = 0,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> Iterator[list[tuple[Any, ...]]]:
    """Stream ``size`` skewed rows in bounded-memory chunks.

    The concatenation of the chunks is independent of ``chunk_rows`` and
    identical to ``skewed_dataset(size, skew, seed).rows`` — byte for
    byte, with or without numpy.
    """
    check_chunking(size, chunk_rows)
    if skew < 0:
        raise ValueError(f"skew must be non-negative, got {skew}")
    stream = CounterStream(seed, _STREAM_NAME, _DRAWS_PER_ROW)
    tables = _SkewTables(skew)
    kernels = active_kernels()
    for row_start, row_count in chunk_spans(size, chunk_rows):
        if kernels.is_numpy:
            yield _numpy_chunk(kernels.numpy, stream, tables, row_start, row_count)
        else:
            yield _python_chunk(stream, tables, row_start, row_count)


def skewed_dataset(size: int, skew: float, seed: int = 0) -> Dataset:
    """Generate ``size`` rows whose QI distribution skew is ``skew``.

    ``skew = 0`` gives uniform categories and uniform numerics; larger
    values give Zipf-distributed categories (exponent = ``skew``) and
    numerics concentrated around a mode with variance shrinking in
    ``skew`` (so popular combinations pile up).
    """
    return dataset_from_chunks(
        synthetic_schema(), iter_skewed_chunks(size, skew, seed)
    )


def synthetic_hierarchies() -> dict[str, Hierarchy]:
    """Fixed hierarchies for the skewable workload (independent of skew, so
    bias differences come from the data alone)."""
    def numeric(name: str) -> IntervalHierarchy:
        return IntervalHierarchy(
            name,
            [Banding(5), Banding(10), Banding(25), Banding(50)],
            NUMERIC_BOUNDS,
        )

    def grouped(name: str, prefix: str) -> TaxonomyHierarchy:
        # 12 leaves -> 4 triads -> 2 halves -> *
        paths = {}
        for i in range(CATEGORY_COUNT):
            paths[f"{prefix}{i}"] = (
                f"{name}:{i // 3}",
                f"{name}:half{i // 6}",
            )
        return TaxonomyHierarchy(name, paths)

    return {
        "x": numeric("x"),
        "y": numeric("y"),
        "group": grouped("group", "g"),
        "region": grouped("region", "r"),
    }
