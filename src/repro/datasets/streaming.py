"""Chunked generation plumbing shared by the synthetic generators.

The generators in this package are built on the counter PRNG
(:mod:`repro.kernels.prng`): every row's draws are indexed by the row
number alone, so a table can be produced in chunks of any size with flat
memory and the *same bytes* regardless of chunking.  This module holds the
pieces every generator shares:

* :data:`DEFAULT_CHUNK_ROWS` — the chunk granularity used when callers
  don't pick one;
* :func:`dataset_from_chunks` — materialize a full :class:`Dataset` from a
  chunk iterator (the small-``size`` convenience path);
* :func:`chunk_digest` — a streaming SHA-256 over the canonical text
  encoding of the rows, independent of chunk boundaries.  The scale-tier
  goldens pin these digests at 100k/1M rows, which is what certifies that
  the numpy and pure-python generation paths produce byte-identical
  tables without ever materializing them.
"""

from __future__ import annotations

import hashlib
import math
from typing import Any, Iterable, Iterator, Sequence

from .dataset import Dataset
from .schema import Schema

#: Rows generated per chunk unless the caller chooses otherwise.  Large
#: enough to amortize per-chunk overhead, small enough that a chunk of
#: decoded python rows stays a few megabytes.
DEFAULT_CHUNK_ROWS = 65536


def check_chunking(size: int, chunk_rows: int) -> None:
    """Validate a generator's ``(size, chunk_rows)`` arguments."""
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")


def chunk_spans(size: int, chunk_rows: int) -> Iterator[tuple[int, int]]:
    """Yield ``(row_start, row_count)`` spans covering ``range(size)``."""
    start = 0
    while start < size:
        count = min(chunk_rows, size - start)
        yield start, count
        start += count


def dataset_from_chunks(
    schema: Schema, chunks: Iterable[Sequence[tuple[Any, ...]]]
) -> Dataset:
    """Materialize a dataset from a row-chunk iterator."""
    rows: list[tuple[Any, ...]] = []
    for chunk in chunks:
        rows.extend(chunk)
    return Dataset(schema, rows)


def chunk_digest(chunks: Iterable[Sequence[tuple[Any, ...]]]) -> str:
    """Streaming SHA-256 of the canonical row encoding.

    Rows are encoded as ``repr(row)`` lines — ``repr`` of python floats is
    the shortest round-tripping decimal form, so the digest is exact on
    values, platform-independent, and (because rows are counter-indexed)
    independent of how the stream was chunked.
    """
    digest = hashlib.sha256()
    for chunk in chunks:
        for row in chunk:
            digest.update(repr(row).encode("utf-8"))
            digest.update(b"\n")
    return digest.hexdigest()


def normal_weights(values: Sequence[float], mean: float, sd: float) -> list[float]:
    """Discrete gaussian pmf weights over a finite value grid.

    The generators express every "normal" marginal as an explicit finite
    pmf over its value grid instead of calling a transcendental sampler:
    the weights are built once per table in pure python, so no libm call
    sits on the per-row path of either backend (see
    :mod:`repro.kernels.prng` for why that matters).
    """
    if sd <= 0:
        raise ValueError(f"sd must be positive, got {sd}")
    return [math.exp(-0.5 * ((value - mean) / sd) ** 2) for value in values]


__all__ = [
    "DEFAULT_CHUNK_ROWS",
    "check_chunking",
    "chunk_digest",
    "chunk_spans",
    "dataset_from_chunks",
    "normal_weights",
]
