"""Immutable microdata tables.

A :class:`Dataset` is an ordered, immutable collection of tuples over a
:class:`~repro.datasets.schema.Schema`.  Row order is significant: the paper's
property vectors (Definition 1) assign the i-th vector element to the i-th
tuple of the data set, and anonymizations never reorder or drop rows — even
suppressed tuples are "retained in an overly generalized form" (Section 3) so
that the original and anonymized data sets have the same size.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence

from .schema import Attribute, Schema, SchemaError

if TYPE_CHECKING:  # pragma: no cover - typing-only import (cycle guard)
    from .columnar import ColumnarView

Row = tuple[Any, ...]


def _fingerprint_token(value: Any) -> bytes:
    """A stable byte serialization of one cell value.

    ``repr`` of the builtin scalar types is stable across processes and
    Python invocations (no ``PYTHONHASHSEED`` dependence); the type name
    disambiguates values whose reprs collide (``1`` vs ``True`` vs ``"1"``).
    Set-valued cells (set-generalized categories) serialize element-wise in
    sorted token order: a set's *iteration* order depends on its insertion
    history, so ``repr`` would fingerprint the same released cell
    differently before and after a pickle round-trip through the result
    cache.
    """
    if isinstance(value, (set, frozenset)):
        inner = b"".join(sorted(_fingerprint_token(item) for item in value))
        return f"{type(value).__name__}[".encode("utf-8") + inner + b"]\x1f"
    return f"{type(value).__name__}:{value!r}\x1f".encode("utf-8")


class DatasetError(ValueError):
    """Raised for malformed rows or invalid dataset operations."""


class Dataset:
    """An immutable table of microdata rows.

    Parameters
    ----------
    schema:
        Column definitions with disclosure-control roles.
    rows:
        Row tuples; each must have exactly ``len(schema)`` values.
    """

    __slots__ = ("_schema", "_rows", "_column_cache", "_columnar")

    def __init__(self, schema: Schema, rows: Sequence[Sequence[Any]]):
        materialized: list[Row] = []
        width = len(schema)
        for position, row in enumerate(rows):
            row_tuple = tuple(row)
            if len(row_tuple) != width:
                raise DatasetError(
                    f"row {position} has {len(row_tuple)} values, expected {width}"
                )
            materialized.append(row_tuple)
        self._schema = schema
        self._rows: tuple[Row, ...] = tuple(materialized)
        self._column_cache: dict[str, tuple[Any, ...]] = {}
        self._columnar: Any = None

    # -- basic container protocol ------------------------------------------

    @property
    def schema(self) -> Schema:
        """The table's column definitions."""
        return self._schema

    @property
    def rows(self) -> tuple[Row, ...]:
        """All rows, in original order."""
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __getitem__(self, index: int) -> Row:
        return self._rows[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Dataset):
            return NotImplemented
        return self._schema == other._schema and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self._schema, self._rows))

    def __repr__(self) -> str:
        return f"Dataset({len(self)} rows x {len(self._schema)} attributes)"

    # -- identity ------------------------------------------------------------

    def fingerprint(self) -> str:
        """A stable sha256 content fingerprint of the table.

        Hashes the schema (names, kinds, roles) and every cell value,
        column by column with columns taken in *sorted name order*, so two
        datasets holding the same columns in different insertion order
        fingerprint identically.  Row order *does* matter: property vectors
        are index-aligned with rows (Definition 1), so reordering rows is a
        semantically different table.  The digest is independent of the
        process (no ``PYTHONHASHSEED`` dependence) and is the dataset
        component of the runtime's content-addressed cache keys.
        """
        hasher = hashlib.sha256()
        hasher.update(f"rows:{len(self._rows)}\x1e".encode("utf-8"))
        order = sorted(
            range(len(self._schema)),
            key=lambda position: self._schema.attributes[position].name,
        )
        for position in order:
            attribute = self._schema.attributes[position]
            hasher.update(
                f"col:{attribute.name}|{attribute.kind.value}|"
                f"{attribute.role.value}\x1e".encode("utf-8")
            )
            for row in self._rows:
                hasher.update(_fingerprint_token(row[position]))
        return hasher.hexdigest()

    # -- column access ------------------------------------------------------

    def column(self, name: str) -> tuple[Any, ...]:
        """All values of the named column, in row order.

        The tuple is memoized (the dataset is immutable), so repeated calls
        return the *same* object — identity-keyed caches downstream (level
        tables, per-column class histograms) rely on this.
        """
        cached = self._column_cache.get(name)
        if cached is None:
            position = self._schema.index_of(name)
            cached = tuple(row[position] for row in self._rows)
            self._column_cache[name] = cached
        return cached

    def columns(self) -> "ColumnarView":
        """The columnar plane of this dataset (interned codes; cached).

        See :mod:`repro.datasets.columnar` — each accessed column is
        interned once into dense integer codes plus a decode table, shared
        by every consumer of this dataset object.
        """
        if self._columnar is None:
            from .columnar import ColumnarView

            self._columnar = ColumnarView(self)
        return self._columnar

    def value(self, row_index: int, attribute: str) -> Any:
        """Value of one cell."""
        return self._rows[row_index][self._schema.index_of(attribute)]

    def distinct(self, name: str) -> set[Any]:
        """Distinct values of the named column."""
        return set(self.column(name))

    def quasi_identifier_tuple(self, row_index: int) -> Row:
        """The QI projection of one row."""
        row = self._rows[row_index]
        return tuple(row[i] for i in self._schema.quasi_identifier_indices)

    def quasi_identifier_tuples(self) -> tuple[Row, ...]:
        """QI projections of all rows, in row order."""
        indices = self._schema.quasi_identifier_indices
        return tuple(tuple(row[i] for i in indices) for row in self._rows)

    # -- derivation ---------------------------------------------------------

    def replace_rows(self, rows: Sequence[Sequence[Any]]) -> "Dataset":
        """A new dataset with the same schema and different rows."""
        return Dataset(self._schema, rows)

    def with_roles(self, roles: dict[str, Any]) -> "Dataset":
        """A copy with attribute roles reassigned (same rows)."""
        return Dataset(self._schema.with_roles(roles), self._rows)

    def select(self, predicate: Callable[[Row], bool]) -> "Dataset":
        """Rows satisfying ``predicate`` (a *new* dataset; row order kept)."""
        return Dataset(self._schema, [row for row in self._rows if predicate(row)])

    def project(self, names: Sequence[str]) -> "Dataset":
        """A dataset restricted to the named columns (order as given)."""
        positions = [self._schema.index_of(name) for name in names]
        attributes = tuple(self._schema.attributes[p] for p in positions)
        rows = [tuple(row[p] for p in positions) for row in self._rows]
        return Dataset(Schema(attributes), rows)

    def head(self, count: int) -> "Dataset":
        """The first ``count`` rows."""
        return Dataset(self._schema, self._rows[:count])

    # -- rendering ----------------------------------------------------------

    def to_text(self, max_rows: int | None = 20) -> str:
        """A plain-text rendering (for examples and reports)."""
        names = self._schema.names
        shown = self._rows if max_rows is None else self._rows[:max_rows]
        cells = [[str(v) for v in row] for row in shown]
        widths = [
            max([len(name)] + [len(row[i]) for row in cells]) if cells else len(name)
            for i, name in enumerate(names)
        ]
        def fmt(values: Sequence[str]) -> str:
            return "  ".join(value.ljust(width) for value, width in zip(values, widths))

        lines = [fmt(names), fmt(["-" * w for w in widths])]
        lines.extend(fmt(row) for row in cells)
        if max_rows is not None and len(self._rows) > max_rows:
            lines.append(f"... ({len(self._rows) - max_rows} more rows)")
        return "\n".join(lines)


def dataset_from_records(
    schema: Schema, records: Sequence[dict[str, Any]]
) -> Dataset:
    """Build a dataset from dict-records keyed by attribute name."""
    rows = []
    for position, record in enumerate(records):
        missing = set(schema.names) - set(record)
        if missing:
            raise DatasetError(f"record {position} missing attributes {sorted(missing)}")
        rows.append(tuple(record[name] for name in schema.names))
    return Dataset(schema, rows)
