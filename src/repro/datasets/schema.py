"""Attribute schemas for microdata tables.

A :class:`Schema` describes the columns of a microdata table and the role each
column plays in disclosure control:

* *quasi-identifiers* (QI) — attributes an adversary may link against external
  data (zip code, age, ...); these are the attributes that get generalized.
* *sensitive* attributes — the values whose association with an individual must
  be protected (disease, salary, marital status, ...).
* *insensitive* attributes — everything else; carried through untouched.

The roles follow the standard microdata model used throughout the paper
(Sweeney 2002; Machanavajjhala et al. 2006).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator


class AttributeRole(enum.Enum):
    """Role of an attribute in the disclosure control model."""

    QUASI_IDENTIFIER = "quasi-identifier"
    SENSITIVE = "sensitive"
    INSENSITIVE = "insensitive"


class AttributeKind(enum.Enum):
    """Value domain kind; drives which generalization hierarchies apply."""

    CATEGORICAL = "categorical"
    NUMERIC = "numeric"
    STRING = "string"


@dataclass(frozen=True)
class Attribute:
    """A single column of a microdata table.

    Parameters
    ----------
    name:
        Column name, unique within a schema.
    kind:
        Domain kind (categorical, numeric or string).
    role:
        Disclosure-control role of the column.
    """

    name: str
    kind: AttributeKind = AttributeKind.CATEGORICAL
    role: AttributeRole = AttributeRole.INSENSITIVE

    @property
    def is_quasi_identifier(self) -> bool:
        """Whether this attribute is a quasi-identifier."""
        return self.role is AttributeRole.QUASI_IDENTIFIER

    @property
    def is_sensitive(self) -> bool:
        """Whether this attribute is sensitive."""
        return self.role is AttributeRole.SENSITIVE


class SchemaError(ValueError):
    """Raised for malformed schemas or unknown attribute lookups."""


@dataclass(frozen=True)
class Schema:
    """An ordered collection of :class:`Attribute` objects.

    The schema is immutable; all lookups are by attribute name.
    """

    attributes: tuple[Attribute, ...]
    _index: dict[str, int] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        index: dict[str, int] = {}
        for position, attribute in enumerate(self.attributes):
            if attribute.name in index:
                raise SchemaError(f"duplicate attribute name: {attribute.name!r}")
            index[attribute.name] = position
        object.__setattr__(self, "_index", index)

    @classmethod
    def of(cls, *attributes: Attribute) -> "Schema":
        """Build a schema from attributes given in column order."""
        return cls(tuple(attributes))

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def index_of(self, name: str) -> int:
        """Column position of the named attribute."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"unknown attribute: {name!r}") from None

    def attribute(self, name: str) -> Attribute:
        """The named :class:`Attribute`."""
        return self.attributes[self.index_of(name)]

    @property
    def names(self) -> tuple[str, ...]:
        """All attribute names, in column order."""
        return tuple(attribute.name for attribute in self.attributes)

    @property
    def quasi_identifiers(self) -> tuple[Attribute, ...]:
        """The quasi-identifier attributes, in column order."""
        return tuple(a for a in self.attributes if a.is_quasi_identifier)

    @property
    def quasi_identifier_names(self) -> tuple[str, ...]:
        """Names of the quasi-identifier attributes."""
        return tuple(a.name for a in self.quasi_identifiers)

    @property
    def quasi_identifier_indices(self) -> tuple[int, ...]:
        """Column positions of the quasi-identifier attributes."""
        return tuple(
            position
            for position, attribute in enumerate(self.attributes)
            if attribute.is_quasi_identifier
        )

    @property
    def sensitive(self) -> tuple[Attribute, ...]:
        """The sensitive attributes, in column order."""
        return tuple(a for a in self.attributes if a.is_sensitive)

    @property
    def sensitive_names(self) -> tuple[str, ...]:
        """Names of the sensitive attributes."""
        return tuple(a.name for a in self.sensitive)

    def with_roles(self, roles: dict[str, AttributeRole]) -> "Schema":
        """A copy of this schema with the given attribute roles replaced."""
        unknown = set(roles) - set(self._index)
        if unknown:
            raise SchemaError(f"unknown attributes in role map: {sorted(unknown)}")
        replaced = tuple(
            Attribute(a.name, a.kind, roles.get(a.name, a.role))
            for a in self.attributes
        )
        return Schema(replaced)


def quasi_identifier(name: str, kind: AttributeKind = AttributeKind.CATEGORICAL) -> Attribute:
    """Convenience constructor for a quasi-identifier attribute."""
    return Attribute(name, kind, AttributeRole.QUASI_IDENTIFIER)


def sensitive(name: str, kind: AttributeKind = AttributeKind.CATEGORICAL) -> Attribute:
    """Convenience constructor for a sensitive attribute."""
    return Attribute(name, kind, AttributeRole.SENSITIVE)


def insensitive(name: str, kind: AttributeKind = AttributeKind.CATEGORICAL) -> Attribute:
    """Convenience constructor for an insensitive attribute."""
    return Attribute(name, kind, AttributeRole.INSENSITIVE)
