"""Synthetic census microdata mirroring the UCI Adult data set.

The disclosure-control literature the paper surveys (Incognito, Mondrian,
Iyengar's GA, Bayardo-Agrawal) evaluates on the UCI *Adult* census extract.
This environment has no network access, so :func:`adult_dataset` generates a
deterministic synthetic equivalent: same schema, realistic marginal
distributions, and mild age/marital and education/occupation/salary
correlations so quasi-identifier combinations are skewed the way census data
is.  The accompanying :func:`adult_hierarchies` reproduces the standard
generalization hierarchies used by those papers.

The property-vector framework only consumes per-tuple measurements of
anonymizations, so any census-like table with skewed QI combinations
exercises identical code paths (see DESIGN.md, Substitutions).
"""

from __future__ import annotations

import numpy as np

from ..hierarchy.base import Hierarchy
from ..hierarchy.categorical import TaxonomyHierarchy
from ..hierarchy.numeric import Banding, IntervalHierarchy
from .dataset import Dataset
from .schema import AttributeKind, Schema, insensitive, quasi_identifier, sensitive

AGE_BOUNDS = (17.0, 90.0)

_WORKCLASS = {
    "Private": ("Private", 0.70),
    "Self-emp-not-inc": ("Self-Employed", 0.08),
    "Self-emp-inc": ("Self-Employed", 0.03),
    "Federal-gov": ("Government", 0.03),
    "Local-gov": ("Government", 0.06),
    "State-gov": ("Government", 0.04),
    "Without-pay": ("Unpaid", 0.03),
    "Never-worked": ("Unpaid", 0.03),
}

# leaf -> (level1 group, level2 group, base probability)
_EDUCATION = {
    "Preschool": ("Primary", "Lower", 0.01),
    "1st-4th": ("Primary", "Lower", 0.02),
    "5th-6th": ("Primary", "Lower", 0.02),
    "7th-8th": ("Secondary", "Lower", 0.02),
    "9th": ("Secondary", "Lower", 0.02),
    "10th": ("Secondary", "Lower", 0.03),
    "11th": ("Secondary", "Lower", 0.04),
    "12th": ("Secondary", "Lower", 0.02),
    "HS-grad": ("HS-grad", "Lower", 0.32),
    "Some-college": ("Some-college", "Higher", 0.22),
    "Assoc-voc": ("Associate", "Higher", 0.04),
    "Assoc-acdm": ("Associate", "Higher", 0.03),
    "Bachelors": ("Bachelors", "Higher", 0.16),
    "Masters": ("Graduate", "Higher", 0.05),
    "Prof-school": ("Graduate", "Higher", 0.01),
    "Doctorate": ("Graduate", "Higher", 0.01),
}

_MARITAL = {
    "Married-civ-spouse": "Married",
    "Married-AF-spouse": "Married",
    "Married-spouse-absent": "Married",
    "Divorced": "Not-Married",
    "Separated": "Not-Married",
    "Widowed": "Not-Married",
    "Never-married": "Not-Married",
}

_OCCUPATIONS = (
    "Tech-support", "Craft-repair", "Other-service", "Sales",
    "Exec-managerial", "Prof-specialty", "Handlers-cleaners",
    "Machine-op-inspct", "Adm-clerical", "Farming-fishing",
    "Transport-moving", "Priv-house-serv", "Protective-serv",
    "Armed-Forces",
)

# Occupation mixture per education level-2 group.
_OCCUPATION_BY_EDUCATION = {
    "Lower": (0.03, 0.18, 0.16, 0.10, 0.03, 0.02, 0.10, 0.12, 0.09, 0.06,
              0.09, 0.02, 0.03, 0.01),
    "Higher": (0.06, 0.07, 0.07, 0.14, 0.18, 0.20, 0.02, 0.03, 0.14, 0.01,
               0.02, 0.01, 0.04, 0.01),
}

_RACE = {
    "White": 0.85,
    "Black": 0.09,
    "Asian-Pac-Islander": 0.03,
    "Amer-Indian-Eskimo": 0.01,
    "Other": 0.02,
}

_COUNTRY = {
    "United-States": ("North-America", 0.895),
    "Canada": ("North-America", 0.005),
    "Mexico": ("Central-South-America", 0.02),
    "Puerto-Rico": ("Central-South-America", 0.005),
    "Cuba": ("Central-South-America", 0.005),
    "El-Salvador": ("Central-South-America", 0.005),
    "Columbia": ("Central-South-America", 0.003),
    "Jamaica": ("Central-South-America", 0.002),
    "Germany": ("Europe", 0.005),
    "England": ("Europe", 0.004),
    "Italy": ("Europe", 0.003),
    "Poland": ("Europe", 0.003),
    "Portugal": ("Europe", 0.002),
    "Greece": ("Europe", 0.002),
    "Philippines": ("Asia", 0.01),
    "India": ("Asia", 0.005),
    "China": ("Asia", 0.005),
    "Japan": ("Asia", 0.002),
    "Vietnam": ("Asia", 0.004),
    "South-Korea": ("Asia", 0.004),
    "Iran": ("Asia", 0.001),
    "Thailand": ("Asia", 0.015),
}


def adult_schema() -> Schema:
    """Schema of the synthetic Adult table.

    Quasi-identifiers follow the eight-attribute configuration of LeFevre et
    al.; ``occupation`` is the sensitive attribute and ``salary-class`` is
    carried through untouched.
    """
    return Schema.of(
        quasi_identifier("age", AttributeKind.NUMERIC),
        quasi_identifier("workclass", AttributeKind.CATEGORICAL),
        quasi_identifier("education", AttributeKind.CATEGORICAL),
        quasi_identifier("marital-status", AttributeKind.CATEGORICAL),
        quasi_identifier("race", AttributeKind.CATEGORICAL),
        quasi_identifier("sex", AttributeKind.CATEGORICAL),
        quasi_identifier("native-country", AttributeKind.CATEGORICAL),
        sensitive("occupation", AttributeKind.CATEGORICAL),
        insensitive("salary-class", AttributeKind.CATEGORICAL),
    )


def _choice(rng: np.random.Generator, items: list, probabilities: list[float]):
    weights = np.asarray(probabilities, dtype=float)
    weights = weights / weights.sum()
    return items[rng.choice(len(items), p=weights)]


def adult_dataset(size: int = 1000, seed: int = 42) -> Dataset:
    """Generate ``size`` synthetic census rows with a fixed ``seed``.

    Sampling is fully deterministic for a given ``(size, seed)`` pair.
    """
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    rng = np.random.default_rng(seed)
    workclasses = list(_WORKCLASS)
    workclass_p = [_WORKCLASS[w][1] for w in workclasses]
    educations = list(_EDUCATION)
    education_p = [_EDUCATION[e][2] for e in educations]
    races = list(_RACE)
    race_p = list(_RACE.values())
    countries = list(_COUNTRY)
    country_p = [_COUNTRY[c][1] for c in countries]
    occupations = list(_OCCUPATIONS)

    rows = []
    for _ in range(size):
        # Age: mixture of working-age bulk and an older tail.
        if rng.random() < 0.85:
            age = int(np.clip(rng.normal(38, 12), *AGE_BOUNDS))
        else:
            age = int(np.clip(rng.normal(67, 9), *AGE_BOUNDS))

        # Marital status correlates with age.
        if age < 26:
            marital_p = {"Never-married": 0.75, "Married-civ-spouse": 0.18,
                         "Divorced": 0.03, "Separated": 0.02,
                         "Married-spouse-absent": 0.01, "Widowed": 0.005,
                         "Married-AF-spouse": 0.005}
        elif age < 60:
            marital_p = {"Never-married": 0.20, "Married-civ-spouse": 0.52,
                         "Divorced": 0.16, "Separated": 0.04,
                         "Married-spouse-absent": 0.03, "Widowed": 0.03,
                         "Married-AF-spouse": 0.02}
        else:
            marital_p = {"Never-married": 0.06, "Married-civ-spouse": 0.52,
                         "Divorced": 0.13, "Separated": 0.02,
                         "Married-spouse-absent": 0.02, "Widowed": 0.24,
                         "Married-AF-spouse": 0.01}
        marital = _choice(rng, list(marital_p), list(marital_p.values()))

        education = _choice(rng, educations, education_p)
        education_group = _EDUCATION[education][1]
        occupation = _choice(
            rng, occupations, list(_OCCUPATION_BY_EDUCATION[education_group])
        )
        workclass = _choice(rng, workclasses, workclass_p)
        race = _choice(rng, races, race_p)
        sex = "Male" if rng.random() < 0.67 else "Female"
        country = _choice(rng, countries, country_p)

        high_salary_p = 0.08
        if education_group == "Higher":
            high_salary_p += 0.22
        if 35 <= age <= 60:
            high_salary_p += 0.12
        if occupation in ("Exec-managerial", "Prof-specialty"):
            high_salary_p += 0.15
        salary = ">50K" if rng.random() < high_salary_p else "<=50K"

        rows.append(
            (age, workclass, education, marital, race, sex, country,
             occupation, salary)
        )
    return Dataset(adult_schema(), rows)


def adult_hierarchies() -> dict[str, Hierarchy]:
    """The standard generalization hierarchies for the Adult QI attributes."""
    return {
        "age": IntervalHierarchy(
            "age",
            [Banding(5), Banding(10), Banding(20), Banding(40)],
            AGE_BOUNDS,
        ),
        "workclass": TaxonomyHierarchy(
            "workclass", {leaf: (group,) for leaf, (group, _) in _WORKCLASS.items()}
        ),
        "education": TaxonomyHierarchy(
            "education",
            {leaf: (l1, l2) for leaf, (l1, l2, _) in _EDUCATION.items()},
        ),
        "marital-status": TaxonomyHierarchy(
            "marital-status", {leaf: (group,) for leaf, group in _MARITAL.items()}
        ),
        "race": TaxonomyHierarchy("race", {leaf: () for leaf in _RACE}),
        "sex": TaxonomyHierarchy("sex", {"Male": (), "Female": ()}),
        "native-country": TaxonomyHierarchy(
            "native-country",
            {leaf: (region,) for leaf, (region, _) in _COUNTRY.items()},
        ),
    }
