"""Synthetic census microdata mirroring the UCI Adult data set.

The disclosure-control literature the paper surveys (Incognito, Mondrian,
Iyengar's GA, Bayardo-Agrawal) evaluates on the UCI *Adult* census extract.
This environment has no network access, so :func:`adult_dataset` generates a
deterministic synthetic equivalent: same schema, realistic marginal
distributions, and mild age/marital and education/occupation/salary
correlations so quasi-identifier combinations are skewed the way census data
is.  The accompanying :func:`adult_hierarchies` reproduces the standard
generalization hierarchies used by those papers.

Generation is built on the counter PRNG (:mod:`repro.kernels.prng`): each
row owns a fixed budget of draw slots, every marginal is an explicit
finite pmf inverted through shared cumulative-weight tables, and the
numpy and pure-python paths produce byte-identical rows.
:func:`iter_adult_chunks` streams the table in bounded-memory chunks (the
1M–10M-row scale tier never materializes the whole table);
:func:`adult_dataset` materializes it for the classic small-``size`` path.

The property-vector framework only consumes per-tuple measurements of
anonymizations, so any census-like table with skewed QI combinations
exercises identical code paths (see DESIGN.md, Substitutions).
"""

from __future__ import annotations

from typing import Any, Iterator

from ..hierarchy.base import Hierarchy
from ..hierarchy.categorical import TaxonomyHierarchy
from ..hierarchy.numeric import Banding, IntervalHierarchy
from ..kernels import active as active_kernels
from ..kernels.prng import CounterStream, categorical, cumulative_weights
from .dataset import Dataset
from .schema import AttributeKind, Schema, insensitive, quasi_identifier, sensitive
from .streaming import (
    DEFAULT_CHUNK_ROWS,
    check_chunking,
    chunk_spans,
    dataset_from_chunks,
    normal_weights,
)

AGE_BOUNDS = (17.0, 90.0)

_WORKCLASS = {
    "Private": ("Private", 0.70),
    "Self-emp-not-inc": ("Self-Employed", 0.08),
    "Self-emp-inc": ("Self-Employed", 0.03),
    "Federal-gov": ("Government", 0.03),
    "Local-gov": ("Government", 0.06),
    "State-gov": ("Government", 0.04),
    "Without-pay": ("Unpaid", 0.03),
    "Never-worked": ("Unpaid", 0.03),
}

# leaf -> (level1 group, level2 group, base probability)
_EDUCATION = {
    "Preschool": ("Primary", "Lower", 0.01),
    "1st-4th": ("Primary", "Lower", 0.02),
    "5th-6th": ("Primary", "Lower", 0.02),
    "7th-8th": ("Secondary", "Lower", 0.02),
    "9th": ("Secondary", "Lower", 0.02),
    "10th": ("Secondary", "Lower", 0.03),
    "11th": ("Secondary", "Lower", 0.04),
    "12th": ("Secondary", "Lower", 0.02),
    "HS-grad": ("HS-grad", "Lower", 0.32),
    "Some-college": ("Some-college", "Higher", 0.22),
    "Assoc-voc": ("Associate", "Higher", 0.04),
    "Assoc-acdm": ("Associate", "Higher", 0.03),
    "Bachelors": ("Bachelors", "Higher", 0.16),
    "Masters": ("Graduate", "Higher", 0.05),
    "Prof-school": ("Graduate", "Higher", 0.01),
    "Doctorate": ("Graduate", "Higher", 0.01),
}

_MARITAL = {
    "Married-civ-spouse": "Married",
    "Married-AF-spouse": "Married",
    "Married-spouse-absent": "Married",
    "Divorced": "Not-Married",
    "Separated": "Not-Married",
    "Widowed": "Not-Married",
    "Never-married": "Not-Married",
}

_OCCUPATIONS = (
    "Tech-support", "Craft-repair", "Other-service", "Sales",
    "Exec-managerial", "Prof-specialty", "Handlers-cleaners",
    "Machine-op-inspct", "Adm-clerical", "Farming-fishing",
    "Transport-moving", "Priv-house-serv", "Protective-serv",
    "Armed-Forces",
)

# Occupation mixture per education level-2 group.
_OCCUPATION_BY_EDUCATION = {
    "Lower": (0.03, 0.18, 0.16, 0.10, 0.03, 0.02, 0.10, 0.12, 0.09, 0.06,
              0.09, 0.02, 0.03, 0.01),
    "Higher": (0.06, 0.07, 0.07, 0.14, 0.18, 0.20, 0.02, 0.03, 0.14, 0.01,
               0.02, 0.01, 0.04, 0.01),
}

_RACE = {
    "White": 0.85,
    "Black": 0.09,
    "Asian-Pac-Islander": 0.03,
    "Amer-Indian-Eskimo": 0.01,
    "Other": 0.02,
}

_COUNTRY = {
    "United-States": ("North-America", 0.895),
    "Canada": ("North-America", 0.005),
    "Mexico": ("Central-South-America", 0.02),
    "Puerto-Rico": ("Central-South-America", 0.005),
    "Cuba": ("Central-South-America", 0.005),
    "El-Salvador": ("Central-South-America", 0.005),
    "Columbia": ("Central-South-America", 0.003),
    "Jamaica": ("Central-South-America", 0.002),
    "Germany": ("Europe", 0.005),
    "England": ("Europe", 0.004),
    "Italy": ("Europe", 0.003),
    "Poland": ("Europe", 0.003),
    "Portugal": ("Europe", 0.002),
    "Greece": ("Europe", 0.002),
    "Philippines": ("Asia", 0.01),
    "India": ("Asia", 0.005),
    "China": ("Asia", 0.005),
    "Japan": ("Asia", 0.002),
    "Vietnam": ("Asia", 0.004),
    "South-Korea": ("Asia", 0.004),
    "Iran": ("Asia", 0.001),
    "Thailand": ("Asia", 0.015),
}

# Marital mixtures per age bracket (same key order in all three, so the
# vectorized path can share one name table across its selector).
_MARITAL_KEYS = (
    "Never-married", "Married-civ-spouse", "Divorced", "Separated",
    "Married-spouse-absent", "Widowed", "Married-AF-spouse",
)
_MARITAL_YOUNG = (0.75, 0.18, 0.03, 0.02, 0.01, 0.005, 0.005)
_MARITAL_MID = (0.20, 0.52, 0.16, 0.04, 0.03, 0.03, 0.02)
_MARITAL_OLD = (0.06, 0.52, 0.13, 0.02, 0.02, 0.24, 0.01)

# Draw slots: each row owns exactly this many counter-PRNG indices.
_DRAWS_PER_ROW = 10
(_D_AGE_MIX, _D_AGE, _D_MARITAL, _D_EDUCATION, _D_OCCUPATION,
 _D_WORKCLASS, _D_RACE, _D_SEX, _D_COUNTRY, _D_SALARY) = range(_DRAWS_PER_ROW)

_STREAM_NAME = "adult"


def adult_schema() -> Schema:
    """Schema of the synthetic Adult table.

    Quasi-identifiers follow the eight-attribute configuration of LeFevre et
    al.; ``occupation`` is the sensitive attribute and ``salary-class`` is
    carried through untouched.
    """
    return Schema.of(
        quasi_identifier("age", AttributeKind.NUMERIC),
        quasi_identifier("workclass", AttributeKind.CATEGORICAL),
        quasi_identifier("education", AttributeKind.CATEGORICAL),
        quasi_identifier("marital-status", AttributeKind.CATEGORICAL),
        quasi_identifier("race", AttributeKind.CATEGORICAL),
        quasi_identifier("sex", AttributeKind.CATEGORICAL),
        quasi_identifier("native-country", AttributeKind.CATEGORICAL),
        sensitive("occupation", AttributeKind.CATEGORICAL),
        insensitive("salary-class", AttributeKind.CATEGORICAL),
    )


class _AdultTables:
    """Cumulative-weight tables shared by both generation paths.

    Built once in pure python; the numpy path wraps the very same float
    lists, so scalar ``bisect_right`` and vectorized ``searchsorted`` see
    identical category boundaries.
    """

    def __init__(self):
        # Age: mixture of a working-age bulk and an older tail, expressed
        # as discrete gaussian pmfs over the integer age domain.
        low, high = int(AGE_BOUNDS[0]), int(AGE_BOUNDS[1])
        self.ages = list(range(low, high + 1))
        self.age_bulk = cumulative_weights(normal_weights(self.ages, 38.0, 12.0))
        self.age_elder = cumulative_weights(normal_weights(self.ages, 67.0, 9.0))
        self.marital_names = list(_MARITAL_KEYS)
        self.marital_young = cumulative_weights(_MARITAL_YOUNG)
        self.marital_mid = cumulative_weights(_MARITAL_MID)
        self.marital_old = cumulative_weights(_MARITAL_OLD)
        self.educations = list(_EDUCATION)
        self.education_cum = cumulative_weights(
            [_EDUCATION[name][2] for name in self.educations]
        )
        self.education_higher = [
            _EDUCATION[name][1] == "Higher" for name in self.educations
        ]
        self.occupations = list(_OCCUPATIONS)
        self.occupation_lower = cumulative_weights(_OCCUPATION_BY_EDUCATION["Lower"])
        self.occupation_higher = cumulative_weights(_OCCUPATION_BY_EDUCATION["Higher"])
        self.occupation_flagged = [
            name in ("Exec-managerial", "Prof-specialty")
            for name in self.occupations
        ]
        self.workclasses = list(_WORKCLASS)
        self.workclass_cum = cumulative_weights(
            [_WORKCLASS[name][1] for name in self.workclasses]
        )
        self.races = list(_RACE)
        self.race_cum = cumulative_weights(list(_RACE.values()))
        self.countries = list(_COUNTRY)
        self.country_cum = cumulative_weights(
            [_COUNTRY[name][1] for name in self.countries]
        )


# Built once at import: the tables are a few hundred floats, and eager
# construction keeps op-reachable code free of module-state writes.
_TABLES = _AdultTables()


def _salary_threshold(higher: bool, age: int, flagged: bool) -> float:
    probability = 0.08
    if higher:
        probability += 0.22
    if 35 <= age <= 60:
        probability += 0.12
    if flagged:
        probability += 0.15
    return probability


def _python_chunk(
    stream: CounterStream, tables: _AdultTables, row_start: int, row_count: int
) -> list[tuple[Any, ...]]:
    """Scalar generation path — the executable specification."""
    rows: list[tuple[Any, ...]] = []
    for row in range(row_start, row_start + row_count):
        age_cum = (
            tables.age_bulk
            if stream.double(row, _D_AGE_MIX) < 0.85
            else tables.age_elder
        )
        age = tables.ages[categorical(stream.double(row, _D_AGE), age_cum)]
        if age < 26:
            marital_cum = tables.marital_young
        elif age < 60:
            marital_cum = tables.marital_mid
        else:
            marital_cum = tables.marital_old
        marital = tables.marital_names[
            categorical(stream.double(row, _D_MARITAL), marital_cum)
        ]
        education_index = categorical(
            stream.double(row, _D_EDUCATION), tables.education_cum
        )
        education = tables.educations[education_index]
        higher = tables.education_higher[education_index]
        occupation_cum = (
            tables.occupation_higher if higher else tables.occupation_lower
        )
        occupation_index = categorical(
            stream.double(row, _D_OCCUPATION), occupation_cum
        )
        occupation = tables.occupations[occupation_index]
        workclass = tables.workclasses[
            categorical(stream.double(row, _D_WORKCLASS), tables.workclass_cum)
        ]
        race = tables.races[
            categorical(stream.double(row, _D_RACE), tables.race_cum)
        ]
        sex = "Male" if stream.double(row, _D_SEX) < 0.67 else "Female"
        country = tables.countries[
            categorical(stream.double(row, _D_COUNTRY), tables.country_cum)
        ]
        threshold = _salary_threshold(
            higher, age, tables.occupation_flagged[occupation_index]
        )
        salary = ">50K" if stream.double(row, _D_SALARY) < threshold else "<=50K"
        rows.append(
            (age, workclass, education, marital, race, sex, country,
             occupation, salary)
        )
    return rows


def _numpy_chunk(
    np, stream: CounterStream, tables: _AdultTables, row_start: int, row_count: int
) -> list[tuple[Any, ...]]:
    """Vectorized generation path; byte-identical to :func:`_python_chunk`.

    Every categorical inversion is ``searchsorted(side='right')`` over the
    same cumulative tables the scalar path bisects, conditional tables are
    selected on integer indices, and values decode through the same python
    tables — so the rows are the identical objects either way.
    """
    draws = [
        stream.doubles_block(np, row_start, row_count, slot)
        for slot in range(_DRAWS_PER_ROW)
    ]

    def invert(cumulative: list[float], u):
        index = np.searchsorted(np.asarray(cumulative), u, side="right")
        return np.minimum(index, len(cumulative) - 1)

    age_index = np.where(
        draws[_D_AGE_MIX] < 0.85,
        invert(tables.age_bulk, draws[_D_AGE]),
        invert(tables.age_elder, draws[_D_AGE]),
    )
    age = np.asarray(tables.ages)[age_index]

    marital_index = np.where(
        age < 26,
        invert(tables.marital_young, draws[_D_MARITAL]),
        np.where(
            age < 60,
            invert(tables.marital_mid, draws[_D_MARITAL]),
            invert(tables.marital_old, draws[_D_MARITAL]),
        ),
    )
    education_index = invert(tables.education_cum, draws[_D_EDUCATION])
    higher = np.asarray(tables.education_higher)[education_index]
    occupation_index = np.where(
        higher,
        invert(tables.occupation_higher, draws[_D_OCCUPATION]),
        invert(tables.occupation_lower, draws[_D_OCCUPATION]),
    )
    workclass_index = invert(tables.workclass_cum, draws[_D_WORKCLASS])
    race_index = invert(tables.race_cum, draws[_D_RACE])
    male = draws[_D_SEX] < 0.67
    country_index = invert(tables.country_cum, draws[_D_COUNTRY])

    # Salary threshold: the same additions the scalar path performs, with
    # inactive terms contributing an exact +0.0 (identical float results).
    threshold = (
        0.08
        + np.where(higher, 0.22, 0.0)
        + np.where((age >= 35) & (age <= 60), 0.12, 0.0)
        + np.where(
            np.asarray(tables.occupation_flagged)[occupation_index], 0.15, 0.0
        )
    )
    high_salary = draws[_D_SALARY] < threshold

    age_column = [tables.ages[i] for i in age_index.tolist()]
    workclass_column = [tables.workclasses[i] for i in workclass_index.tolist()]
    education_column = [tables.educations[i] for i in education_index.tolist()]
    marital_column = [tables.marital_names[i] for i in marital_index.tolist()]
    race_column = [tables.races[i] for i in race_index.tolist()]
    sex_column = ["Male" if flag else "Female" for flag in male.tolist()]
    country_column = [tables.countries[i] for i in country_index.tolist()]
    occupation_column = [tables.occupations[i] for i in occupation_index.tolist()]
    salary_column = [">50K" if flag else "<=50K" for flag in high_salary.tolist()]
    return list(
        zip(age_column, workclass_column, education_column, marital_column,
            race_column, sex_column, country_column, occupation_column,
            salary_column)
    )


def iter_adult_chunks(
    size: int, seed: int = 42, chunk_rows: int = DEFAULT_CHUNK_ROWS
) -> Iterator[list[tuple[Any, ...]]]:
    """Stream ``size`` synthetic census rows in bounded-memory chunks.

    Rows are counter-indexed, so the concatenation of the chunks is
    independent of ``chunk_rows`` and identical to ``adult_dataset(size,
    seed).rows`` — byte for byte, with or without numpy.
    """
    check_chunking(size, chunk_rows)
    stream = CounterStream(seed, _STREAM_NAME, _DRAWS_PER_ROW)
    tables = _TABLES
    kernels = active_kernels()
    for row_start, row_count in chunk_spans(size, chunk_rows):
        if kernels.is_numpy:
            yield _numpy_chunk(kernels.numpy, stream, tables, row_start, row_count)
        else:
            yield _python_chunk(stream, tables, row_start, row_count)


def adult_dataset(size: int = 1000, seed: int = 42) -> Dataset:
    """Generate ``size`` synthetic census rows with a fixed ``seed``.

    Sampling is fully deterministic for a given ``(size, seed)`` pair.
    """
    return dataset_from_chunks(adult_schema(), iter_adult_chunks(size, seed))


def adult_hierarchies() -> dict[str, Hierarchy]:
    """The standard generalization hierarchies for the Adult QI attributes."""
    return {
        "age": IntervalHierarchy(
            "age",
            [Banding(5), Banding(10), Banding(20), Banding(40)],
            AGE_BOUNDS,
        ),
        "workclass": TaxonomyHierarchy(
            "workclass", {leaf: (group,) for leaf, (group, _) in _WORKCLASS.items()}
        ),
        "education": TaxonomyHierarchy(
            "education",
            {leaf: (l1, l2) for leaf, (l1, l2, _) in _EDUCATION.items()},
        ),
        "marital-status": TaxonomyHierarchy(
            "marital-status", {leaf: (group,) for leaf, group in _MARITAL.items()}
        ),
        "race": TaxonomyHierarchy("race", {leaf: () for leaf in _RACE}),
        "sex": TaxonomyHierarchy("sex", {"Male": (), "Female": ()}),
        "native-country": TaxonomyHierarchy(
            "native-country",
            {leaf: (region,) for leaf, (region, _) in _COUNTRY.items()},
        ),
    }
