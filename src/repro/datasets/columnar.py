"""The columnar data plane: interned integer-coded columns.

Row-shaped measurement is the dominant cost of lattice sweeps: every node
visit re-walks every row through per-cell hierarchy dict lookups.  The
columnar plane fixes the representation instead — each column is interned
once into dense integer *codes* (``array('q')``) plus a decode table, after
which full-domain recoding, grouping and loss scoring become array gathers
over the (tiny) code domain rather than per-row Python work.

The view is value-preserving and order-preserving by construction:

* codes are assigned by first occurrence in row order, so decode tables are
  deterministic and independent of ``PYTHONHASHSEED``;
* ``decode[codes[i]] is column[i]`` — the decode table stores the exact
  objects of the source column, so any value materialized through the
  plane is identical (not merely equal) to its row-plane counterpart.

:meth:`Dataset.columns` (see ``datasets/dataset.py``) caches one
:class:`ColumnarView` per dataset; hierarchy *level tables* built on top of
these codes live in :mod:`repro.hierarchy.codes`.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Any

from ..kernels import active as active_kernels

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .dataset import Dataset


class ColumnCodes:
    """One column interned to dense integer codes.

    Interning takes the kernel layer's vectorized fast path when the
    active backend offers one (homogeneous int/bool/string columns under
    numpy); the dict loop below is the always-available fallback and the
    executable specification — both assign codes by first occurrence and
    store the column's exact objects in ``decode``.

    Attributes
    ----------
    name:
        The attribute name.
    codes:
        ``array('q')`` of per-row codes, in row order.
    decode:
        Tuple mapping code -> original value, in first-occurrence order;
        ``decode[codes[i]]`` is the exact object stored in row ``i``.
    """

    __slots__ = ("name", "codes", "decode", "level_tables")

    def __init__(self, name: str, values: tuple[Any, ...]):
        interned = active_kernels().intern(values)
        if interned is not None:
            codes, decode = interned
        else:
            lookup: dict[Any, int] = {}
            codes = array("q", bytes(8 * len(values)))
            for row_index, value in enumerate(values):
                code = lookup.get(value)
                if code is None:
                    code = len(lookup)
                    lookup[value] = code
                codes[row_index] = code
            decode = tuple(lookup)
        self.name = name
        self.codes = codes
        self.decode: tuple[Any, ...] = decode
        #: Per-hierarchy level tables, memoized by ``hierarchy/codes.py``
        #: (keyed by hierarchy identity; values keep the hierarchy alive so
        #: ids cannot be recycled).
        self.level_tables: dict[int, Any] = {}

    def __len__(self) -> int:
        return len(self.codes)

    @property
    def domain_size(self) -> int:
        """Number of distinct values in the column."""
        return len(self.decode)

    def code_of(self, value: Any) -> int:
        """The code of one value (O(domain) — for tests and debugging)."""
        return self.decode.index(value)

    def __repr__(self) -> str:
        return (
            f"ColumnCodes({self.name!r}, rows={len(self)}, "
            f"domain={self.domain_size})"
        )


class ColumnarView:
    """Lazy per-column interning of one dataset.

    Obtained via :meth:`Dataset.columns`; columns are interned on first
    access and shared by every consumer of the dataset (engine, workspace,
    equivalence classes), which is what makes identity-keyed memoization
    (level tables, per-column histograms) effective.
    """

    __slots__ = ("_dataset", "_columns")

    def __init__(self, dataset: "Dataset"):
        self._dataset = dataset
        self._columns: dict[str, ColumnCodes] = {}

    @property
    def dataset(self) -> "Dataset":
        """The dataset this view interns."""
        return self._dataset

    def column(self, name: str) -> ColumnCodes:
        """The interned codes of one column (built once, cached)."""
        interned = self._columns.get(name)
        if interned is None:
            interned = ColumnCodes(name, self._dataset.column(name))
            self._columns[name] = interned
        return interned

    def __repr__(self) -> str:
        return (
            f"ColumnarView({self._dataset!r}, "
            f"interned={sorted(self._columns)})"
        )
