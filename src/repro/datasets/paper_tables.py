"""The paper's running example: Table 1 microdata and its generalizations.

Reproduces, via the real generalization engine (not hard-coded strings):

* Table 1 — the 10-tuple hypothetical microdata :math:`\\mathcal{T}_1`;
* Table 2 — the two 3-anonymous generalizations :math:`\\mathcal{T}_{3a}`
  (zip masked 1 digit, age in 10-year bands anchored at 5, marital status
  generalized one level) and :math:`\\mathcal{T}_{3b}` (zip masked 2 digits,
  age in 20-year bands anchored at 15, marital one level);
* Table 3 — the 4-anonymous generalization :math:`\\mathcal{T}_4` (zip masked
  3 digits, age in 20-year bands anchored at 0, marital fully suppressed).

All three schemes are full-domain recodings; they differ in band anchors, so
each carries its own age hierarchy.  The module also exports the paper's
stated property vectors for cross-checking (Figure 1 and Section 3).
"""

from __future__ import annotations

from ..anonymize.engine import Anonymization, recode
from ..hierarchy.base import Hierarchy
from ..hierarchy.categorical import TaxonomyHierarchy
from ..hierarchy.masking import MaskingHierarchy
from ..hierarchy.numeric import Banding, IntervalHierarchy
from .dataset import Dataset
from .schema import AttributeKind, Schema, quasi_identifier

#: The sensitive attribute of the running example (Section 3).  Marital
#: status doubles as a generalized column in Tables 2-3, so it is declared a
#: quasi-identifier in the schema and passed explicitly as the sensitive
#: attribute to the diversity measurements; grouping is unaffected because
#: its generalization is always at least as coarse as the zip/age grouping.
SENSITIVE_ATTRIBUTE = "Marital Status"

_TABLE1_ROWS = [
    ("13053", 28, "CF-Spouse"),
    ("13268", 41, "Separated"),
    ("13268", 39, "Never Married"),
    ("13053", 26, "CF-Spouse"),
    ("13253", 50, "Divorced"),
    ("13253", 55, "Spouse Absent"),
    ("13250", 49, "Divorced"),
    ("13052", 31, "Spouse Present"),
    ("13269", 42, "Separated"),
    ("13250", 47, "Separated"),
]

_AGE_BOUNDS = (0.0, 120.0)

#: Paper-stated equivalence class size property vectors (Figure 1 / Section 3).
CLASS_SIZE_T3A = (3, 3, 3, 3, 4, 4, 4, 3, 3, 4)
CLASS_SIZE_T3B = (3, 7, 7, 3, 7, 7, 7, 3, 7, 7)
CLASS_SIZE_T4 = (4, 6, 4, 4, 6, 6, 6, 4, 6, 6)

#: Paper-stated sensitive value count vector for T3a (Section 3).
SENSITIVE_COUNT_T3A = (2, 2, 1, 2, 2, 1, 2, 1, 2, 1)

#: Iyengar-style utility property vectors quoted in Section 5.5 of the paper.
PAPER_UTILITY_T3A = (2.03, 1.7, 1.7, 2.03, 1.6, 1.6, 1.6, 2.03, 1.7, 1.6)
PAPER_UTILITY_T3B = (2.03, 0.97, 0.97, 2.03, 0.97, 0.97, 0.97, 2.03, 0.97, 0.97)


def schema() -> Schema:
    """Schema of Table 1: zip code, age, marital status."""
    return Schema.of(
        quasi_identifier("Zip Code", AttributeKind.STRING),
        quasi_identifier("Age", AttributeKind.NUMERIC),
        quasi_identifier(SENSITIVE_ATTRIBUTE, AttributeKind.CATEGORICAL),
    )


def table1() -> Dataset:
    """The hypothetical microdata :math:`\\mathcal{T}_1` of Table 1."""
    return Dataset(schema(), _TABLE1_ROWS)


def zip_hierarchy(dataset: Dataset | None = None) -> MaskingHierarchy:
    """Suffix-masking hierarchy over the zip codes of Table 1."""
    data = dataset or table1()
    return MaskingHierarchy("Zip Code", 5, domain=data.distinct("Zip Code"))


def marital_hierarchy() -> TaxonomyHierarchy:
    """The Married / Not Married taxonomy of Table 2."""
    return TaxonomyHierarchy(
        SENSITIVE_ATTRIBUTE,
        {
            "CF-Spouse": ("Married",),
            "Spouse Present": ("Married",),
            "Separated": ("Not Married",),
            "Never Married": ("Not Married",),
            "Divorced": ("Not Married",),
            "Spouse Absent": ("Not Married",),
        },
    )


def age_hierarchy(width: float, anchor: float) -> IntervalHierarchy:
    """A single-banding age hierarchy (each paper scheme uses its own)."""
    return IntervalHierarchy("Age", [Banding(width, anchor)], _AGE_BOUNDS)


def _scheme(age_width: float, age_anchor: float) -> dict[str, Hierarchy]:
    return {
        "Zip Code": zip_hierarchy(),
        "Age": age_hierarchy(age_width, age_anchor),
        SENSITIVE_ATTRIBUTE: marital_hierarchy(),
    }


def t3a(dataset: Dataset | None = None) -> Anonymization:
    """:math:`\\mathcal{T}_{3a}` — left table of Table 2 (3-anonymous)."""
    data = dataset or table1()
    hierarchies = _scheme(age_width=10, age_anchor=5)
    return recode(
        data,
        hierarchies,
        {"Zip Code": 1, "Age": 1, SENSITIVE_ATTRIBUTE: 1},
        name="T3a",
    )


def t3b(dataset: Dataset | None = None) -> Anonymization:
    """:math:`\\mathcal{T}_{3b}` — right table of Table 2 (3-anonymous)."""
    data = dataset or table1()
    hierarchies = _scheme(age_width=20, age_anchor=15)
    return recode(
        data,
        hierarchies,
        {"Zip Code": 2, "Age": 1, SENSITIVE_ATTRIBUTE: 1},
        name="T3b",
    )


def t4(dataset: Dataset | None = None) -> Anonymization:
    """:math:`\\mathcal{T}_4` — Table 3 (4-anonymous)."""
    data = dataset or table1()
    hierarchies = _scheme(age_width=20, age_anchor=0)
    return recode(
        data,
        hierarchies,
        {"Zip Code": 3, "Age": 1, SENSITIVE_ATTRIBUTE: 2},
        name="T4",
    )


def all_generalizations() -> dict[str, Anonymization]:
    """The three paper generalizations, keyed by paper name."""
    return {"T3a": t3a(), "T3b": t3b(), "T4": t4()}
