"""Synthetic hospital discharge microdata.

The motivating scenario of the disclosure-control literature (and of
Sweeney's original re-identification of a governor's medical record):
demographic quasi-identifiers joined to a sensitive diagnosis.  This
generator produces a deterministic synthetic discharge table with an
ICD-chapter-style two-level diagnosis taxonomy, age/sex/zip demographics
with realistic skew, and admission details.

Used by the hospital example and as a second domain for the test suite —
distinct from the census-style Adult workload in QI shape (a high-cardinality
zip code dominates) and in having the sensitive attribute carry its own
taxonomy (enabling hierarchical t-closeness and guarding-node models).

Like the other generators, sampling runs on the counter PRNG
(:mod:`repro.kernels.prng`) with discrete pmfs only, so the numpy and
pure-python paths produce byte-identical rows and
:func:`iter_hospital_chunks` streams the table with flat memory.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..hierarchy.base import Hierarchy
from ..hierarchy.categorical import TaxonomyHierarchy
from ..hierarchy.masking import MaskingHierarchy
from ..hierarchy.numeric import Banding, IntervalHierarchy
from ..kernels import active as active_kernels
from ..kernels.prng import CounterStream, categorical, cumulative_weights
from .dataset import Dataset
from .schema import AttributeKind, Schema, insensitive, quasi_identifier, sensitive
from .streaming import (
    DEFAULT_CHUNK_ROWS,
    check_chunking,
    chunk_spans,
    dataset_from_chunks,
    normal_weights,
)

AGE_BOUNDS = (0.0, 100.0)

#: diagnosis -> (chapter, base probability)
_DIAGNOSES = {
    "Hypertension": ("Circulatory", 0.14),
    "Ischemic heart disease": ("Circulatory", 0.07),
    "Stroke": ("Circulatory", 0.04),
    "Asthma": ("Respiratory", 0.06),
    "Pneumonia": ("Respiratory", 0.07),
    "COPD": ("Respiratory", 0.05),
    "Type 2 diabetes": ("Endocrine", 0.10),
    "Thyroid disorder": ("Endocrine", 0.04),
    "Depression": ("Mental", 0.08),
    "Anxiety disorder": ("Mental", 0.06),
    "Schizophrenia": ("Mental", 0.02),
    "Appendicitis": ("Digestive", 0.05),
    "Gastritis": ("Digestive", 0.06),
    "Hernia": ("Digestive", 0.05),
    "Fracture": ("Injury", 0.07),
    "Concussion": ("Injury", 0.04),
}

_ADMISSIONS = ("Emergency", "Elective", "Transfer")

# Age pmf parameters per cohort: circulatory skews old, injuries young,
# asthma younger still, everything else broad middle-age.
_AGE_COHORTS = ((68.0, 12.0), (32.0, 16.0), (25.0, 18.0), (50.0, 20.0))

_DRAWS_PER_ROW = 5
_D_DIAGNOSIS, _D_AGE, _D_SEX, _D_ZIP, _D_ADMISSION = range(_DRAWS_PER_ROW)
_STREAM_NAME = "hospital"


def hospital_schema() -> Schema:
    """Schema of the discharge table: zip/age/sex QIs, diagnosis sensitive."""
    return Schema.of(
        quasi_identifier("zip", AttributeKind.STRING),
        quasi_identifier("age", AttributeKind.NUMERIC),
        quasi_identifier("sex", AttributeKind.CATEGORICAL),
        sensitive("diagnosis", AttributeKind.CATEGORICAL),
        insensitive("admission", AttributeKind.CATEGORICAL),
    )


def _zip_codes() -> list[str]:
    return [f"{region}{suburb:02d}0" for region in (10, 20, 30, 40)
            for suburb in range(10)]


class _HospitalTables:
    """Cumulative-weight tables shared by both generation paths."""

    def __init__(self):
        self.diagnoses = list(_DIAGNOSES)
        self.diagnosis_cum = cumulative_weights(
            [_DIAGNOSES[name][1] for name in self.diagnoses]
        )
        # Which age cohort and male probability each diagnosis index uses.
        self.age_cohort_of = []
        self.male_probability = []
        for name in self.diagnoses:
            chapter = _DIAGNOSES[name][0]
            if chapter == "Circulatory":
                cohort = 0
            elif chapter == "Injury":
                cohort = 1
            elif name == "Asthma":
                cohort = 2
            else:
                cohort = 3
            self.age_cohort_of.append(cohort)
            if chapter == "Circulatory":
                self.male_probability.append(0.58)
            elif name == "Thyroid disorder":
                self.male_probability.append(0.25)
            else:
                self.male_probability.append(0.5)
        low, high = int(AGE_BOUNDS[0]), int(AGE_BOUNDS[1])
        self.ages = list(range(low, high + 1))
        self.age_cums = [
            cumulative_weights(normal_weights(self.ages, mean, sd))
            for mean, sd in _AGE_COHORTS
        ]
        self.zips = _zip_codes()
        self.zip_cum = cumulative_weights(
            [1.0 / (1 + index % 10) for index in range(len(self.zips))]
        )
        self.admission_cum = cumulative_weights((0.55, 0.35, 0.10))


# Built once at import: the tables are a few hundred floats, and eager
# construction keeps op-reachable code free of module-state writes.
_TABLES = _HospitalTables()


def _python_chunk(
    stream: CounterStream, tables: _HospitalTables, row_start: int, row_count: int
) -> list[tuple[Any, ...]]:
    """Scalar generation path — the executable specification."""
    rows: list[tuple[Any, ...]] = []
    for row in range(row_start, row_start + row_count):
        diagnosis_index = categorical(
            stream.double(row, _D_DIAGNOSIS), tables.diagnosis_cum
        )
        diagnosis = tables.diagnoses[diagnosis_index]
        age_cum = tables.age_cums[tables.age_cohort_of[diagnosis_index]]
        age = tables.ages[categorical(stream.double(row, _D_AGE), age_cum)]
        sex = (
            "M"
            if stream.double(row, _D_SEX)
            < tables.male_probability[diagnosis_index]
            else "F"
        )
        zip_code = tables.zips[
            categorical(stream.double(row, _D_ZIP), tables.zip_cum)
        ]
        admission = _ADMISSIONS[
            categorical(stream.double(row, _D_ADMISSION), tables.admission_cum)
        ]
        rows.append((zip_code, age, sex, diagnosis, admission))
    return rows


def _numpy_chunk(
    np, stream: CounterStream, tables: _HospitalTables, row_start: int, row_count: int
) -> list[tuple[Any, ...]]:
    """Vectorized generation path; byte-identical to :func:`_python_chunk`."""
    draws = [
        stream.doubles_block(np, row_start, row_count, slot)
        for slot in range(_DRAWS_PER_ROW)
    ]

    def invert(cumulative: list[float], u):
        index = np.searchsorted(np.asarray(cumulative), u, side="right")
        return np.minimum(index, len(cumulative) - 1)

    diagnosis_index = invert(tables.diagnosis_cum, draws[_D_DIAGNOSIS])
    cohort = np.asarray(tables.age_cohort_of)[diagnosis_index]
    age_index = np.choose(
        cohort, [invert(cum, draws[_D_AGE]) for cum in tables.age_cums]
    )
    male = draws[_D_SEX] < np.asarray(tables.male_probability)[diagnosis_index]
    zip_index = invert(tables.zip_cum, draws[_D_ZIP])
    admission_index = invert(tables.admission_cum, draws[_D_ADMISSION])

    zip_column = [tables.zips[i] for i in zip_index.tolist()]
    age_column = [tables.ages[i] for i in age_index.tolist()]
    sex_column = ["M" if flag else "F" for flag in male.tolist()]
    diagnosis_column = [tables.diagnoses[i] for i in diagnosis_index.tolist()]
    admission_column = [_ADMISSIONS[i] for i in admission_index.tolist()]
    return list(
        zip(zip_column, age_column, sex_column, diagnosis_column,
            admission_column)
    )


def iter_hospital_chunks(
    size: int, seed: int = 0, chunk_rows: int = DEFAULT_CHUNK_ROWS
) -> Iterator[list[tuple[Any, ...]]]:
    """Stream ``size`` discharge rows in bounded-memory chunks.

    The concatenation of the chunks is independent of ``chunk_rows`` and
    identical to ``hospital_dataset(size, seed).rows`` — byte for byte,
    with or without numpy.
    """
    check_chunking(size, chunk_rows)
    stream = CounterStream(seed, _STREAM_NAME, _DRAWS_PER_ROW)
    tables = _TABLES
    kernels = active_kernels()
    for row_start, row_count in chunk_spans(size, chunk_rows):
        if kernels.is_numpy:
            yield _numpy_chunk(kernels.numpy, stream, tables, row_start, row_count)
        else:
            yield _python_chunk(stream, tables, row_start, row_count)


def hospital_dataset(size: int = 1000, seed: int = 0) -> Dataset:
    """Generate ``size`` synthetic discharge rows, deterministic per seed.

    Zip codes are drawn from 40 codes across 4 regions with Zipf-ish
    popularity; age is diagnosis-correlated (circulatory and stroke skew
    old, injuries skew young); sex is mildly diagnosis-correlated.
    """
    return dataset_from_chunks(
        hospital_schema(), iter_hospital_chunks(size, seed)
    )


def hospital_hierarchies() -> dict[str, Hierarchy]:
    """Generalization hierarchies for the discharge table's QIs."""
    return {
        "zip": MaskingHierarchy("zip", 5, domain=_zip_codes()),
        "age": IntervalHierarchy(
            "age", [Banding(5), Banding(10), Banding(25), Banding(50)],
            AGE_BOUNDS,
        ),
        "sex": TaxonomyHierarchy("sex", {"M": (), "F": ()}),
    }


def diagnosis_taxonomy() -> TaxonomyHierarchy:
    """The ICD-chapter-style taxonomy over the sensitive diagnosis —
    usable as a guarding-node taxonomy (personalized privacy) and as the
    ground taxonomy for hierarchical t-closeness."""
    return TaxonomyHierarchy(
        "diagnosis",
        {leaf: (chapter,) for leaf, (chapter, _) in _DIAGNOSES.items()},
    )
