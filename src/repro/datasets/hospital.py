"""Synthetic hospital discharge microdata.

The motivating scenario of the disclosure-control literature (and of
Sweeney's original re-identification of a governor's medical record):
demographic quasi-identifiers joined to a sensitive diagnosis.  This
generator produces a deterministic synthetic discharge table with an
ICD-chapter-style two-level diagnosis taxonomy, age/sex/zip demographics
with realistic skew, and admission details.

Used by the hospital example and as a second domain for the test suite —
distinct from the census-style Adult workload in QI shape (a high-cardinality
zip code dominates) and in having the sensitive attribute carry its own
taxonomy (enabling hierarchical t-closeness and guarding-node models).
"""

from __future__ import annotations

import numpy as np

from ..hierarchy.base import Hierarchy
from ..hierarchy.categorical import TaxonomyHierarchy
from ..hierarchy.masking import MaskingHierarchy
from ..hierarchy.numeric import Banding, IntervalHierarchy
from .dataset import Dataset
from .schema import AttributeKind, Schema, insensitive, quasi_identifier, sensitive

AGE_BOUNDS = (0.0, 100.0)

#: diagnosis -> (chapter, base probability)
_DIAGNOSES = {
    "Hypertension": ("Circulatory", 0.14),
    "Ischemic heart disease": ("Circulatory", 0.07),
    "Stroke": ("Circulatory", 0.04),
    "Asthma": ("Respiratory", 0.06),
    "Pneumonia": ("Respiratory", 0.07),
    "COPD": ("Respiratory", 0.05),
    "Type 2 diabetes": ("Endocrine", 0.10),
    "Thyroid disorder": ("Endocrine", 0.04),
    "Depression": ("Mental", 0.08),
    "Anxiety disorder": ("Mental", 0.06),
    "Schizophrenia": ("Mental", 0.02),
    "Appendicitis": ("Digestive", 0.05),
    "Gastritis": ("Digestive", 0.06),
    "Hernia": ("Digestive", 0.05),
    "Fracture": ("Injury", 0.07),
    "Concussion": ("Injury", 0.04),
}

_ADMISSIONS = ("Emergency", "Elective", "Transfer")


def hospital_schema() -> Schema:
    """Schema of the discharge table: zip/age/sex QIs, diagnosis sensitive."""
    return Schema.of(
        quasi_identifier("zip", AttributeKind.STRING),
        quasi_identifier("age", AttributeKind.NUMERIC),
        quasi_identifier("sex", AttributeKind.CATEGORICAL),
        sensitive("diagnosis", AttributeKind.CATEGORICAL),
        insensitive("admission", AttributeKind.CATEGORICAL),
    )


def hospital_dataset(size: int = 1000, seed: int = 0) -> Dataset:
    """Generate ``size`` synthetic discharge rows, deterministic per seed.

    Zip codes are drawn from 40 codes across 4 regions with Zipf-ish
    popularity; age is diagnosis-correlated (circulatory and stroke skew
    old, injuries skew young); sex is mildly diagnosis-correlated.
    """
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    rng = np.random.default_rng(seed)
    diagnoses = list(_DIAGNOSES)
    diagnosis_p = np.array([_DIAGNOSES[d][1] for d in diagnoses])
    diagnosis_p = diagnosis_p / diagnosis_p.sum()
    zips = [f"{region}{suburb:02d}0" for region in (10, 20, 30, 40)
            for suburb in range(10)]
    zip_weights = np.array(
        [1.0 / (1 + index % 10) for index in range(len(zips))]
    )
    zip_p = zip_weights / zip_weights.sum()

    rows = []
    for _ in range(size):
        diagnosis = diagnoses[rng.choice(len(diagnoses), p=diagnosis_p)]
        chapter = _DIAGNOSES[diagnosis][0]
        if chapter == "Circulatory":
            age = int(np.clip(rng.normal(68, 12), *AGE_BOUNDS))
        elif chapter == "Injury":
            age = int(np.clip(rng.normal(32, 16), *AGE_BOUNDS))
        elif diagnosis == "Asthma":
            age = int(np.clip(rng.normal(25, 18), *AGE_BOUNDS))
        else:
            age = int(np.clip(rng.normal(50, 20), *AGE_BOUNDS))
        male_probability = 0.5
        if chapter == "Circulatory":
            male_probability = 0.58
        elif diagnosis == "Thyroid disorder":
            male_probability = 0.25
        sex = "M" if rng.random() < male_probability else "F"
        zip_code = zips[rng.choice(len(zips), p=zip_p)]
        admission = _ADMISSIONS[
            rng.choice(3, p=[0.55, 0.35, 0.10])
        ]
        rows.append((zip_code, age, sex, diagnosis, admission))
    return Dataset(hospital_schema(), rows)


def hospital_hierarchies() -> dict[str, Hierarchy]:
    """Generalization hierarchies for the discharge table's QIs."""
    zips = [f"{region}{suburb:02d}0" for region in (10, 20, 30, 40)
            for suburb in range(10)]
    return {
        "zip": MaskingHierarchy("zip", 5, domain=zips),
        "age": IntervalHierarchy(
            "age", [Banding(5), Banding(10), Banding(25), Banding(50)],
            AGE_BOUNDS,
        ),
        "sex": TaxonomyHierarchy("sex", {"M": (), "F": ()}),
    }


def diagnosis_taxonomy() -> TaxonomyHierarchy:
    """The ICD-chapter-style taxonomy over the sensitive diagnosis —
    usable as a guarding-node taxonomy (personalized privacy) and as the
    ground taxonomy for hierarchical t-closeness."""
    return TaxonomyHierarchy(
        "diagnosis",
        {leaf: (chapter,) for leaf, (chapter, _) in _DIAGNOSES.items()},
    )
