"""Microdata tables, schemas and workload generators."""

from .adult import adult_dataset, adult_hierarchies, adult_schema
from .columnar import ColumnCodes, ColumnarView
from .dataset import Dataset, DatasetError, Row, dataset_from_records
from .io import read_csv, write_csv
from .hospital import (
    diagnosis_taxonomy,
    hospital_dataset,
    hospital_hierarchies,
    hospital_schema,
)
from .synthetic import (
    skewed_dataset,
    synthetic_hierarchies,
    synthetic_schema,
)
from .schema import (
    Attribute,
    AttributeKind,
    AttributeRole,
    Schema,
    SchemaError,
    insensitive,
    quasi_identifier,
    sensitive,
)

__all__ = [
    "adult_dataset",
    "adult_hierarchies",
    "adult_schema",
    "ColumnCodes",
    "ColumnarView",
    "Dataset",
    "DatasetError",
    "Row",
    "dataset_from_records",
    "read_csv",
    "write_csv",
    "diagnosis_taxonomy",
    "hospital_dataset",
    "hospital_hierarchies",
    "hospital_schema",
    "skewed_dataset",
    "synthetic_hierarchies",
    "synthetic_schema",
    "Attribute",
    "AttributeKind",
    "AttributeRole",
    "Schema",
    "SchemaError",
    "insensitive",
    "quasi_identifier",
    "sensitive",
]
