"""Microdata tables, schemas and workload generators."""

from .adult import adult_dataset, adult_hierarchies, adult_schema, iter_adult_chunks
from .columnar import ColumnCodes, ColumnarView
from .dataset import Dataset, DatasetError, Row, dataset_from_records
from .io import read_csv, write_csv
from .hospital import (
    diagnosis_taxonomy,
    hospital_dataset,
    hospital_hierarchies,
    hospital_schema,
    iter_hospital_chunks,
)
from .streaming import (
    DEFAULT_CHUNK_ROWS,
    chunk_digest,
    dataset_from_chunks,
)
from .synthetic import (
    iter_skewed_chunks,
    skewed_dataset,
    synthetic_hierarchies,
    synthetic_schema,
)
from .schema import (
    Attribute,
    AttributeKind,
    AttributeRole,
    Schema,
    SchemaError,
    insensitive,
    quasi_identifier,
    sensitive,
)

__all__ = [
    "adult_dataset",
    "adult_hierarchies",
    "adult_schema",
    "ColumnCodes",
    "ColumnarView",
    "DEFAULT_CHUNK_ROWS",
    "Dataset",
    "DatasetError",
    "Row",
    "chunk_digest",
    "dataset_from_chunks",
    "dataset_from_records",
    "iter_adult_chunks",
    "iter_hospital_chunks",
    "iter_skewed_chunks",
    "read_csv",
    "write_csv",
    "diagnosis_taxonomy",
    "hospital_dataset",
    "hospital_hierarchies",
    "hospital_schema",
    "skewed_dataset",
    "synthetic_hierarchies",
    "synthetic_schema",
    "Attribute",
    "AttributeKind",
    "AttributeRole",
    "Schema",
    "SchemaError",
    "insensitive",
    "quasi_identifier",
    "sensitive",
]
