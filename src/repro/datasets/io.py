"""CSV round-trip for datasets (persisting workloads and releases)."""

from __future__ import annotations

import csv
import re
from pathlib import Path
from typing import Any

from ..hierarchy.base import Interval
from ..hierarchy.numeric import Span
from ..lint.redact import redact_value
from .dataset import Dataset, DatasetError
from .schema import AttributeKind, Schema

#: Separator for set-valued (frozenset) cells in CSV form.
_SET_SEPARATOR = "|"


def _serialize_cell(cell: Any) -> str:
    if isinstance(cell, frozenset):
        return "{" + _SET_SEPARATOR.join(sorted(map(str, cell))) + "}"
    return str(cell)


def write_csv(dataset: Dataset, path: str | Path) -> None:
    """Write the dataset (header + rows) as CSV.

    Generalized cells serialize losslessly: intervals in the paper's
    ``(low,high]`` notation, Mondrian spans as ``[low-high]``, set-valued
    cells as ``{a|b|c}``.
    """
    # Late import: this module loads inside the anonymize engine's import
    # chain, and repro.utility's package init re-enters that chain.
    from ..utility.atomic import atomic_writer

    with atomic_writer(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(dataset.schema.names)
        for row in dataset:
            # This IS the sanctioned release writer — the one place cells
            # may cross the boundary.
            writer.writerow(  # lint: disable=REP103
                [_serialize_cell(cell) for cell in row]
            )


def _parse_cell(text: str, kind: AttributeKind) -> Any:
    if text.startswith("{") and text.endswith("}"):
        return frozenset(text[1:-1].split(_SET_SEPARATOR))
    if kind is AttributeKind.NUMERIC:
        if text.startswith("(") and text.endswith("]"):
            low_text, high_text = text[1:-1].split(",")
            return Interval(float(low_text), float(high_text))
        if text.startswith("[") and text.endswith("]"):
            match = re.fullmatch(
                r"\[(-?[0-9.]+)-(-?[0-9.]+)\]", text
            )
            if not match:
                raise DatasetError(
                    f"unparseable span cell {redact_value(text, label='cell')}"
                )
            return Span(float(match.group(1)), float(match.group(2)))
        if text == "*":
            return text
        number = float(text)
        return int(number) if number.is_integer() else number
    return text


def read_csv(path: str | Path, schema: Schema) -> Dataset:
    """Read a CSV written by :func:`write_csv` back under ``schema``.

    Numeric columns are parsed as ints/floats; interval cells in ``(l,h]``
    notation are restored as :class:`Interval`; ``*`` stays the suppression
    token.
    """
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise DatasetError(f"{path}: empty file") from None
        if tuple(header) != schema.names:
            raise DatasetError(
                f"{path}: header {redact_value(tuple(header), label='header')} "
                f"does not match schema {schema.names!r}"
            )
        kinds = [attribute.kind for attribute in schema]
        rows = [
            tuple(_parse_cell(cell, kind) for cell, kind in zip(line, kinds))
            for line in reader
        ]
    return Dataset(schema, rows)
