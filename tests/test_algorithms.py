"""Tests for the disclosure control algorithms.

Uses the 300-row Adult sample plus the paper's 10-row table.  Every
k-guaranteeing algorithm is checked for the invariant it promises; μ-Argus
is checked for its *documented* failure to guarantee it.
"""

import pytest

from repro.anonymize.algorithms import (
    AlgorithmError,
    Datafly,
    GeneticAnonymizer,
    Incognito,
    Mondrian,
    MuArgus,
    OptimalLattice,
    RecodingWorkspace,
    Samarati,
    discernibility_cost,
    loss_metric_cost,
)
from repro.datasets import paper_tables
from repro.utility import general_loss


def paper_hierarchies():
    return {
        "Zip Code": paper_tables.zip_hierarchy(),
        "Age": paper_tables.age_hierarchy(10, 5),
        "Marital Status": paper_tables.marital_hierarchy(),
    }


def achieved_k(anonymization):
    """k over non-suppressed rows (suppressed rows form their own class)."""
    classes = anonymization.equivalence_classes
    sizes = [
        classes.size_of(i)
        for i in range(len(anonymization))
        if i not in anonymization.suppressed
    ]
    return min(sizes) if sizes else 0


class TestRecodingWorkspace:
    def test_group_sizes_full_qi(self, table1):
        workspace = RecodingWorkspace(table1, paper_hierarchies())
        counts = workspace.group_sizes((1, 1, 1))
        assert sorted(counts.values()) == [3, 3, 4]

    def test_group_sizes_projection(self, table1):
        workspace = RecodingWorkspace(table1, paper_hierarchies())
        counts = workspace.group_sizes((1,), attributes=["Zip Code"])
        assert sorted(counts.values()) == [3, 3, 4]

    def test_violating_rows(self, table1):
        workspace = RecodingWorkspace(table1, paper_hierarchies())
        assert workspace.violating_rows((1, 1, 1), 4) == [0, 1, 2, 3, 7, 8]

    def test_satisfies_k(self, table1):
        workspace = RecodingWorkspace(table1, paper_hierarchies())
        assert workspace.satisfies_k((1, 1, 1), 3)
        assert not workspace.satisfies_k((1, 1, 1), 4)
        assert workspace.satisfies_k((1, 1, 1), 4, max_suppressed=6)

    def test_node_loss_monotone(self, table1):
        workspace = RecodingWorkspace(table1, paper_hierarchies())
        assert workspace.node_loss((0, 0, 0)) == 0.0
        assert workspace.node_loss((1, 1, 1)) < workspace.node_loss((2, 1, 1))

    def test_apply_suppresses_small_classes(self, table1):
        workspace = RecodingWorkspace(table1, paper_hierarchies())
        anonymization = workspace.apply((0, 0, 0), k=2)
        # Raw table: zip+age+marital are unique per row except none; all
        # rows violate k=2 and get suppressed, forming one class of 10.
        assert anonymization.k() == 10

    def test_column_cache_consistency(self, table1):
        workspace = RecodingWorkspace(table1, paper_hierarchies())
        first = workspace.generalized_column("Zip Code", 1)
        second = workspace.generalized_column("Zip Code", 1)
        assert first is second  # cached


class TestDatafly:
    def test_achieves_k_on_adult(self, adult_small, adult_h):
        anonymization = Datafly(5).anonymize(adult_small, adult_h)
        assert achieved_k(anonymization) >= 5
        assert anonymization.suppression_fraction() <= 0.02 + 1e-9

    def test_paper_table(self, table1):
        anonymization = Datafly(3, suppression_limit=0.0).anonymize(
            table1, paper_hierarchies()
        )
        assert achieved_k(anonymization) >= 3

    def test_invalid_k(self):
        with pytest.raises(AlgorithmError):
            Datafly(0)

    def test_invalid_suppression(self):
        with pytest.raises(AlgorithmError):
            Datafly(2, suppression_limit=1.5)


class TestSamarati:
    def test_achieves_k(self, adult_small, adult_h):
        anonymization = Samarati(5).anonymize(adult_small, adult_h)
        assert achieved_k(anonymization) >= 5

    def test_minimal_height_is_minimal(self, adult_small, adult_h):
        algorithm = Samarati(5)
        workspace = RecodingWorkspace(adult_small, adult_h)
        height = algorithm.minimal_height(workspace)
        budget = int(algorithm.suppression_limit * len(adult_small))
        assert height > 0
        below = height - 1
        assert not any(
            workspace.satisfies_k(node, 5, budget)
            for node in workspace.lattice.nodes_at_height(below)
        )

    def test_k_minimal_nodes_all_satisfy(self, adult_small, adult_h):
        algorithm = Samarati(5)
        nodes = algorithm.k_minimal_nodes(adult_small, adult_h)
        workspace = RecodingWorkspace(adult_small, adult_h)
        budget = int(algorithm.suppression_limit * len(adult_small))
        assert nodes
        assert all(workspace.satisfies_k(node, 5, budget) for node in nodes)

    def test_impossible_k_raises(self, table1):
        with pytest.raises(AlgorithmError, match="no generalization"):
            Samarati(11, suppression_limit=0.0).anonymize(
                table1, paper_hierarchies()
            )


class TestIncognito:
    def test_achieves_k(self, adult_small, adult_h):
        anonymization = Incognito(5, suppression_limit=0.02).anonymize(
            adult_small, adult_h
        )
        assert achieved_k(anonymization) >= 5

    def test_all_nodes_are_k_anonymous(self, table1):
        algorithm = Incognito(3)
        hierarchies = paper_hierarchies()
        nodes = algorithm.k_anonymous_nodes(table1, hierarchies)
        workspace = RecodingWorkspace(table1, hierarchies)
        assert nodes
        assert all(workspace.satisfies_k(node, 3, 0) for node in nodes)

    def test_completeness_against_exhaustive(self, table1):
        # Incognito must find exactly the k-anonymous nodes an exhaustive
        # scan finds.
        hierarchies = paper_hierarchies()
        workspace = RecodingWorkspace(table1, hierarchies)
        exhaustive = sorted(
            node
            for node in workspace.lattice.nodes()
            if workspace.satisfies_k(node, 3, 0)
        )
        assert Incognito(3).k_anonymous_nodes(table1, hierarchies) == exhaustive

    def test_minimal_nodes_are_minimal(self, table1):
        hierarchies = paper_hierarchies()
        algorithm = Incognito(3)
        minimal = algorithm.minimal_nodes(table1, hierarchies)
        workspace = RecodingWorkspace(table1, hierarchies)
        for node in minimal:
            assert not any(
                workspace.satisfies_k(predecessor, 3, 0)
                for predecessor in workspace.lattice.predecessors(node)
            )

    def test_impossible_k_raises(self, table1):
        with pytest.raises(AlgorithmError):
            Incognito(11).anonymize(table1, paper_hierarchies())


class TestMondrian:
    @pytest.mark.parametrize("relaxed", [False, True])
    def test_achieves_k(self, adult_small, adult_h, relaxed):
        anonymization = Mondrian(5, relaxed=relaxed).anonymize(
            adult_small, adult_h
        )
        assert anonymization.k() >= 5
        assert not anonymization.suppressed

    def test_partitions_cover_all_rows(self, adult_small):
        partitions = Mondrian(10).partitions(adult_small)
        seen = sorted(row for partition in partitions for row in partition)
        assert seen == list(range(len(adult_small)))

    def test_partitions_at_least_k(self, adult_small):
        partitions = Mondrian(10).partitions(adult_small)
        assert all(len(partition) >= 10 for partition in partitions)

    def test_relaxed_partitions_bounded(self, adult_small):
        # Relaxed partitioning can always split a partition of >= 2k rows,
        # so every final partition has fewer than 2k members.
        relaxed = Mondrian(5, relaxed=True).partitions(adult_small)
        assert all(5 <= len(partition) < 10 for partition in relaxed)

    def test_mondrian_utility_beats_full_domain(self, adult_small, adult_h):
        # The multidimensional headline result: Mondrian loses less
        # information than single-dimensional full-domain recoding.
        mondrian = Mondrian(5).anonymize(adult_small, adult_h)
        datafly = Datafly(5).anonymize(adult_small, adult_h)
        assert general_loss(mondrian, adult_h) < general_loss(datafly, adult_h)

    def test_too_small_dataset_rejected(self, table1, adult_h):
        with pytest.raises(ValueError):
            Mondrian(11).anonymize(table1, None)


class TestOptimal:
    def test_achieves_k(self, table1):
        anonymization = OptimalLattice(3, suppression_limit=0.0).anonymize(
            table1, paper_hierarchies()
        )
        assert achieved_k(anonymization) >= 3

    def test_optimal_beats_heuristics_on_loss(self, adult_small, adult_h):
        optimal = OptimalLattice(5, suppression_limit=0.0).anonymize(
            adult_small, adult_h
        )
        datafly = Datafly(5, suppression_limit=0.0).anonymize(adult_small, adult_h)
        assert general_loss(optimal, adult_h) <= general_loss(datafly, adult_h) + 1e-12

    def test_frontier_matches_exhaustive_optimum(self, table1):
        # With no suppression, the frontier search must equal a brute-force
        # scan of the entire lattice.
        hierarchies = paper_hierarchies()
        workspace = RecodingWorkspace(table1, hierarchies)
        algorithm = OptimalLattice(3, suppression_limit=0.0)
        brute = min(
            (
                node
                for node in workspace.lattice.nodes()
                if workspace.satisfies_k(node, 3, 0)
            ),
            key=lambda node: loss_metric_cost(workspace, node, 3),
        )
        chosen = algorithm.anonymize(table1, hierarchies)
        chosen_node = tuple(
            chosen.levels[name] for name in workspace.qi_names
        )
        assert loss_metric_cost(workspace, chosen_node, 3) == pytest.approx(
            loss_metric_cost(workspace, brute, 3)
        )

    def test_discernibility_cost_variant(self, table1):
        anonymization = OptimalLattice(
            3, suppression_limit=0.0, cost=discernibility_cost
        ).anonymize(table1, paper_hierarchies())
        assert achieved_k(anonymization) >= 3

    def test_impossible_k_raises(self, table1):
        with pytest.raises(AlgorithmError):
            OptimalLattice(11, suppression_limit=0.0).anonymize(
                table1, paper_hierarchies()
            )


class TestGenetic:
    def test_achieves_k_via_suppression(self, table1):
        algorithm = GeneticAnonymizer(
            2, population_size=16, generations=10, seed=3
        )
        anonymization = algorithm.anonymize(table1, paper_hierarchies())
        assert achieved_k(anonymization) >= 2 or len(anonymization.suppressed) > 0
        classes = anonymization.equivalence_classes
        for row in range(len(anonymization)):
            if row not in anonymization.suppressed:
                assert classes.size_of(row) >= 2

    def test_deterministic_per_seed(self, table1):
        def run():
            return GeneticAnonymizer(
                2, population_size=12, generations=5, seed=9
            ).anonymize(table1, paper_hierarchies())

        assert run().released.rows == run().released.rows

    def test_different_seeds_may_differ(self, adult_small, adult_h):
        sample = adult_small.head(60)
        a = GeneticAnonymizer(3, population_size=10, generations=4, seed=1).anonymize(
            sample, adult_h
        )
        b = GeneticAnonymizer(3, population_size=10, generations=4, seed=2).anonymize(
            sample, adult_h
        )
        # No assertion of inequality (could coincide), but both valid.
        for anonymization in (a, b):
            classes = anonymization.equivalence_classes
            for row in range(len(anonymization)):
                if row not in anonymization.suppressed:
                    assert classes.size_of(row) >= 3

    def test_invalid_parameters(self):
        with pytest.raises(AlgorithmError):
            GeneticAnonymizer(2, population_size=1)
        with pytest.raises(AlgorithmError):
            GeneticAnonymizer(2, generations=0)
        with pytest.raises(AlgorithmError):
            GeneticAnonymizer(2, mutation_rate=2.0)
        with pytest.raises(AlgorithmError):
            GeneticAnonymizer(2, elitism=40, population_size=40)

    def test_dataset_smaller_than_k_rejected(self, table1):
        with pytest.raises(AlgorithmError):
            GeneticAnonymizer(11).anonymize(table1, paper_hierarchies())


class TestMuArgus:
    def test_combinations_up_to_dimension_safe(self, adult_small, adult_h):
        algorithm = MuArgus(5, max_combination_size=2, suppression_limit=0.0)
        anonymization = algorithm.anonymize(adult_small, adult_h)
        # Within the checked dimension, every surviving combination must be
        # safe: rebuild 2-combination frequencies over non-suppressed rows.
        import itertools

        released = anonymization.released
        qi = released.schema.quasi_identifier_names
        keep = [
            i for i in range(len(released)) if i not in anonymization.suppressed
        ]
        for pair in itertools.combinations(qi, 2):
            counts = {}
            for i in keep:
                key = (released.value(i, pair[0]), released.value(i, pair[1]))
                counts[key] = counts.get(key, 0) + 1
            assert all(count >= 5 for count in counts.values())

    def test_documented_failure_to_guarantee_k(self, adult_small, adult_h):
        # The known μ-Argus shortcoming (Sweeney [16]): checking only small
        # combinations does not give k-anonymity over the full QI.
        anonymization = MuArgus(5, max_combination_size=2).anonymize(
            adult_small, adult_h
        )
        assert achieved_k(anonymization) < 5

    def test_higher_dimension_closes_gap_on_paper_table(self, table1):
        hierarchies = paper_hierarchies()
        full = MuArgus(
            3, max_combination_size=3, suppression_limit=0.0
        ).anonymize(table1, hierarchies)
        assert achieved_k(full) >= 3

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            MuArgus(3, max_combination_size=0)


class TestVectorizedGrouping:
    """The numpy fast path must agree exactly with the dict-based
    frequency sets."""

    def test_class_size_vector_matches_group_sizes(self, adult_small, adult_h):
        workspace = RecodingWorkspace(adult_small, adult_h)
        import random

        rng = random.Random(3)
        heights = workspace.lattice.heights
        for _ in range(10):
            node = tuple(rng.randrange(h + 1) for h in heights)
            counts = workspace.group_sizes(node)
            columns = [
                workspace.generalized_column(name, level)
                for name, level in zip(workspace.qi_names, node)
            ]
            expected = [counts[key] for key in zip(*columns)]
            assert workspace.class_size_vector(node).tolist() == expected

    def test_violations_consistent(self, adult_small, adult_h):
        workspace = RecodingWorkspace(adult_small, adult_h)
        node = (2, 1, 1, 1, 0, 0, 1)
        rows = workspace.violating_rows(node, 5)
        assert workspace.violation_count(node, 5) == len(rows)
        sizes = workspace.class_size_vector(node)
        assert all(sizes[row] < 5 for row in rows)

    def test_code_column_cached_and_dense(self, adult_small, adult_h):
        workspace = RecodingWorkspace(adult_small, adult_h)
        codes, count = workspace.code_column("age", 2)
        again, _ = workspace.code_column("age", 2)
        assert codes is again
        assert min(codes) == 0
        assert max(codes) == count - 1

    def test_projection_grouping(self, adult_small, adult_h):
        workspace = RecodingWorkspace(adult_small, adult_h)
        sizes = workspace.class_size_vector((1,), attributes=["sex"])
        counts = workspace.group_sizes((1,), attributes=["sex"])
        assert sum(sizes) == sum(v * v for v in counts.values())
