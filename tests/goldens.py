"""Golden fixtures pinning the measurement plane's observable outputs.

The columnar refactor must be *invisible*: released rows, class partitions
and property vectors have to stay byte-identical to the row plane that
produced the paper's numbers.  This module defines the fixture cases (every
algorithm in ``anonymize/algorithms`` on the paper tables and an Adult
sample), a deterministic digest of each release, and a tiny CLI used to
record the fixtures *before* a plane swap:

    PYTHONPATH=src python -m tests.goldens          # writes tests/golden/*.json

``tests/test_golden_plane.py`` recomputes every case and compares against
the committed JSON.  Digests are sha256 over ``repr``-serialized cells and
``repr``-serialized floats, so they are independent of ``PYTHONHASHSEED``
and of the process, but sensitive to one ulp of drift — exactly the
contract the refactor has to honor.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro.anonymize.algorithms import (
    BottomUpGeneralization,
    ConstrainedLattice,
    Datafly,
    GeneticAnonymizer,
    Incognito,
    KMemberClustering,
    Mondrian,
    MuArgus,
    OptimalLattice,
    RandomRecoding,
    Samarati,
    TopDownSpecialization,
    discernibility_cost,
)
from repro.anonymize.engine import Anonymization
from repro.core.properties import (
    distinct_sensitive_values,
    equivalence_class_size,
    sensitive_value_count,
    sensitive_value_fraction,
    tuple_loss,
    tuple_utility,
)
from repro.datasets import adult_dataset, adult_hierarchies, paper_tables
from repro.hierarchy.base import Hierarchy
from repro.privacy.kanonymity import KAnonymity
from repro.utility.discernibility import discernibility, tuple_penalties
from repro.utility.loss_metric import general_loss
from repro.utility.precision import precision, tuple_precisions

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_FILE = GOLDEN_DIR / "measurement_plane.json"


def _digest(tokens: Sequence[str]) -> str:
    hasher = hashlib.sha256()
    for token in tokens:
        hasher.update(token.encode("utf-8"))
        hasher.update(b"\x1f")
    return hasher.hexdigest()


def _cell_token(cell: Any) -> str:
    # Set-typed cells (Mondrian's categorical groups) repr in hash order;
    # canonicalize by sorted element repr so digests are process-stable.
    if isinstance(cell, (set, frozenset)):
        inner = ",".join(sorted(repr(element) for element in cell))
        return f"{type(cell).__name__}:{{{inner}}}"
    return f"{type(cell).__name__}:{cell!r}"


def digest_cells(rows: Sequence[Sequence[Any]]) -> str:
    """Digest of a table: every cell as ``type:repr``, in row-major order."""
    return _digest([_cell_token(cell) for row in rows for cell in row])


def digest_floats(values: Sequence[float]) -> str:
    """Digest of a float sequence via ``repr`` (one ulp changes it)."""
    return _digest([repr(float(value)) for value in values])


def digest_ints(values: Sequence[int]) -> str:
    return _digest([repr(int(value)) for value in values])


def record_release(
    anonymization: Anonymization,
    hierarchies: Mapping[str, Hierarchy],
    sensitive: str | None,
) -> dict[str, Any]:
    """Everything observable about one release, digested for comparison."""
    classes = anonymization.equivalence_classes
    record: dict[str, Any] = {
        "name": anonymization.name,
        "levels": anonymization.levels,
        "suppressed": sorted(anonymization.suppressed),
        "k": anonymization.k(),
        "suppression_fraction": repr(anonymization.suppression_fraction()),
        "released": digest_cells(anonymization.released.rows),
        "class_of": digest_ints(
            [classes.class_of(i) for i in range(classes.row_count)]
        ),
        "class_sizes": classes.class_sizes(),
        "class_keys": digest_cells(
            [classes.key_of_class(c) for c in range(len(classes))]
        ),
        "pv_class_size": digest_floats(equivalence_class_size(anonymization)),
        "pv_tuple_loss": digest_floats(tuple_loss(anonymization, hierarchies)),
        "pv_tuple_utility": digest_floats(tuple_utility(anonymization, hierarchies)),
        "pv_penalties": digest_ints(tuple_penalties(anonymization)),
        "pv_precision": digest_floats(tuple_precisions(anonymization, hierarchies)),
        "discernibility": discernibility(anonymization),
        "general_loss": repr(general_loss(anonymization, hierarchies)),
        "precision": repr(precision(anonymization, hierarchies)),
    }
    if sensitive is not None:
        record["pv_sensitive_count"] = digest_floats(
            sensitive_value_count(anonymization, sensitive)
        )
        record["pv_sensitive_fraction"] = digest_floats(
            sensitive_value_fraction(anonymization, sensitive)
        )
        record["pv_distinct_sensitive"] = digest_floats(
            distinct_sensitive_values(anonymization, sensitive)
        )
    return record


def _paper_algorithms() -> list[tuple[str, Any]]:
    return [
        ("datafly", Datafly(2)),
        ("samarati", Samarati(2)),
        ("incognito", Incognito(2, suppression_limit=0.1)),
        ("optimal-lm", OptimalLattice(2)),
        ("optimal-dm", OptimalLattice(2, cost=discernibility_cost)),
        (
            "genetic",
            GeneticAnonymizer(2, population_size=10, generations=6, seed=5),
        ),
        ("mondrian-strict", Mondrian(2)),
        ("mondrian-relaxed", Mondrian(2, relaxed=True)),
        ("muargus", MuArgus(2)),
        ("random", RandomRecoding(2, seed=3)),
        ("bottomup", BottomUpGeneralization(2)),
        ("topdown", TopDownSpecialization(2)),
        ("clustering", KMemberClustering(2)),
        ("constrained", ConstrainedLattice([KAnonymity(2)])),
    ]


def _adult_algorithms() -> list[tuple[str, Any]]:
    return [
        ("datafly", Datafly(5)),
        ("samarati", Samarati(5)),
        ("incognito", Incognito(5, suppression_limit=0.05)),
        ("optimal-lm", OptimalLattice(5)),
        ("optimal-dm", OptimalLattice(5, cost=discernibility_cost)),
        (
            "genetic",
            GeneticAnonymizer(5, population_size=12, generations=6, seed=7),
        ),
        ("mondrian-strict", Mondrian(5)),
        ("mondrian-relaxed", Mondrian(5, relaxed=True)),
        ("muargus", MuArgus(5)),
        ("random", RandomRecoding(5, seed=1)),
        ("bottomup", BottomUpGeneralization(5)),
        ("topdown", TopDownSpecialization(5)),
        ("clustering", KMemberClustering(5)),
        ("constrained", ConstrainedLattice([KAnonymity(3)])),
    ]


def golden_cases() -> dict[str, Callable[[], dict[str, Any]]]:
    """Case id -> thunk computing the golden record for that case."""
    cases: dict[str, Callable[[], dict[str, Any]]] = {}

    paper_data = paper_tables.table1()
    paper_scheme = paper_tables._scheme(age_width=10, age_anchor=5)
    paper_sensitive = paper_tables.SENSITIVE_ATTRIBUTE

    def paper_case(algorithm: Any) -> Callable[[], dict[str, Any]]:
        return lambda: record_release(
            algorithm.anonymize(paper_data, paper_scheme),
            paper_scheme,
            paper_sensitive,
        )

    for label, algorithm in _paper_algorithms():
        cases[f"table1/{label}"] = paper_case(algorithm)

    for label, thunk in (
        ("t3a", paper_tables.t3a),
        ("t3b", paper_tables.t3b),
        ("t4", paper_tables.t4),
    ):
        scheme = {
            "t3a": paper_tables._scheme(age_width=10, age_anchor=5),
            "t3b": paper_tables._scheme(age_width=20, age_anchor=15),
            "t4": paper_tables._scheme(age_width=20, age_anchor=0),
        }[label]
        cases[f"table1/{label}"] = (
            lambda thunk=thunk, scheme=scheme: record_release(
                thunk(), scheme, paper_sensitive
            )
        )

    adult_data = adult_dataset(150, seed=11)
    adult_scheme = adult_hierarchies()

    def adult_case(algorithm: Any) -> Callable[[], dict[str, Any]]:
        return lambda: record_release(
            algorithm.anonymize(adult_data, adult_scheme), adult_scheme, None
        )

    for label, algorithm in _adult_algorithms():
        cases[f"adult150/{label}"] = adult_case(algorithm)

    return cases


def write_goldens(path: Path = GOLDEN_FILE) -> dict[str, Any]:
    """Record every case and write the fixture file (returns the payload)."""
    payload = {
        "comment": (
            "Golden measurement-plane fixtures; regenerate with "
            "`PYTHONPATH=src python -m tests.goldens` ONLY for an "
            "intentional behavior change."
        ),
        "cases": {case: thunk() for case, thunk in sorted(golden_cases().items())},
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return payload


def load_goldens(path: Path = GOLDEN_FILE) -> dict[str, Any]:
    return json.loads(path.read_text())


if __name__ == "__main__":
    written = write_goldens()
    print(f"wrote {len(written['cases'])} cases to {GOLDEN_FILE}")
