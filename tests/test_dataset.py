"""Tests for repro.datasets.dataset."""

import pytest

from repro.datasets.dataset import Dataset, DatasetError, dataset_from_records
from repro.datasets.schema import (
    AttributeKind,
    Schema,
    insensitive,
    quasi_identifier,
    sensitive,
)


@pytest.fixture
def schema():
    return Schema.of(
        quasi_identifier("zip", AttributeKind.STRING),
        quasi_identifier("age", AttributeKind.NUMERIC),
        sensitive("disease"),
    )


@pytest.fixture
def data(schema):
    return Dataset(
        schema,
        [
            ("13053", 28, "flu"),
            ("13268", 41, "cold"),
            ("13053", 31, "flu"),
        ],
    )


class TestConstruction:
    def test_row_width_validated(self, schema):
        with pytest.raises(DatasetError, match="row 1"):
            Dataset(schema, [("a", 1, "x"), ("b", 2)])

    def test_rows_are_tuples(self, schema):
        data = Dataset(schema, [["13053", 28, "flu"]])
        assert data[0] == ("13053", 28, "flu")
        assert isinstance(data[0], tuple)

    def test_empty_dataset_allowed(self, schema):
        assert len(Dataset(schema, [])) == 0

    def test_from_records(self, schema):
        data = dataset_from_records(
            schema, [{"zip": "13053", "age": 28, "disease": "flu"}]
        )
        assert data[0] == ("13053", 28, "flu")

    def test_from_records_missing_key(self, schema):
        with pytest.raises(DatasetError, match="missing"):
            dataset_from_records(schema, [{"zip": "13053", "age": 28}])


class TestAccess:
    def test_column(self, data):
        assert data.column("age") == (28, 41, 31)

    def test_value(self, data):
        assert data.value(1, "disease") == "cold"

    def test_distinct(self, data):
        assert data.distinct("zip") == {"13053", "13268"}

    def test_qi_tuples(self, data):
        assert data.quasi_identifier_tuples() == (
            ("13053", 28),
            ("13268", 41),
            ("13053", 31),
        )

    def test_qi_tuple_single_row(self, data):
        assert data.quasi_identifier_tuple(2) == ("13053", 31)

    def test_iteration_order(self, data):
        assert [row[1] for row in data] == [28, 41, 31]


class TestDerivation:
    def test_replace_rows(self, data):
        other = data.replace_rows([("x", 1, "y")])
        assert len(other) == 1
        assert len(data) == 3  # original untouched

    def test_select(self, data):
        young = data.select(lambda row: row[1] < 40)
        assert len(young) == 2

    def test_project(self, data):
        projected = data.project(["disease", "age"])
        assert projected.schema.names == ("disease", "age")
        assert projected[0] == ("flu", 28)

    def test_head(self, data):
        assert len(data.head(2)) == 2

    def test_with_roles(self, data):
        from repro.datasets.schema import AttributeRole

        relabeled = data.with_roles({"age": AttributeRole.INSENSITIVE})
        assert relabeled.schema.quasi_identifier_names == ("zip",)

    def test_equality_and_hash(self, data, schema):
        clone = Dataset(schema, list(data.rows))
        assert clone == data
        assert hash(clone) == hash(data)
        assert data != data.head(2)


class TestRendering:
    def test_to_text_contains_values(self, data):
        text = data.to_text()
        assert "13053" in text
        assert "disease" in text

    def test_to_text_truncates(self, data):
        text = data.to_text(max_rows=1)
        assert "2 more rows" in text
