"""Tests for property extractors (anonymization -> property vector)."""

import pytest

from repro.core.properties import (
    breach_probability,
    discernibility_penalty,
    distinct_sensitive_values,
    equivalence_class_size,
    sensitive_value_count,
    sensitive_value_fraction,
    tuple_loss,
    tuple_utility,
)
from repro.datasets import paper_tables
from repro.datasets.schema import SchemaError


def paper_hierarchies():
    return {
        "Zip Code": paper_tables.zip_hierarchy(),
        "Age": paper_tables.age_hierarchy(10, 5),
        "Marital Status": paper_tables.marital_hierarchy(),
    }


class TestClassSizeProperties:
    def test_t3a_vector(self, t3a):
        vector = equivalence_class_size(t3a)
        assert vector.as_tuple() == tuple(map(float, paper_tables.CLASS_SIZE_T3A))
        assert vector.higher_is_better

    def test_breach_probability_reciprocal(self, t3a):
        sizes = equivalence_class_size(t3a)
        breaches = breach_probability(t3a)
        assert not breaches.higher_is_better
        for size, breach in zip(sizes, breaches):
            assert breach == pytest.approx(1.0 / size)

    def test_t3b_breach_matches_paper(self, t3b):
        # Section 1: tuples {2,3,5,6,7,9,10} have breach probability 1/7.
        breaches = breach_probability(t3b)
        for row in (1, 2, 4, 5, 6, 8, 9):
            assert breaches[row] == pytest.approx(1 / 7)


class TestSensitiveProperties:
    def test_count_vector_matches_paper(self, t3a):
        vector = sensitive_value_count(t3a, paper_tables.SENSITIVE_ATTRIBUTE)
        assert vector.as_tuple() == tuple(
            map(float, paper_tables.SENSITIVE_COUNT_T3A)
        )

    def test_fraction_lower_is_better(self, t3a):
        vector = sensitive_value_fraction(t3a, paper_tables.SENSITIVE_ATTRIBUTE)
        assert not vector.higher_is_better
        # Tuple 1: 2 of 3 in its class share CF-Spouse.
        assert vector[0] == pytest.approx(2 / 3)

    def test_distinct_values(self, t3a):
        vector = distinct_sensitive_values(t3a, paper_tables.SENSITIVE_ATTRIBUTE)
        # Class {1,4,8}: CF-Spouse x2, Spouse Present -> 2 distinct.
        assert vector[0] == 2
        # Class {5,6,7,10}: Divorced x2, Spouse Absent, Separated -> 3.
        assert vector[4] == 3

    def test_default_sensitive_requires_unique(self, t3a):
        # The paper schema declares marital as a QI, so the default lookup
        # must fail loudly instead of guessing.
        with pytest.raises(SchemaError, match="sensitive"):
            sensitive_value_count(t3a)


class TestUtilityProperties:
    def test_loss_orientation(self, t3a):
        vector = tuple_loss(t3a, paper_hierarchies())
        assert not vector.higher_is_better
        assert all(0.0 <= value <= 3.0 for value in vector)

    def test_utility_complements_loss(self, t3a):
        hierarchies = paper_hierarchies()
        losses = tuple_loss(t3a, hierarchies)
        utilities = tuple_utility(t3a, hierarchies)
        for loss, utility in zip(losses, utilities):
            assert loss + utility == pytest.approx(3.0)

    def test_t3a_has_higher_utility_than_t3b(self, t3a, t3b):
        # The paper's Section 5.5 shape: T3a is less generalized, so every
        # tuple keeps at least as much utility, most strictly more.
        hierarchies_a = paper_hierarchies()
        hierarchies_b = {
            "Zip Code": paper_tables.zip_hierarchy(),
            "Age": paper_tables.age_hierarchy(20, 15),
            "Marital Status": paper_tables.marital_hierarchy(),
        }
        u_a = tuple_utility(t3a, hierarchies_a)
        u_b = tuple_utility(t3b, hierarchies_b)
        from repro.core.comparators import strongly_dominates

        assert strongly_dominates(u_a, u_b)

    def test_discernibility_penalty(self, t3a):
        vector = discernibility_penalty(t3a)
        assert not vector.higher_is_better
        assert vector.as_tuple() == tuple(map(float, paper_tables.CLASS_SIZE_T3A))


class TestSuppressedRows:
    def test_suppressed_rows_score_worst(self, table1):
        from repro.anonymize.engine import recode

        hierarchies = paper_hierarchies()
        anonymization = recode(
            table1,
            hierarchies,
            {"Zip Code": 1, "Age": 1, "Marital Status": 1},
            suppress=[0],
        )
        losses = tuple_loss(anonymization, hierarchies)
        assert losses[0] == pytest.approx(3.0)
        penalties = discernibility_penalty(anonymization)
        assert penalties[0] == len(table1)
