"""Hypothesis property tests for the Section-5 comparator family.

Algebraic contracts every ▶-better comparator must satisfy on random
property vectors:

* **reflexive equivalence** — ``relation(v, v) is EQUIVALENT`` (a release
  can never beat itself);
* **antisymmetry** — ``relation(a, b) == relation(b, a).flipped()`` (both
  operands agree on who won);
* **dominance consistency** (Table 4) — when ``a`` strictly dominates
  ``b`` in every tuple by a material margin, every comparator must call
  ``a`` BETTER; under mere weak dominance no comparator may call ``a``
  WORSE.

The same contracts are checked for the set-level P_WTD / P_LEX / P_GOAL
comparators of Sections 5.5–5.7 on paired Υ sets.

Margins are kept well above the ``np.isclose`` tolerances the spread /
weighted / goal comparators use for their equivalence bands, so "material
dominance" can never land inside a tie band.
"""

from __future__ import annotations

from repro.kernels.array import xp as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.comparators import (  # noqa: E402
    CoverageBetter,
    HypervolumeBetter,
    MinBetter,
    RankBetter,
    Relation,
    SpreadBetter,
    dominance_relation,
    strongly_dominates,
    weakly_dominates,
)
from repro.core.multicomparators import (  # noqa: E402
    GoalBetter,
    LexicographicBetter,
    WeightedBetter,
)
from repro.core.vector import PropertyVector  # noqa: E402

#: Value band for random property vectors.  Strictly positive keeps the
#: hypervolume reference (0.0) valid; the [1, 50] band plus >= 0.5 boosts
#: keeps every "material dominance" case far outside isclose tolerance.
_VALUE_BAND = (1.0, 50.0)
_BOOST_BAND = (0.5, 10.0)
#: The rank comparator's ideal: the band's upper bound weakly dominates
#: every generated vector, so dominance shrinks the distance to it.
_IDEAL = _VALUE_BAND[1] + max(_BOOST_BAND)

values = st.floats(
    min_value=_VALUE_BAND[0],
    max_value=_VALUE_BAND[1],
    allow_nan=False,
    allow_infinity=False,
)
boosts = st.floats(
    min_value=_BOOST_BAND[0],
    max_value=_BOOST_BAND[1],
    allow_nan=False,
    allow_infinity=False,
)


@st.composite
def vector_pairs(draw):
    """Two independent random property vectors of equal length."""
    size = draw(st.integers(min_value=2, max_value=12))
    first = draw(st.lists(values, min_size=size, max_size=size))
    second = draw(st.lists(values, min_size=size, max_size=size))
    return PropertyVector(first), PropertyVector(second)


@st.composite
def dominated_pairs(draw):
    """A pair where the first strictly dominates the second everywhere."""
    size = draw(st.integers(min_value=2, max_value=12))
    base = draw(st.lists(values, min_size=size, max_size=size))
    margin = draw(st.lists(boosts, min_size=size, max_size=size))
    boosted = [b + m for b, m in zip(base, margin)]
    return PropertyVector(boosted), PropertyVector(base)


def comparators():
    return [
        MinBetter(),
        RankBetter(_IDEAL),
        CoverageBetter(),
        CoverageBetter(strict=True),
        SpreadBetter(),
        HypervolumeBetter(reference=0.0),
    ]


def set_comparators():
    return [
        WeightedBetter([0.6, 0.4]),
        LexicographicBetter(),
        GoalBetter([1.0, 1.0]),
    ]


# -- single-vector comparators -----------------------------------------------


@settings(max_examples=100, deadline=None)
@given(vector_pairs())
def test_reflexive_equivalence(pair):
    first, _ = pair
    for comparator in comparators():
        assert comparator.relation(first, first) is Relation.EQUIVALENT, (
            f"{comparator.name} does not treat a vector as equivalent to itself"
        )


@settings(max_examples=100, deadline=None)
@given(vector_pairs())
def test_antisymmetry(pair):
    first, second = pair
    for comparator in comparators():
        forward = comparator.relation(first, second)
        backward = comparator.relation(second, first)
        assert forward is backward.flipped(), (
            f"{comparator.name}: {forward} forward but {backward} backward"
        )


@settings(max_examples=100, deadline=None)
@given(dominated_pairs())
def test_material_dominance_wins(pair):
    """Strict everywhere-dominance by >= 0.5 must be BETTER for every
    comparator — a ▶-better relation disagreeing with strong dominance
    would invert the paper's Table 4 hierarchy."""
    first, second = pair
    assert strongly_dominates(first, second)
    assert dominance_relation(first, second) is Relation.BETTER
    for comparator in comparators():
        assert comparator.relation(first, second) is Relation.BETTER, (
            f"{comparator.name} does not honor material strong dominance"
        )


@settings(max_examples=100, deadline=None)
@given(vector_pairs())
def test_weak_dominance_never_loses(pair):
    """A weakly dominating vector may tie, but must never be WORSE."""
    first, second = pair
    merged = PropertyVector(np.maximum(first.oriented, second.oriented))
    assert weakly_dominates(merged, second)
    for comparator in comparators():
        assert comparator.relation(merged, second) is not Relation.WORSE, (
            f"{comparator.name} ranks a weakly dominating vector as worse"
        )


@settings(max_examples=100, deadline=None)
@given(vector_pairs())
def test_strict_dominance_relation_is_antisymmetric(pair):
    first, second = pair
    forward = dominance_relation(first, second)
    backward = dominance_relation(second, first)
    assert forward is backward.flipped()
    assert dominance_relation(first, first) is Relation.EQUIVALENT


# -- set-level comparators (Sections 5.5-5.7) --------------------------------


@st.composite
def dominated_set_pairs(draw):
    """Paired Υ sets of two properties; the first dominates per property."""
    size = draw(st.integers(min_value=2, max_value=10))
    sets = []
    for _ in range(2):
        base = draw(st.lists(values, min_size=size, max_size=size))
        margin = draw(st.lists(boosts, min_size=size, max_size=size))
        boosted = [b + m for b, m in zip(base, margin)]
        sets.append((PropertyVector(boosted), PropertyVector(base)))
    first = [pair[0] for pair in sets]
    second = [pair[1] for pair in sets]
    return first, second


@settings(max_examples=100, deadline=None)
@given(dominated_set_pairs())
def test_set_comparators_reflexive_and_antisymmetric(pair):
    first, second = pair
    for comparator in set_comparators():
        assert comparator.relation(first, first) is Relation.EQUIVALENT
        assert comparator.relation(second, second) is Relation.EQUIVALENT
        forward = comparator.relation(first, second)
        backward = comparator.relation(second, first)
        assert forward is backward.flipped(), (
            f"{comparator.name}: {forward} forward but {backward} backward"
        )


@settings(max_examples=100, deadline=None)
@given(dominated_set_pairs())
def test_set_comparators_honor_dominance(pair):
    """Υ1 strictly dominating Υ2 on every property must win under P_WTD,
    P_LEX and P_GOAL alike (Table 4 consistency, lifted to sets)."""
    first, second = pair
    for comparator in set_comparators():
        assert comparator.relation(first, second) is Relation.BETTER, (
            f"{comparator.name} does not honor per-property strong dominance"
        )
