"""Tests for the hospital workload and the k-member clustering anonymizer."""

import pytest

from repro.anonymize.algorithms import AlgorithmError, KMemberClustering
from repro.datasets import (
    diagnosis_taxonomy,
    hospital_dataset,
    hospital_hierarchies,
    hospital_schema,
)
from repro.hierarchy import Span


@pytest.fixture(scope="module")
def hospital():
    return hospital_dataset(120, seed=3)


@pytest.fixture(scope="module")
def hierarchies():
    return hospital_hierarchies()


class TestHospitalWorkload:
    def test_deterministic(self):
        assert hospital_dataset(30, seed=1).rows == hospital_dataset(30, seed=1).rows

    def test_schema_roles(self):
        schema = hospital_schema()
        assert schema.quasi_identifier_names == ("zip", "age", "sex")
        assert schema.sensitive_names == ("diagnosis",)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            hospital_dataset(-1)

    def test_hierarchies_cover_values(self, hospital, hierarchies):
        for name in hospital.schema.quasi_identifier_names:
            hierarchy = hierarchies[name]
            for value in hospital.distinct(name):
                for level in range(hierarchy.height + 1):
                    hierarchy.generalize(value, level)

    def test_age_diagnosis_correlation(self):
        data = hospital_dataset(2000, seed=5)
        by_chapter = {}
        taxonomy = diagnosis_taxonomy()
        for row in data:
            chapter = taxonomy.generalize(row[3], 1)
            by_chapter.setdefault(chapter, []).append(row[1])
        mean = lambda xs: sum(xs) / len(xs)
        assert mean(by_chapter["Circulatory"]) > mean(by_chapter["Injury"]) + 15

    def test_diagnosis_taxonomy_usable_in_models(self, hospital, hierarchies):
        from repro import Datafly, TCloseness

        release = Datafly(5).anonymize(hospital, hierarchies)
        model = TCloseness(0.9, "diagnosis", taxonomy=diagnosis_taxonomy())
        distances = model.class_distances(release)
        assert all(0.0 <= d <= 1.0 for d in distances)

    def test_guarding_nodes_on_chapters(self, hospital, hierarchies):
        from repro import Datafly, PersonalizedPrivacy

        release = Datafly(10).anonymize(hospital, hierarchies)
        taxonomy = diagnosis_taxonomy()
        # Everyone guards their diagnosis chapter.
        guarding = [
            taxonomy.generalize(row[3], 1) for row in hospital
        ]
        model = PersonalizedPrivacy(
            taxonomy, guarding, bound=1.0, sensitive_attribute="diagnosis"
        )
        probabilities = model.breach_probabilities(release)
        assert all(0.0 <= p <= 1.0 for p in probabilities)


class TestKMemberClustering:
    def test_achieves_k(self, hospital, hierarchies):
        release = KMemberClustering(5).anonymize(hospital, hierarchies)
        assert release.k() >= 5
        assert not release.suppressed

    def test_clusters_partition_rows(self, hospital, hierarchies):
        clusters = KMemberClustering(5).clusters(hospital, hierarchies)
        seen = sorted(row for cluster in clusters for row in cluster)
        assert seen == list(range(len(hospital)))
        assert all(len(cluster) >= 5 for cluster in clusters)

    def test_numeric_cells_are_cluster_spans(self, hospital, hierarchies):
        release = KMemberClustering(5).anonymize(hospital, hierarchies)
        position = hospital.schema.index_of("age")
        for row_index, row in enumerate(release.released):
            cell = row[position]
            raw = hospital[row_index][position]
            if isinstance(cell, Span):
                assert raw in cell
            else:
                assert cell == raw

    def test_categorical_cells_cover_raw(self, hospital, hierarchies):
        from repro.attack import cell_matches

        release = KMemberClustering(5).anonymize(hospital, hierarchies)
        position = hospital.schema.index_of("zip")
        zip_hierarchy = hierarchies["zip"]
        for row_index, row in enumerate(release.released):
            assert cell_matches(
                row[position], hospital[row_index][position], zip_hierarchy
            )

    def test_clustering_beats_full_domain_on_utility(
        self, hospital, hierarchies
    ):
        from repro import Datafly
        from repro.utility import general_loss

        clustered = KMemberClustering(5).anonymize(hospital, hierarchies)
        full_domain = Datafly(5, suppression_limit=0.0).anonymize(
            hospital, hierarchies
        )
        assert general_loss(clustered, hierarchies) < general_loss(
            full_domain, hierarchies
        )

    def test_too_small_dataset(self, hierarchies):
        with pytest.raises(AlgorithmError):
            KMemberClustering(11).anonymize(
                hospital_dataset(10, seed=1), hierarchies
            )

    def test_deterministic(self, hospital, hierarchies):
        first = KMemberClustering(4).anonymize(hospital, hierarchies)
        second = KMemberClustering(4).anonymize(hospital, hierarchies)
        assert first.released.rows == second.released.rows
