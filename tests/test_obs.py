"""Unit tests for the observability core (:mod:`repro.obs`).

Covers the tracer (nesting, fake clocks, grafting worker spans, error
recording, picklability across the pool boundary), the metrics registry
(counters/gauges/histograms, merge, per-run deltas), the exporters
(Chrome-trace shape, atomicity, round-tripping), the ART011 artifact
checker, and the null objects' zero-effect contract.
"""

from __future__ import annotations

import dataclasses
import json
import pickle

import pytest

from repro.lint.api import check_obs_artifacts
from repro.obs import (
    NULL_METRICS,
    NULL_OBSERVATION,
    NULL_TRACER,
    FakeClock,
    MetricsRegistry,
    Observation,
    Tracer,
    current,
    metrics,
    observing,
    span_tree,
    tracer,
)
from repro.obs.export import (
    chrome_trace_payload,
    read_metrics_snapshot,
    read_trace_events,
    spans_from_trace_file,
    write_chrome_trace,
    write_metrics_snapshot,
)
from repro.obs.metrics import METRICS_SCHEMA
from repro.obs.trace import slowest_spans, spans_from_payload


def _errors(findings):
    return [f for f in findings if f.severity.value == "error"]


# -- tracer ------------------------------------------------------------------


class TestTracer:
    def test_spans_nest_by_stack(self):
        t = Tracer(clock=FakeClock())
        with t.span("outer"):
            with t.span("inner"):
                pass
            with t.span("sibling"):
                pass
        spans = {span.name: span for span in t.spans}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["sibling"].parent_id == spans["outer"].span_id
        assert spans["outer"].parent_id is None

    def test_fake_clock_is_deterministic(self):
        first = Tracer(clock=FakeClock())
        second = Tracer(clock=FakeClock())
        for t in (first, second):
            with t.span("a"):
                with t.span("b"):
                    pass
        assert [
            (s.name, s.start, s.end) for s in first.spans
        ] == [(s.name, s.start, s.end) for s in second.spans]

    def test_durations_are_non_negative_and_monotone(self):
        t = Tracer(clock=FakeClock())
        with t.span("a"):
            pass
        span = t.spans[0]
        assert span.end >= span.start
        assert span.duration >= 0

    def test_span_records_error_class(self):
        t = Tracer(clock=FakeClock())
        with pytest.raises(ValueError):
            with t.span("boom"):
                raise ValueError("nope")
        assert t.spans[0].args["error"] == "ValueError"

    def test_span_args_via_set(self):
        t = Tracer(clock=FakeClock())
        with t.span("task") as span:
            span.set(rows=40, op="anonymize")
        assert t.spans[0].args == {"rows": 40, "op": "anonymize"}

    def test_graft_rebases_ids_and_parents(self):
        worker = Tracer(clock=FakeClock())
        with worker.span("task"):
            with worker.span("recode"):
                pass
        coordinator = Tracer(clock=FakeClock())
        with coordinator.span("run"):
            coordinator.graft(worker.spans)
        spans = {span.name: span for span in coordinator.spans}
        assert spans["task"].parent_id == spans["run"].span_id
        assert spans["recode"].parent_id == spans["task"].span_id
        ids = [span.span_id for span in coordinator.spans]
        assert len(ids) == len(set(ids))

    def test_graft_shifts_timestamps(self):
        worker = Tracer(clock=FakeClock())
        with worker.span("task"):
            pass
        coordinator = Tracer(clock=FakeClock(start=100.0))
        coordinator.graft(worker.spans, shift=100.0)
        assert coordinator.spans[0].start == pytest.approx(
            worker.spans[0].start + 100.0
        )

    def test_spans_pickle_across_pool_boundary(self):
        t = Tracer(clock=FakeClock())
        with t.span("task", category="task", op="anonymize"):
            pass
        restored = pickle.loads(pickle.dumps(tuple(t.spans)))
        assert restored == tuple(t.spans)

    def test_span_tree_ignores_timing(self):
        fast = Tracer(clock=FakeClock(step=0.001))
        slow = Tracer(clock=FakeClock(step=7.0))
        for t in (fast, slow):
            with t.span("run"):
                with t.span("b"):
                    pass
                with t.span("a"):
                    pass
        assert span_tree(fast.spans) == span_tree(slow.spans)

    def test_span_tree_sorts_children(self):
        t = Tracer(clock=FakeClock())
        with t.span("run"):
            with t.span("z"):
                pass
            with t.span("a"):
                pass
        tree = span_tree(t.spans)
        assert [child["name"] for child in tree[0]["children"]] == ["a", "z"]

    def test_slowest_spans_orders_by_duration(self):
        t = Tracer(clock=FakeClock())
        with t.span("outer"):
            with t.span("inner"):
                pass
        ranked = slowest_spans(t.spans, limit=2)
        assert [span.name for span in ranked] == ["outer", "inner"]

    def test_spans_from_payload_round_trip(self):
        t = Tracer(clock=FakeClock())
        with t.span("task"):
            pass
        records = [dataclasses.asdict(span) for span in t.spans]
        assert spans_from_payload(records) == list(t.spans)


# -- metrics -----------------------------------------------------------------


class TestMetrics:
    def test_counters_accumulate(self):
        m = MetricsRegistry()
        m.inc("cache.hit")
        m.inc("cache.hit", 2)
        assert m.counter("cache.hit") == 3

    def test_negative_increment_rejected(self):
        m = MetricsRegistry()
        with pytest.raises(ValueError):
            m.inc("cache.hit", -1)

    def test_histogram_summary(self):
        m = MetricsRegistry()
        for value in (0.5, 2.0, 1.0):
            m.observe("task.exec_seconds", value)
        hist = m.snapshot()["histograms"]["task.exec_seconds"]
        assert hist == {"count": 3, "sum": 3.5, "min": 0.5, "max": 2.0}

    def test_snapshot_keys_sorted(self):
        m = MetricsRegistry()
        m.inc("z")
        m.inc("a")
        snapshot = m.snapshot()
        assert snapshot["schema"] == METRICS_SCHEMA
        assert list(snapshot["counters"]) == ["a", "z"]

    def test_merge_folds_worker_snapshot(self):
        coordinator = MetricsRegistry()
        coordinator.inc("cache.hit", 2)
        coordinator.observe("task.exec_seconds", 1.0)
        worker = MetricsRegistry()
        worker.inc("cache.hit", 3)
        worker.observe("task.exec_seconds", 5.0)
        coordinator.merge(worker.snapshot())
        snapshot = coordinator.snapshot()
        assert snapshot["counters"]["cache.hit"] == 5
        assert snapshot["histograms"]["task.exec_seconds"] == {
            "count": 2,
            "sum": 6.0,
            "min": 1.0,
            "max": 5.0,
        }

    def test_delta_since_reports_only_new_activity(self):
        m = MetricsRegistry()
        m.inc("cache.hit", 4)
        m.observe("task.exec_seconds", 1.0)
        mark = m.mark()
        m.inc("cache.hit", 2)
        m.inc("cache.miss")
        m.observe("task.exec_seconds", 3.0)
        delta = m.delta_since(mark)
        assert delta["counters"] == {"cache.hit": 2, "cache.miss": 1}
        assert delta["histograms"]["task.exec_seconds"]["count"] == 1
        assert delta["histograms"]["task.exec_seconds"]["sum"] == pytest.approx(3.0)

    def test_delta_since_empty_when_idle(self):
        m = MetricsRegistry()
        m.inc("cache.hit")
        delta = m.delta_since(m.mark())
        assert delta["counters"] == {}
        assert delta["histograms"] == {}


# -- null objects ------------------------------------------------------------


class TestNullPath:
    def test_null_tracer_allocates_nothing(self):
        before = NULL_TRACER.spans
        with NULL_TRACER.span("anything", rows=10):
            pass
        assert NULL_TRACER.spans is before
        assert NULL_TRACER.spans == ()
        assert not NULL_TRACER.enabled

    def test_null_metrics_record_nothing(self):
        NULL_METRICS.inc("cache.hit", 5)
        NULL_METRICS.observe("task.exec_seconds", 1.0)
        snapshot = NULL_METRICS.snapshot()
        assert snapshot["counters"] == {}
        assert NULL_METRICS.delta_since(NULL_METRICS.mark())["counters"] == {}

    def test_default_observation_is_null(self):
        assert current() is NULL_OBSERVATION
        assert tracer() is NULL_TRACER
        assert metrics() is NULL_METRICS

    def test_observing_installs_and_restores(self):
        observation = Observation(clock=FakeClock())
        with observing(observation):
            assert current() is observation
            assert tracer() is observation.trace
            assert metrics() is observation.metrics
        assert current() is NULL_OBSERVATION

    def test_observing_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with observing(Observation(clock=FakeClock())):
                raise RuntimeError("boom")
        assert current() is NULL_OBSERVATION


# -- exporters ---------------------------------------------------------------


class TestExport:
    def _traced(self):
        t = Tracer(clock=FakeClock())
        with t.span("run", category="executor"):
            with t.span("task-a", category="task", op="anonymize"):
                pass
            with t.span("task-b", category="task", op="measure"):
                pass
        return t

    def test_chrome_trace_shape(self, tmp_path):
        t = self._traced()
        path = write_chrome_trace(t.spans, tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro.obs/trace@1"
        events = payload["traceEvents"]
        assert events[0]["ph"] == "M"
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"run", "task-a", "task-b"}
        timestamps = [e["ts"] for e in complete]
        assert timestamps == sorted(timestamps)
        assert all(e["dur"] >= 0 for e in complete)

    def test_trace_round_trips_spans(self, tmp_path):
        t = self._traced()
        path = write_chrome_trace(t.spans, tmp_path / "trace.json")
        restored = {span.name: span for span in spans_from_trace_file(path)}
        original = {span.name: span for span in t.spans}
        for name, span in original.items():
            assert restored[name].category == span.category
            assert restored[name].args == span.args
        assert (
            restored["task-a"].parent_id
            == restored["run"].span_id
        )

    def test_dangling_parent_dropped_from_slice(self, tmp_path):
        t = Tracer(clock=FakeClock())
        with t.span("enclosing"):
            with t.span("inner"):
                pass
            # Export only the inner span: its parent is outside the slice.
            path = write_chrome_trace(t.spans, tmp_path / "trace.json")
        events = [e for e in read_trace_events(path) if e["ph"] == "X"]
        assert "parent" not in events[0]["args"]
        assert not _errors(check_obs_artifacts(path))

    def test_metrics_snapshot_round_trips(self, tmp_path):
        m = MetricsRegistry()
        m.inc("cache.hit", 3)
        m.observe("task.exec_seconds", 0.25)
        path = write_metrics_snapshot(m.snapshot(), tmp_path / "metrics.json")
        assert read_metrics_snapshot(path) == m.snapshot()


# -- ART011 ------------------------------------------------------------------


class TestArt011:
    def _trace_file(self, tmp_path):
        t = Tracer(clock=FakeClock())
        with t.span("run"):
            with t.span("task"):
                pass
        return write_chrome_trace(t.spans, tmp_path / "trace.json")

    def test_clean_trace_passes(self, tmp_path):
        assert not _errors(check_obs_artifacts(self._trace_file(tmp_path)))

    def test_clean_metrics_pass(self, tmp_path):
        m = MetricsRegistry()
        m.inc("cache.hit")
        m.observe("task.exec_seconds", 1.0)
        path = write_metrics_snapshot(m.snapshot(), tmp_path / "metrics.json")
        assert not _errors(check_obs_artifacts(path))

    def test_negative_counter_flagged(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps({
            "schema": "repro.obs/metrics@1",
            "counters": {"cache.hit": -1},
            "gauges": {},
            "histograms": {},
        }))
        findings = _errors(check_obs_artifacts(path))
        assert findings and "cache.hit" in findings[0].message

    def test_histogram_bounds_enforced(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps({
            "schema": "repro.obs/metrics@1",
            "counters": {},
            "gauges": {},
            "histograms": {"task.exec_seconds": {
                "count": 2, "sum": 100.0, "min": 1.0, "max": 2.0,
            }},
        }))
        assert _errors(check_obs_artifacts(path))

    def test_dangling_parent_flagged(self, tmp_path):
        path = self._trace_file(tmp_path)
        payload = json.loads(path.read_text())
        for event in payload["traceEvents"]:
            if event["ph"] == "X" and "parent" not in event["args"]:
                event["args"]["parent"] = 999
        path.write_text(json.dumps(payload))
        findings = _errors(check_obs_artifacts(path))
        assert findings and "999" in findings[0].message

    def test_duplicate_span_id_flagged(self, tmp_path):
        path = self._trace_file(tmp_path)
        payload = json.loads(path.read_text())
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        complete[1]["args"]["span"] = complete[0]["args"]["span"]
        complete[1]["args"].pop("parent", None)
        path.write_text(json.dumps(payload))
        assert _errors(check_obs_artifacts(path))

    def test_non_monotone_timestamps_flagged(self, tmp_path):
        path = self._trace_file(tmp_path)
        payload = json.loads(path.read_text())
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        complete[-1]["ts"] = -5.0
        path.write_text(json.dumps(payload))
        assert _errors(check_obs_artifacts(path))

    def test_unrecognizable_file_flagged(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": "world"}))
        findings = _errors(check_obs_artifacts(path))
        assert findings and "neither" in findings[0].message
