"""The six serve query shapes: semantics, determinism, error contract."""

import pytest

from repro.datasets import adult_dataset, adult_hierarchies
from repro.anonymize.algorithms import Mondrian
from repro.serve import QUERY_SHAPES, QueryError, run_query
from repro.serve.query import render_cell


@pytest.fixture(scope="module")
def release():
    data = adult_dataset(90, seed=7)
    return Mondrian(k=3).anonymize(data, adult_hierarchies())


@pytest.fixture(scope="module")
def other_release():
    data = adult_dataset(90, seed=7)
    return Mondrian(k=5).anonymize(data, adult_hierarchies())


class TestShapes:
    def test_point_counts_rendered_cells(self, release):
        column = release.released.column("sex")
        needle = render_cell(column[0])
        result = run_query(
            release.released, {"shape": "point", "column": "sex", "value": needle}
        )
        expected = sum(1 for cell in column if render_cell(cell) == needle)
        assert result == {
            "shape": "point", "column": "sex", "value": needle, "count": expected
        }

    def test_point_generalized_value_matches_release_rendering(self, release):
        # A predicate naming a generalized cell exactly as exported must
        # match it; the raw value it came from must not leak matches.
        spans = [
            render_cell(cell)
            for cell in release.released.column("age")
            if not isinstance(cell, (int, float))
        ]
        if not spans:
            pytest.skip("release left every age cell raw")
        result = run_query(
            release.released,
            {"shape": "point", "column": "age", "value": spans[0]},
        )
        assert result["count"] == spans.count(spans[0])

    def test_range_counts_only_raw_numeric_cells(self, release):
        result = run_query(
            release.released,
            {"shape": "range", "column": "age", "low": 0, "high": 200},
        )
        raw = [
            cell
            for cell in release.released.column("age")
            if isinstance(cell, (int, float)) and not isinstance(cell, bool)
        ]
        assert result["count"] == len(raw)
        assert result["sum"] == pytest.approx(sum(raw))

    def test_groupby_count_totals_rows(self, release):
        result = run_query(
            release.released,
            {"shape": "groupby", "group_by": "workclass", "agg": "count"},
        )
        assert sum(result["groups"].values()) == len(release.released)
        assert list(result["groups"]) == sorted(result["groups"])

    def test_groupby_avg_is_sum_over_count(self, release):
        avg = run_query(
            release.released,
            {"shape": "groupby", "group_by": "sex", "agg": "avg", "target": "age"},
        )
        total = run_query(
            release.released,
            {"shape": "groupby", "group_by": "sex", "agg": "sum", "target": "age"},
        )
        for key, value in avg["groups"].items():
            assert value <= total["groups"][key]

    def test_topk_ranked_by_count_then_value(self, release):
        result = run_query(
            release.released, {"shape": "topk", "column": "education", "k": 4}
        )
        counts = [count for _value, count in result["top"]]
        assert counts == sorted(counts, reverse=True)
        assert len(result["top"]) <= 4

    def test_distinct_matches_rendered_set(self, release):
        result = run_query(
            release.released, {"shape": "distinct", "column": "native-country"}
        )
        rendered = {
            render_cell(cell)
            for cell in release.released.column("native-country")
        }
        assert result["distinct"] == len(rendered)

    def test_join_pair_count_is_product_of_key_multiplicities(
        self, release, other_release
    ):
        result = run_query(
            release.released,
            {"shape": "join", "on": "sex"},
            other_release.released,
        )
        left = {}
        for cell in release.released.column("sex"):
            left[render_cell(cell)] = left.get(render_cell(cell), 0) + 1
        right = {}
        for cell in other_release.released.column("sex"):
            right[render_cell(cell)] = right.get(render_cell(cell), 0) + 1
        expected = sum(
            left[key] * right[key] for key in set(left) & set(right)
        )
        assert result["pairs"] == expected

    def test_every_shape_is_deterministic(self, release, other_release):
        queries = {
            "point": {"shape": "point", "column": "sex", "value": "Female"},
            "range": {"shape": "range", "column": "age", "low": 25, "high": 45},
            "groupby": {"shape": "groupby", "group_by": "race", "agg": "count"},
            "topk": {"shape": "topk", "column": "education", "k": 3},
            "distinct": {"shape": "distinct", "column": "workclass"},
            "join": {"shape": "join", "on": "sex"},
        }
        assert set(queries) == set(QUERY_SHAPES)
        for query in queries.values():
            first = run_query(release.released, query, other_release.released)
            second = run_query(release.released, query, other_release.released)
            assert first == second


class TestErrors:
    def test_unknown_shape(self, release):
        with pytest.raises(QueryError, match="unknown query shape"):
            run_query(release.released, {"shape": "scan"})

    def test_unknown_column(self, release):
        with pytest.raises(QueryError, match="unknown column"):
            run_query(
                release.released,
                {"shape": "point", "column": "ssn", "value": "x"},
            )

    def test_point_requires_value(self, release):
        with pytest.raises(QueryError, match="'value'"):
            run_query(release.released, {"shape": "point", "column": "sex"})

    def test_range_rejects_inverted_bounds(self, release):
        with pytest.raises(QueryError, match="low"):
            run_query(
                release.released,
                {"shape": "range", "column": "age", "low": 50, "high": 20},
            )

    def test_range_rejects_non_numeric_bounds(self, release):
        with pytest.raises(QueryError, match="must be a number"):
            run_query(
                release.released,
                {"shape": "range", "column": "age", "low": "a", "high": 9},
            )

    def test_groupby_rejects_unknown_aggregate(self, release):
        with pytest.raises(QueryError, match="unknown aggregate"):
            run_query(
                release.released,
                {"shape": "groupby", "group_by": "sex", "agg": "median"},
            )

    def test_topk_requires_positive_k(self, release):
        with pytest.raises(QueryError, match="positive integer"):
            run_query(
                release.released, {"shape": "topk", "column": "sex", "k": 0}
            )

    def test_join_requires_other_release(self, release):
        with pytest.raises(QueryError, match="other"):
            run_query(release.released, {"shape": "join", "on": "sex"})

    def test_non_mapping_query_rejected(self, release):
        with pytest.raises(QueryError, match="JSON object"):
            run_query(release.released, ["shape", "point"])
