"""Tests for the multi-objective extension (Pareto utilities + NSGA-II)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.anonymize.algorithms.base import RecodingWorkspace
from repro.datasets import paper_tables
from repro.moo import (
    Nsga2Search,
    crowding_distance,
    dominates,
    fast_non_dominated_sort,
    hypervolume_2d,
    non_dominated,
    normalized,
    privacy_rank_objective,
    utility_loss_objective,
    weighted_sum_search,
)

points_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=10, allow_nan=False),
        st.floats(min_value=0, max_value=10, allow_nan=False),
    ),
    min_size=1,
    max_size=20,
)


def paper_hierarchies():
    return {
        "Zip Code": paper_tables.zip_hierarchy(),
        "Age": paper_tables.age_hierarchy(10, 5),
        "Marital Status": paper_tables.marital_hierarchy(),
    }


class TestDominance:
    def test_basic(self):
        assert dominates((1, 1), (2, 2))
        assert dominates((1, 2), (1, 3))
        assert not dominates((1, 2), (2, 1))
        assert not dominates((1, 1), (1, 1))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            dominates((1,), (1, 2))

    @given(points_strategy)
    def test_non_dominated_members_mutually_incomparable(self, points):
        front = non_dominated(points)
        for i in front:
            for j in front:
                if i != j:
                    assert not dominates(points[i], points[j])

    @given(points_strategy)
    def test_every_point_dominated_by_or_in_front(self, points):
        front = set(non_dominated(points))
        for index, point in enumerate(points):
            if index not in front:
                assert any(dominates(points[i], point) for i in front) or any(
                    points[i] == point for i in front
                )


class TestSorting:
    def test_fronts_partition_points(self):
        points = [(1, 1), (2, 2), (1, 2), (2, 1), (3, 3)]
        fronts = fast_non_dominated_sort(points)
        flattened = sorted(index for front in fronts for index in front)
        assert flattened == list(range(len(points)))

    def test_first_front_is_non_dominated_set(self):
        points = [(1, 3), (3, 1), (2, 2), (4, 4)]
        fronts = fast_non_dominated_sort(points)
        assert sorted(fronts[0]) == sorted(non_dominated(points))

    def test_crowding_boundaries_infinite(self):
        points = [(0.0, 3.0), (1.0, 2.0), (2.0, 1.0), (3.0, 0.0)]
        front = [0, 1, 2, 3]
        distances = crowding_distance(points, front)
        assert distances[0] == float("inf")
        assert distances[3] == float("inf")
        assert 0 < distances[1] < float("inf")

    def test_crowding_small_front(self):
        points = [(1, 1), (2, 2)]
        assert crowding_distance(points, [0, 1]) == {
            0: float("inf"),
            1: float("inf"),
        }


class TestHypervolume2d:
    def test_single_point(self):
        assert hypervolume_2d([(1.0, 1.0)], (3.0, 3.0)) == pytest.approx(4.0)

    def test_staircase(self):
        points = [(1.0, 2.0), (2.0, 1.0)]
        # Union of two boxes wrt (3,3): 2*1 + 1*2 - overlap 1*1 ... computed
        # by sweep: (3-1)*(3-2) + (3-2)*(2-1) = 2 + 1 = 3.
        assert hypervolume_2d(points, (3.0, 3.0)) == pytest.approx(3.0)

    def test_points_beyond_reference_ignored(self):
        assert hypervolume_2d([(4.0, 4.0)], (3.0, 3.0)) == 0.0

    def test_wrong_arity(self):
        with pytest.raises(ValueError):
            hypervolume_2d([(1.0, 1.0, 1.0)], (2.0, 2.0))

    def test_normalized(self):
        grid = normalized([(0, 10), (10, 0)])
        assert grid.min() == 0.0
        assert grid.max() == 1.0


class TestObjectives:
    def test_privacy_rank_zero_at_top(self, table1):
        workspace = RecodingWorkspace(table1, paper_hierarchies())
        top = workspace.lattice.top
        assert privacy_rank_objective(workspace, top) == pytest.approx(0.0)

    def test_privacy_rank_maximal_at_bottom(self, table1):
        workspace = RecodingWorkspace(table1, paper_hierarchies())
        bottom = workspace.lattice.bottom
        top = workspace.lattice.top
        assert privacy_rank_objective(workspace, bottom) > privacy_rank_objective(
            workspace, top
        )

    def test_utility_loss_monotone(self, table1):
        workspace = RecodingWorkspace(table1, paper_hierarchies())
        assert utility_loss_objective(workspace, workspace.lattice.bottom) == 0.0
        assert utility_loss_objective(
            workspace, workspace.lattice.top
        ) == pytest.approx(3.0 * len(table1))


class TestNsga2:
    def test_front_is_non_dominated(self, table1):
        search = Nsga2Search(population_size=16, generations=8, seed=4)
        result = search.search(table1, paper_hierarchies())
        assert len(result) >= 1
        for i, a in enumerate(result.objectives):
            for j, b in enumerate(result.objectives):
                if i != j:
                    assert not dominates(a, b)

    def test_deterministic(self, table1):
        def run():
            return Nsga2Search(population_size=8, generations=4, seed=2).search(
                table1, paper_hierarchies()
            )

        assert run().nodes == run().nodes

    def test_front_contains_extremes_eventually(self, table1):
        # With enough budget on this tiny lattice, the front should span
        # from low-loss to low-privacy-distance corners.
        search = Nsga2Search(population_size=24, generations=20, seed=0)
        result = search.search(table1, paper_hierarchies())
        losses = [objectives[1] for objectives in result.objectives]
        assert min(losses) == pytest.approx(0.0)  # the raw release survives

    def test_materialize(self, table1):
        hierarchies = paper_hierarchies()
        search = Nsga2Search(population_size=8, generations=4, seed=2)
        result = search.search(table1, hierarchies)
        workspace = RecodingWorkspace(table1, hierarchies)
        releases = result.materialize(workspace)
        assert len(releases) == len(result)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Nsga2Search(population_size=3)
        with pytest.raises(ValueError):
            Nsga2Search(population_size=7)
        with pytest.raises(ValueError):
            Nsga2Search(objectives=(privacy_rank_objective,))


class TestWeightedSumBaseline:
    def test_extreme_weights(self, table1):
        hierarchies = paper_hierarchies()
        privacy_node, _ = weighted_sum_search(table1, hierarchies, weight=1.0)
        utility_node, _ = weighted_sum_search(table1, hierarchies, weight=0.0)
        workspace = RecodingWorkspace(table1, hierarchies)
        assert privacy_rank_objective(workspace, privacy_node) <= (
            privacy_rank_objective(workspace, utility_node)
        )
        assert utility_loss_objective(workspace, utility_node) == 0.0

    def test_weighted_optimum_on_pareto_front(self, table1):
        # A weighted-sum optimum is always Pareto-optimal.
        hierarchies = paper_hierarchies()
        node, objectives = weighted_sum_search(table1, hierarchies, weight=0.5)
        workspace = RecodingWorkspace(table1, hierarchies)
        all_points = [
            (
                privacy_rank_objective(workspace, other),
                utility_loss_objective(workspace, other),
            )
            for other in workspace.lattice.nodes()
        ]
        assert not any(dominates(point, objectives) for point in all_points)

    def test_invalid_weight(self, table1):
        with pytest.raises(ValueError):
            weighted_sum_search(table1, paper_hierarchies(), weight=1.5)
