"""Tests for NumericSplitCut and flexible-numeric TDS."""

import pytest

from repro.anonymize.algorithms import TopDownSpecialization
from repro.anonymize.algorithms.cuts import CutError, NumericSplitCut
from repro.datasets.dataset import Dataset
from repro.datasets.schema import AttributeKind, Schema, quasi_identifier, sensitive
from repro.hierarchy import Banding, IntervalHierarchy, Span
from repro.utility import general_loss


class TestNumericSplitCut:
    def test_no_splits_single_segment(self):
        cut = NumericSplitCut((0.0, 100.0))
        assert cut.segments() == [Span(0, 100)]
        assert cut.map_value(50) == Span(0, 100)
        assert cut.loss(50) == 1.0

    def test_split_partitions(self):
        cut = NumericSplitCut((0.0, 100.0), (40.0,))
        assert cut.segments() == [Span(0, 40), Span(40, 100)]
        assert cut.map_value(39.9) == Span(0, 40)
        assert cut.map_value(40.0) == Span(40, 100)  # left-closed segments
        assert cut.map_value(100.0) == Span(40, 100)

    def test_loss_proportional_to_width(self):
        cut = NumericSplitCut((0.0, 100.0), (40.0,))
        assert cut.loss(10) == pytest.approx(0.4)
        assert cut.loss(90) == pytest.approx(0.6)

    def test_out_of_bounds_rejected(self):
        cut = NumericSplitCut((0.0, 100.0))
        with pytest.raises(CutError):
            cut.map_value(101)
        with pytest.raises(CutError):
            cut.map_value("x")

    def test_invalid_splits_rejected(self):
        with pytest.raises(CutError):
            NumericSplitCut((0.0, 100.0), (0.0,))
        with pytest.raises(CutError):
            NumericSplitCut((10.0, 5.0))

    def test_splits_sorted_and_deduplicated(self):
        cut = NumericSplitCut((0.0, 100.0), (60.0, 20.0, 60.0))
        assert cut.splits == (20.0, 60.0)

    def test_specialize(self):
        cut = NumericSplitCut((0.0, 100.0))
        finer = cut.specialize(30.0)
        assert finer.splits == (30.0,)
        with pytest.raises(CutError):
            finer.specialize(30.0)

    def test_generalize(self):
        cut = NumericSplitCut((0.0, 100.0), (20.0, 60.0))
        coarser = cut.generalize(0)
        assert coarser.splits == (60.0,)
        with pytest.raises(CutError):
            coarser.generalize(5)

    def test_split_value_median(self):
        cut = NumericSplitCut((0.0, 100.0))
        values = [10.0, 20.0, 30.0, 40.0]
        split = cut.split_value(0, values)
        assert split == 30.0  # upper median

    def test_split_value_degenerate(self):
        cut = NumericSplitCut((0.0, 100.0))
        assert cut.split_value(0, [50.0, 50.0]) is None
        assert cut.split_value(0, []) is None

    def test_split_value_skips_minimum(self):
        cut = NumericSplitCut((0.0, 100.0))
        # Median equals the min; the split must still separate something.
        split = cut.split_value(0, [5.0, 5.0, 5.0, 80.0])
        assert split == 80.0
        finer = cut.specialize(split)
        assert finer.map_value(5.0) != finer.map_value(80.0)


def numeric_only_dataset() -> tuple[Dataset, dict]:
    schema = Schema.of(
        quasi_identifier("x", AttributeKind.NUMERIC),
        sensitive("s"),
    )
    # Two clusters: fixed hierarchy bands straddle them; adaptive splits
    # can separate exactly at the gap.
    rows = [(float(v), "a") for v in list(range(0, 20)) + list(range(80, 100))]
    hierarchies = {
        "x": IntervalHierarchy("x", [Banding(30), Banding(60)], (0, 100)),
    }
    return Dataset(schema, rows), hierarchies


class TestFlexibleTds:
    def test_flexible_beats_fixed_bands(self):
        data, hierarchies = numeric_only_dataset()
        fixed = TopDownSpecialization(10).anonymize(data, hierarchies)
        flexible = TopDownSpecialization(10, flexible_numeric=True).anonymize(
            data, hierarchies
        )
        assert flexible.k() >= 10
        assert general_loss(flexible, hierarchies) < general_loss(
            fixed, hierarchies
        )

    def test_flexible_release_cells_are_spans(self):
        data, hierarchies = numeric_only_dataset()
        release = TopDownSpecialization(10, flexible_numeric=True).anonymize(
            data, hierarchies
        )
        cells = set(release.released.column("x"))
        assert all(isinstance(cell, Span) for cell in cells)
        assert len(cells) >= 2

    def test_flexible_respects_k(self):
        data, hierarchies = numeric_only_dataset()
        release = TopDownSpecialization(5, flexible_numeric=True).anonymize(
            data, hierarchies
        )
        assert release.k() >= 5

    def test_flexible_on_adult_matches_or_beats(self, adult_small, adult_h):
        fixed = TopDownSpecialization(5).anonymize(adult_small, adult_h)
        flexible = TopDownSpecialization(5, flexible_numeric=True).anonymize(
            adult_small, adult_h
        )
        assert flexible.k() >= 5
        assert general_loss(flexible, adult_h) <= general_loss(
            fixed, adult_h
        ) + 1e-9
