"""Tests for the Layer 4 call-graph builder (:mod:`repro.lint.callgraph`).

Edge cases the parallel-safety pass depends on: methods resolved through
``self``, ops registered under aliased names and in call form, dispatch
tables, recursion, and the agreement between static op discovery and the
dynamic :func:`repro.runtime.registered_ops` registry.
"""

import textwrap
from pathlib import Path

from repro.lint.callgraph import build_program_index, returned_name_closure
import ast

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


def tree(tmp_path, files):
    """Materialize ``{relative path: source}`` under ``tmp_path``."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return tmp_path


class TestCallResolution:
    def test_self_method_calls_resolve_to_the_class(self, tmp_path):
        root = tree(
            tmp_path,
            {
                "app/__init__.py": "",
                "app/mod.py": """
                class Worker:
                    def run(self):
                        return self.step()

                    def step(self):
                        return 1
                """,
            },
        )
        index = build_program_index([root])
        assert "app.mod.Worker.step" in index.callees("app.mod.Worker.run")

    def test_imported_function_call_resolves_across_modules(self, tmp_path):
        root = tree(
            tmp_path,
            {
                "app/__init__.py": "",
                "app/helpers.py": """
                def leak():
                    return 1
                """,
                "app/mod.py": """
                from app.helpers import leak

                def outer():
                    return leak()
                """,
            },
        )
        index = build_program_index([root])
        assert "app.helpers.leak" in index.callees("app.mod.outer")

    def test_relative_import_resolves_inside_package(self, tmp_path):
        root = tree(
            tmp_path,
            {
                "app/__init__.py": "",
                "app/helpers.py": """
                def leak():
                    return 1
                """,
                "app/mod.py": """
                from .helpers import leak

                def outer():
                    return leak()
                """,
            },
        )
        index = build_program_index([root])
        assert "app.helpers.leak" in index.callees("app.mod.outer")

    def test_dispatch_table_expands_to_every_entry(self, tmp_path):
        root = tree(
            tmp_path,
            {
                "app/__init__.py": "",
                "app/mod.py": """
                def alpha():
                    return 1

                def beta():
                    return 2

                TABLE = {"a": alpha, "b": beta}

                def dispatch(kind):
                    return TABLE[kind]()
                """,
            },
        )
        index = build_program_index([root])
        callees = set(index.callees("app.mod.dispatch"))
        assert {"app.mod.alpha", "app.mod.beta"} <= callees

    def test_recursion_terminates_and_is_reachable(self, tmp_path):
        root = tree(
            tmp_path,
            {
                "app/__init__.py": "",
                "app/mod.py": """
                def walk(node):
                    if node:
                        return walk(node[1:])
                    return node

                def mutual_a(n):
                    return mutual_b(n - 1) if n else 0

                def mutual_b(n):
                    return mutual_a(n - 1) if n else 0
                """,
            },
        )
        index = build_program_index([root])
        assert "app.mod.walk" in index.callees("app.mod.walk")
        reached = index.reachable(["app.mod.mutual_a"])
        assert {"app.mod.mutual_a", "app.mod.mutual_b"} <= reached

    def test_call_path_is_shortest_and_deterministic(self, tmp_path):
        root = tree(
            tmp_path,
            {
                "app/__init__.py": "",
                "app/mod.py": """
                def leaf():
                    return 0

                def mid():
                    return leaf()

                def top():
                    mid()
                    leaf()
                """,
            },
        )
        index = build_program_index([root])
        assert index.call_path("app.mod.top", "app.mod.leaf") == [
            "app.mod.top",
            "app.mod.leaf",
        ]
        assert index.call_path("app.mod.leaf", "app.mod.top") is None


class TestOpDiscovery:
    def test_decorator_registration(self, tmp_path):
        root = tree(
            tmp_path,
            {
                "app/__init__.py": "",
                "app/ops.py": """
                from repro.runtime.task import register_op

                @register_op("app.plain")
                def plain(params, deps, seed):
                    return dict(params)

                @register_op("app.inline", inline_only=True)
                def inline(params, deps, seed):
                    return dict(params)
                """,
            },
        )
        index = build_program_index([root])
        assert index.ops["app.plain"].function == "app.ops.plain"
        assert index.ops["app.plain"].inline_only is False
        assert index.ops["app.inline"].inline_only is True

    def test_aliased_registration(self, tmp_path):
        root = tree(
            tmp_path,
            {
                "app/__init__.py": "",
                "app/ops.py": """
                from repro.runtime.task import register_op as reg

                @reg("app.aliased")
                def aliased(params, deps, seed):
                    return dict(params)
                """,
            },
        )
        index = build_program_index([root])
        assert index.ops["app.aliased"].function == "app.ops.aliased"

    def test_call_form_registration(self, tmp_path):
        root = tree(
            tmp_path,
            {
                "app/__init__.py": "",
                "app/ops.py": """
                from repro.runtime.task import register_op

                def impl(params, deps, seed):
                    return dict(params)

                register_op("app.callform")(impl)
                """,
            },
        )
        index = build_program_index([root])
        assert index.ops["app.callform"].function == "app.ops.impl"

    def test_module_attribute_registration(self, tmp_path):
        root = tree(
            tmp_path,
            {
                "app/__init__.py": "",
                "app/ops.py": """
                from repro.runtime import task

                @task.register_op("app.attr")
                def attr_op(params, deps, seed):
                    return dict(params)
                """,
            },
        )
        index = build_program_index([root])
        assert "app.attr" in index.ops

    def test_static_discovery_agrees_with_dynamic_registry(self):
        # Importing the op-bearing modules populates the runtime registry;
        # static discovery over src/ must find the same names and flags, so
        # the certifier can never silently miss an operation.  Other test
        # files register throwaway ops in the process-global registry, so
        # the dynamic side is filtered to ops defined inside the package.
        import repro.analysis.matrix  # noqa: F401
        import repro.analysis.sweep  # noqa: F401
        import repro.analysis.tournament  # noqa: F401
        import repro.runtime.study  # noqa: F401
        import repro.serve.query  # noqa: F401
        from repro.runtime import registered_ops, resolve_op

        index = build_program_index([REPO_SRC])
        static = {name: reg.inline_only for name, reg in index.ops.items()}
        dynamic = {
            name: inline
            for name, inline in registered_ops().items()
            if resolve_op(name).__module__.startswith("repro.")
        }
        assert static == dynamic


class TestReturnedNameClosure:
    def _closure(self, source):
        fn = ast.parse(textwrap.dedent(source)).body[0]
        return returned_name_closure(fn)

    def test_direct_and_aliased_returns(self):
        closure = self._closure(
            """
            def fn(a, b, c):
                x = a
                y = x
                return {"k": y, "j": b}
            """
        )
        assert {"a", "b", "x", "y"} <= closure
        assert "c" not in closure

    def test_unrelated_locals_excluded(self):
        closure = self._closure(
            """
            def fn(seed):
                unused = seed
                return 42
            """
        )
        assert "seed" not in closure
