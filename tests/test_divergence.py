"""Tests for marginal reconstruction divergence."""

import math

import pytest

from repro.anonymize.engine import recode
from repro.datasets import paper_tables
from repro.utility import (
    marginal_divergence,
    reconstructed_marginal,
    total_marginal_divergence,
)


@pytest.fixture
def hierarchies():
    return {
        "Zip Code": paper_tables.zip_hierarchy(),
        "Age": paper_tables.age_hierarchy(10, 5),
        "Marital Status": paper_tables.marital_hierarchy(),
    }


@pytest.fixture
def raw(table1, hierarchies):
    return recode(
        table1, hierarchies, {"Zip Code": 0, "Age": 0, "Marital Status": 0}
    )


class TestReconstruction:
    def test_raw_release_exact(self, raw, table1):
        reconstruction = reconstructed_marginal(raw, "Age")
        column = table1.column("Age")
        for value, probability in reconstruction.items():
            assert probability == pytest.approx(column.count(value) / 10)

    def test_probabilities_sum_to_one(self, t3a, hierarchies):
        for attribute in ("Zip Code", "Age", "Marital Status"):
            reconstruction = reconstructed_marginal(
                t3a, attribute, hierarchies[attribute]
            )
            assert sum(reconstruction.values()) == pytest.approx(1.0)

    def test_taxonomy_token_spreads_uniformly(self, t3a, hierarchies):
        reconstruction = reconstructed_marginal(
            t3a, "Marital Status", hierarchies["Marital Status"]
        )
        # 3 "Married" cells spread over {CF-Spouse, Spouse Present}; the two
        # married leaves end up equal.
        assert reconstruction["CF-Spouse"] == pytest.approx(
            reconstruction["Spouse Present"]
        )

    def test_masked_zip_spreads_over_prefix(self, t3b):
        reconstruction = reconstructed_marginal(t3b, "Zip Code")
        # 130** covers {13053, 13052}: 3 cells over 2 values.
        assert reconstruction["13053"] == pytest.approx(reconstruction["13052"])


class TestDivergence:
    def test_raw_release_zero(self, raw, hierarchies):
        assert total_marginal_divergence(raw, hierarchies) == pytest.approx(0.0)

    def test_bounded(self, t3a, hierarchies):
        for attribute in ("Zip Code", "Age", "Marital Status"):
            divergence = marginal_divergence(
                t3a, attribute, hierarchies[attribute]
            )
            assert 0.0 <= divergence <= math.log(2) + 1e-12

    def test_generalization_increases_divergence(self, raw, t4, hierarchies):
        hierarchies_t4 = dict(hierarchies, Age=paper_tables.age_hierarchy(20, 0))
        assert total_marginal_divergence(
            t4, hierarchies_t4
        ) > total_marginal_divergence(raw, hierarchies)

    def test_uniform_marginal_survives_generalization(self, table1, hierarchies):
        # Age bands of equal occupancy reconstruct a near-uniform marginal;
        # divergence stays small relative to the full t4 distortion.
        t3a = paper_tables.t3a()
        age_divergence = marginal_divergence(t3a, "Age", hierarchies["Age"])
        assert age_divergence < 0.05

    def test_mondrian_preserves_marginals_better(self, adult_small, adult_h):
        from repro import Datafly, Mondrian

        mondrian = Mondrian(5).anonymize(adult_small, adult_h)
        datafly = Datafly(5).anonymize(adult_small, adult_h)
        assert total_marginal_divergence(
            mondrian, adult_h
        ) <= total_marginal_divergence(datafly, adult_h) + 1e-9

    def test_no_qi_returns_zero(self, table1):
        from repro.datasets.schema import AttributeRole

        roles = {name: AttributeRole.INSENSITIVE for name in table1.schema.names}
        relabeled = table1.with_roles(roles)
        from repro.anonymize.engine import Anonymization

        identity = Anonymization(relabeled, relabeled)
        assert total_marginal_divergence(identity) == 0.0
