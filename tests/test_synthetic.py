"""Tests for the skew-controllable synthetic workload."""

import pytest

from repro.analysis import gini_coefficient
from repro.datasets import skewed_dataset, synthetic_hierarchies, synthetic_schema


class TestGenerator:
    def test_deterministic(self):
        assert skewed_dataset(40, 1.0, seed=2).rows == skewed_dataset(
            40, 1.0, seed=2
        ).rows

    def test_schema(self):
        schema = synthetic_schema()
        assert schema.quasi_identifier_names == ("x", "y", "group", "region")
        assert schema.sensitive_names == ("condition",)

    def test_size(self):
        assert len(skewed_dataset(77, 0.5)) == 77

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            skewed_dataset(-1, 0.0)
        with pytest.raises(ValueError):
            skewed_dataset(10, -0.5)

    def test_skew_zero_roughly_uniform_categories(self):
        data = skewed_dataset(3000, 0.0, seed=4)
        counts = {}
        for value in data.column("group"):
            counts[value] = counts.get(value, 0) + 1
        assert gini_coefficient(list(counts.values())) < 0.15

    def test_higher_skew_more_concentrated(self):
        def category_gini(skew):
            data = skewed_dataset(3000, skew, seed=4)
            counts = {}
            for value in data.column("group"):
                counts[value] = counts.get(value, 0) + 1
            full = [float(counts.get(f"g{i}", 0)) for i in range(12)]
            return gini_coefficient(full)

        assert category_gini(0.0) < category_gini(1.0) < category_gini(2.0)

    def test_numeric_within_bounds(self):
        data = skewed_dataset(500, 2.0, seed=9)
        assert all(0.0 <= x <= 100.0 for x in data.column("x"))


class TestHierarchies:
    def test_cover_all_values(self):
        data = skewed_dataset(300, 1.5, seed=1)
        hierarchies = synthetic_hierarchies()
        for name in data.schema.quasi_identifier_names:
            hierarchy = hierarchies[name]
            for value in data.distinct(name):
                for level in range(hierarchy.height + 1):
                    hierarchy.generalize(value, level)

    def test_algorithms_run(self):
        from repro.anonymize.algorithms import Datafly, Mondrian

        data = skewed_dataset(200, 1.0, seed=6)
        hierarchies = synthetic_hierarchies()
        for algorithm in (Datafly(5), Mondrian(5)):
            release = algorithm.anonymize(data, hierarchies)
            classes = release.equivalence_classes
            for row in range(len(release)):
                if row not in release.suppressed:
                    assert classes.size_of(row) >= 5
