"""The resident service: HTTP contract, concurrency, cache recovery.

These tests exercise the serve plane the way production traffic would:
real sockets, real concurrent clients, real kill-and-restart cycles.
The two load-bearing guarantees — concurrent cold requests produce
byte-identical releases to the inline path, and a restarted server
resumes from the same ``ResultCache`` with pure hits — are asserted
through the public HTTP surface only.
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.obs import Observation
from repro.runtime.cache import ResultCache
from repro.runtime.study import AlgorithmSpec, DatasetSpec
from repro.serve import ServeServer, ServerThread, ServeState
from repro.serve.query import render_cell

ROWS = 80
SEED = 42
CELL = {"algorithm": "mondrian", "params": {"k": 2}}
OTHER_CELL = {"algorithm": "datafly", "params": {"k": 2}}


def _request(server, method, path, body=None, timeout=120):
    connection = http.client.HTTPConnection(
        server.host, server.port, timeout=timeout
    )
    try:
        payload = None if body is None else json.dumps(body).encode("utf-8")
        connection.request(
            method, path, body=payload,
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def _make_server(cache_dir=None, observation=None, **kwargs):
    state = ServeState(
        DatasetSpec.of("adult", rows=ROWS, seed=SEED),
        cache=None if cache_dir is None else ResultCache(cache_dir),
        seed=SEED,
    )
    return ServeServer(
        state, port=0, observation=observation or Observation(), **kwargs
    )


@pytest.fixture()
def server():
    instance = _make_server()
    thread = ServerThread(instance)
    thread.start()
    yield instance
    thread.stop()


def _inline_release(payload):
    """The batch-path release the server must reproduce byte for byte."""
    dataset, hierarchies = DatasetSpec.of(
        "adult", rows=ROWS, seed=SEED
    ).materialize()
    cell = AlgorithmSpec.of(
        payload["algorithm"], **payload["params"]
    ).with_seed(SEED)
    return cell.build().anonymize(dataset, hierarchies)


class TestHttpContract:
    def test_health(self, server):
        status, body = _request(server, "GET", "/health")
        assert status == 200
        assert body["ok"] is True
        assert body["status"] == "ok"
        assert body["resident"]["datasets"] == 1

    def test_anonymize_cold_then_memory_warm(self, server):
        status, cold = _request(server, "POST", "/anonymize", {"algorithm": CELL})
        assert status == 200
        assert cold["source"] == "computed"
        assert cold["rows"] == ROWS
        assert cold["k"] >= 2
        status, warm = _request(server, "POST", "/anonymize", {"algorithm": CELL})
        assert status == 200
        assert warm["source"] == "memory"
        assert warm["released_fingerprint"] == cold["released_fingerprint"]

    def test_anonymize_matches_inline_path_byte_for_byte(self, server):
        status, body = _request(
            server, "POST", "/anonymize",
            {"algorithm": CELL, "include_rows": True},
        )
        assert status == 200
        inline = _inline_release(CELL)
        assert body["released_fingerprint"] == inline.released.fingerprint()
        expected_rows = [
            [render_cell(cell) for cell in row] for row in inline.released
        ]
        assert body["released_rows"] == expected_rows
        assert body["columns"] == list(inline.released.schema.names)
        assert body["k"] == inline.k()
        assert body["suppressed"] == len(inline.suppressed)

    def test_properties_matches_direct_computation(self, server):
        status, body = _request(
            server, "POST", "/properties",
            {"algorithm": CELL, "property": "equivalence-class-size"},
        )
        assert status == 200
        from repro.core.properties import equivalence_class_size

        expected = [float(v) for v in equivalence_class_size(_inline_release(CELL))]
        assert body["values"] == expected
        assert body["rows"] == ROWS

    def test_properties_index_subset(self, server):
        status, full = _request(
            server, "POST", "/properties", {"algorithm": CELL}
        )
        status, subset = _request(
            server, "POST", "/properties",
            {"algorithm": CELL, "indices": [0, 5, 2]},
        )
        assert status == 200
        assert subset["values"] == [
            full["values"][0], full["values"][5], full["values"][2]
        ]

    def test_properties_rejects_out_of_range_indices(self, server):
        status, body = _request(
            server, "POST", "/properties",
            {"algorithm": CELL, "indices": [0, ROWS + 7]},
        )
        assert status == 400
        assert "out of range" in body["error"]

    def test_compare_verdicts(self, server):
        status, body = _request(
            server, "POST", "/compare",
            {
                "algorithms": [CELL, OTHER_CELL],
                "property": "equivalence-class-size",
            },
        )
        assert status == 200
        labels = set(body["cells"])
        assert labels == {"mondrian[k=2]", "datafly[k=2]"}
        assert set(body["wins"]) == labels
        # Ordered pairs over both cells, including self-comparisons.
        pairs = {(first, second) for first, second, _ in body["relations"]}
        assert pairs == {(a, b) for a in labels for b in labels}
        verdicts = {relation for _, _, relation in body["relations"]}
        assert verdicts <= {"better", "worse", "equivalent", "incomparable"}
        self_relations = [
            relation for first, second, relation in body["relations"]
            if first == second
        ]
        assert set(self_relations) == {"equivalent"}

    def test_query_over_http(self, server):
        status, body = _request(
            server, "POST", "/query",
            {
                "algorithm": CELL,
                "query": {"shape": "groupby", "group_by": "sex", "agg": "count"},
            },
        )
        assert status == 200
        assert sum(body["result"]["groups"].values()) == ROWS

    def test_join_query_needs_other(self, server):
        status, body = _request(
            server, "POST", "/query",
            {"algorithm": CELL, "query": {"shape": "join", "on": "sex"}},
        )
        assert status == 400
        status, body = _request(
            server, "POST", "/query",
            {
                "algorithm": CELL,
                "other": OTHER_CELL,
                "query": {"shape": "join", "on": "sex"},
            },
        )
        assert status == 200
        assert body["result"]["pairs"] > 0

    def test_error_codes(self, server):
        assert _request(server, "POST", "/anonymize", {})[0] == 400
        assert _request(
            server, "POST", "/anonymize",
            {"algorithm": {"algorithm": "nope", "params": {}}},
        )[0] == 400
        assert _request(server, "GET", "/nope")[0] == 404
        assert _request(server, "GET", "/anonymize")[0] == 405
        assert _request(server, "POST", "/health")[0] == 405

    def test_malformed_json_body_is_400(self, server):
        connection = http.client.HTTPConnection(
            server.host, server.port, timeout=30
        )
        try:
            connection.request(
                "POST", "/anonymize", body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
            assert b"JSON" in response.read()
        finally:
            connection.close()

    def test_metrics_endpoint_reports_request_counters(self, server):
        _request(server, "POST", "/anonymize", {"algorithm": CELL})
        status, body = _request(server, "GET", "/metrics")
        assert status == 200
        counters = body["metrics"]["counters"]
        assert counters["serve.request.anonymize"] >= 1
        histograms = body["metrics"]["histograms"]
        assert "serve.latency_ms.anonymize" in histograms

    def test_keep_alive_reuses_one_connection(self, server):
        connection = http.client.HTTPConnection(
            server.host, server.port, timeout=30
        )
        try:
            for _ in range(3):
                connection.request("GET", "/health")
                response = connection.getresponse()
                assert response.status == 200
                response.read()
        finally:
            connection.close()


class TestConcurrency:
    def test_parallel_cold_clients_single_flight_and_byte_identical(self):
        # N clients race the same cold anonymize: exactly one compute may
        # happen, and every response must equal the inline release.
        observation = Observation()
        instance = _make_server(observation=observation)
        thread = ServerThread(instance)
        thread.start()
        try:
            results = []
            errors = []

            def hit():
                try:
                    results.append(
                        _request(
                            instance, "POST", "/anonymize",
                            {"algorithm": CELL, "include_rows": True},
                        )
                    )
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

            clients = [threading.Thread(target=hit) for _ in range(6)]
            for client in clients:
                client.start()
            for client in clients:
                client.join()
            assert not errors
            assert len(results) == 6
            inline = _inline_release(CELL)
            expected_rows = [
                [render_cell(cell) for cell in row] for row in inline.released
            ]
            for status, body in results:
                assert status == 200
                assert body["released_fingerprint"] == inline.released.fingerprint()
                assert body["released_rows"] == expected_rows
            counters = observation.metrics.snapshot()["counters"]
            assert counters["serve.release.computed"] == 1
            assert counters["serve.release.memory_hit"] == 5
        finally:
            thread.stop()

    def test_kill_and_restart_resumes_from_cache_with_pure_hits(self, tmp_path):
        cache_dir = tmp_path / "cache"
        first = _make_server(cache_dir=cache_dir)
        thread = ServerThread(first)
        thread.start()
        try:
            _, cold = _request(first, "POST", "/anonymize", {"algorithm": CELL})
            assert cold["source"] == "computed"
        finally:
            thread.stop()

        observation = Observation()
        second = _make_server(cache_dir=cache_dir, observation=observation)
        thread = ServerThread(second)
        thread.start()
        try:
            _, warm = _request(second, "POST", "/anonymize", {"algorithm": CELL})
            assert warm["source"] == "cache"
            assert warm["released_fingerprint"] == cold["released_fingerprint"]
            counters = observation.metrics.snapshot()["counters"]
            assert counters.get("serve.release.computed", 0) == 0
            assert counters["serve.release.disk_hit"] == 1
        finally:
            thread.stop()


class TestShutdown:
    def test_shutdown_endpoint_drains_and_flushes_artifacts(self, tmp_path):
        instance = _make_server(
            observation=Observation(),
            trace_path=tmp_path / "trace.json",
            metrics_path=tmp_path / "metrics.json",
        )
        thread = ServerThread(instance)
        thread.start()
        _request(instance, "POST", "/anonymize", {"algorithm": CELL})
        status, body = _request(instance, "POST", "/shutdown")
        assert status == 200 and body["draining"] is True
        thread.stop()
        trace = json.loads((tmp_path / "trace.json").read_text())
        names = {event["name"] for event in trace["traceEvents"]}
        assert "serve.anonymize" in names
        metrics = json.loads((tmp_path / "metrics.json").read_text())
        assert metrics["counters"]["serve.request.anonymize"] == 1
        from repro.lint import api

        assert api.check_obs_artifacts(tmp_path / "trace.json") == []
        assert api.check_obs_artifacts(tmp_path / "metrics.json") == []

    def test_sigterm_drains_ephemeral_port_process(self, tmp_path):
        # Full lifecycle through the CLI: ephemeral --port 0 binding
        # announced on stdout, SIGTERM leads to a graceful exit 0 with
        # the metrics artifact flushed atomically.
        metrics_path = tmp_path / "metrics.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--rows", "40", "--no-cache",
                "--metrics", str(metrics_path),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            line = process.stdout.readline()
            assert "listening on http://" in line
            host, port = line.rsplit("http://", 1)[1].strip().rsplit(":", 1)
            connection = http.client.HTTPConnection(host, int(port), timeout=30)
            try:
                connection.request("GET", "/health")
                assert connection.getresponse().status == 200
            finally:
                connection.close()
            process.send_signal(signal.SIGTERM)
            out, err = process.communicate(timeout=30)
            assert process.returncode == 0, err
            assert "shut down (SIGTERM)" in out
            assert json.loads(metrics_path.read_text())["counters"][
                "serve.request.health"
            ] == 1
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()

    def test_draining_server_rejects_reuse_and_stops(self):
        instance = _make_server(drain_timeout=2.0)
        thread = ServerThread(instance)
        thread.start()
        _request(instance, "POST", "/shutdown")
        deadline = time.monotonic() + 10
        while thread._thread is not None and thread._thread.is_alive():
            if time.monotonic() > deadline:
                pytest.fail("server did not stop after /shutdown")
            time.sleep(0.02)
        thread.stop()
        assert instance.shutdown_reason == "shutdown endpoint"
