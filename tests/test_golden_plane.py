"""Golden equality: the measurement plane reproduces its pinned outputs.

The fixtures in ``tests/golden/measurement_plane.json`` were recorded with
the pre-columnar row plane (see :mod:`tests.goldens`).  Every algorithm in
``anonymize/algorithms`` must keep producing byte-identical released rows,
class partitions and property vectors — the refactor contract of the
columnar data plane.
"""

from __future__ import annotations

import pytest

from tests.goldens import GOLDEN_FILE, golden_cases, load_goldens

_CASES = golden_cases()


@pytest.fixture(scope="module")
def goldens():
    assert GOLDEN_FILE.exists(), (
        "golden fixtures missing; run `PYTHONPATH=src python -m tests.goldens`"
    )
    return load_goldens()["cases"]


def test_fixture_covers_all_cases(goldens):
    assert sorted(goldens) == sorted(_CASES)


@pytest.mark.parametrize("case", sorted(_CASES))
def test_golden_equality(goldens, case):
    expected = goldens[case]
    actual = _CASES[case]()
    # Compare field by field for a readable diff on failure.
    assert sorted(actual) == sorted(expected)
    for field in sorted(expected):
        assert actual[field] == expected[field], (
            f"{case}: field {field!r} drifted from the pinned row-plane value"
        )
