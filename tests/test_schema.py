"""Tests for repro.datasets.schema."""

import pytest

from repro.datasets.schema import (
    Attribute,
    AttributeKind,
    AttributeRole,
    Schema,
    SchemaError,
    insensitive,
    quasi_identifier,
    sensitive,
)


def make_schema() -> Schema:
    return Schema.of(
        quasi_identifier("zip", AttributeKind.STRING),
        quasi_identifier("age", AttributeKind.NUMERIC),
        sensitive("disease"),
        insensitive("note"),
    )


class TestAttribute:
    def test_role_predicates(self):
        assert quasi_identifier("a").is_quasi_identifier
        assert not quasi_identifier("a").is_sensitive
        assert sensitive("b").is_sensitive
        assert not insensitive("c").is_quasi_identifier

    def test_default_role_is_insensitive(self):
        assert Attribute("x").role is AttributeRole.INSENSITIVE

    def test_frozen(self):
        with pytest.raises(AttributeError):
            quasi_identifier("a").name = "b"


class TestSchema:
    def test_length_and_iteration(self):
        schema = make_schema()
        assert len(schema) == 4
        assert [a.name for a in schema] == ["zip", "age", "disease", "note"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema.of(quasi_identifier("a"), sensitive("a"))

    def test_index_of(self):
        schema = make_schema()
        assert schema.index_of("age") == 1
        with pytest.raises(SchemaError, match="unknown"):
            schema.index_of("nope")

    def test_contains(self):
        schema = make_schema()
        assert "zip" in schema
        assert "nope" not in schema

    def test_attribute_lookup(self):
        schema = make_schema()
        assert schema.attribute("disease").is_sensitive

    def test_quasi_identifier_views(self):
        schema = make_schema()
        assert schema.quasi_identifier_names == ("zip", "age")
        assert schema.quasi_identifier_indices == (0, 1)
        assert [a.name for a in schema.quasi_identifiers] == ["zip", "age"]

    def test_sensitive_views(self):
        schema = make_schema()
        assert schema.sensitive_names == ("disease",)

    def test_names(self):
        assert make_schema().names == ("zip", "age", "disease", "note")

    def test_with_roles_reassigns(self):
        schema = make_schema().with_roles({"note": AttributeRole.QUASI_IDENTIFIER})
        assert "note" in schema.quasi_identifier_names
        # Original untouched (schemas are immutable).
        assert "note" not in make_schema().quasi_identifier_names

    def test_with_roles_unknown_attribute(self):
        with pytest.raises(SchemaError, match="unknown"):
            make_schema().with_roles({"nope": AttributeRole.SENSITIVE})

    def test_with_roles_preserves_kind(self):
        schema = make_schema().with_roles({"age": AttributeRole.SENSITIVE})
        assert schema.attribute("age").kind is AttributeKind.NUMERIC
