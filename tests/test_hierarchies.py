"""Tests for generalization hierarchies (base, categorical, numeric, masking)."""

import pytest

from repro.hierarchy import (
    SUPPRESSED,
    Banding,
    HierarchyError,
    Interval,
    IntervalHierarchy,
    MaskingHierarchy,
    Span,
    TaxonomyHierarchy,
    uniform_interval_hierarchy,
)


class TestInterval:
    def test_membership_half_open(self):
        interval = Interval(25, 35)
        assert 26 in interval
        assert 35 in interval
        assert 25 not in interval
        assert "x" not in interval

    def test_empty_interval_rejected(self):
        with pytest.raises(HierarchyError):
            Interval(5, 5)

    def test_str_matches_paper_notation(self):
        assert str(Interval(25, 35)) == "(25,35]"

    def test_width(self):
        assert Interval(20, 40).width == 20

    def test_ordering(self):
        assert Interval(10, 20) < Interval(20, 30)


class TestSpan:
    def test_degenerate_allowed(self):
        assert Span(5, 5).width == 0

    def test_membership_closed(self):
        span = Span(10, 20)
        assert 10 in span and 20 in span
        assert 9 not in span

    def test_invalid_rejected(self):
        with pytest.raises(HierarchyError):
            Span(5, 4)

    def test_str(self):
        assert str(Span(10, 20)) == "[10-20]"


@pytest.fixture
def marital():
    return TaxonomyHierarchy(
        "marital",
        {
            "CF-Spouse": ("Married",),
            "Spouse Present": ("Married",),
            "Separated": ("Not Married",),
            "Never Married": ("Not Married",),
            "Divorced": ("Not Married",),
            "Spouse Absent": ("Not Married",),
        },
    )


class TestTaxonomyHierarchy:
    def test_height(self, marital):
        assert marital.height == 2

    def test_levels(self, marital):
        assert marital.generalize("Divorced", 0) == "Divorced"
        assert marital.generalize("Divorced", 1) == "Not Married"
        assert marital.generalize("Divorced", 2) == SUPPRESSED

    def test_out_of_domain_rejected(self, marital):
        with pytest.raises(HierarchyError, match="not in domain"):
            marital.generalize("Single", 1)

    def test_out_of_range_level(self, marital):
        with pytest.raises(HierarchyError, match="out of range"):
            marital.generalize("Divorced", 3)

    def test_coverage(self, marital):
        assert marital.coverage("Divorced", 0) == 1
        assert marital.coverage("Divorced", 1) == 4
        assert marital.coverage("CF-Spouse", 1) == 2
        assert marital.coverage("Divorced", 2) == 6

    def test_loss_normalized(self, marital):
        assert marital.loss("Divorced", 0) == 0.0
        assert marital.loss("Divorced", 1) == pytest.approx(3 / 5)
        assert marital.loss("Divorced", 2) == 1.0

    def test_ragged_paths_rejected(self):
        with pytest.raises(HierarchyError, match="ragged"):
            TaxonomyHierarchy("x", {"a": ("g",), "b": ()})

    def test_empty_rejected(self):
        with pytest.raises(HierarchyError, match="no leaves"):
            TaxonomyHierarchy("x", {})

    def test_flat_hierarchy(self):
        flat = TaxonomyHierarchy("sex", {"Male": (), "Female": ()})
        assert flat.height == 1
        assert flat.generalize("Male", 1) == SUPPRESSED

    def test_from_tree(self):
        tree = TaxonomyHierarchy.from_tree(
            "work",
            {"Any": [{"Gov": ["Federal", "State"]}, {"Private": ["Inc", "NotInc"]}]},
        )
        assert tree.height == 2
        assert tree.generalize("Federal", 1) == "Gov"
        assert tree.generalize("Inc", 1) == "Private"

    def test_from_tree_duplicate_leaf(self):
        with pytest.raises(HierarchyError, match="duplicate"):
            TaxonomyHierarchy.from_tree("x", {"Any": [{"A": ["v"]}, {"B": ["v"]}]})

    def test_from_tree_multiple_roots(self):
        with pytest.raises(HierarchyError, match="one root"):
            TaxonomyHierarchy.from_tree("x", {"A": ["v"], "B": ["w"]})

    def test_generalizations(self, marital):
        assert marital.generalizations("Divorced") == [
            "Divorced",
            "Not Married",
            SUPPRESSED,
        ]

    def test_released_loss_leaf(self, marital):
        assert marital.released_loss("Divorced") == 0.0

    def test_released_loss_internal(self, marital):
        assert marital.released_loss("Married") == pytest.approx(1 / 5)

    def test_released_loss_suppressed(self, marital):
        assert marital.released_loss(SUPPRESSED) == 1.0

    def test_released_loss_frozenset(self, marital):
        assert marital.released_loss(frozenset({"Divorced", "Separated"})) == (
            pytest.approx(1 / 5)
        )

    def test_released_loss_unknown(self, marital):
        with pytest.raises(HierarchyError):
            marital.released_loss("Widowed")

    def test_released_loss_set_with_unknown(self, marital):
        with pytest.raises(HierarchyError, match="non-domain"):
            marital.released_loss(frozenset({"Divorced", "Widowed"}))


class TestIntervalHierarchy:
    @pytest.fixture
    def age(self):
        return IntervalHierarchy(
            "age", [Banding(10, 5), Banding(20, 15)], bounds=(0, 120)
        )

    def test_height(self, age):
        assert age.height == 3

    def test_banding_anchors(self, age):
        assert age.generalize(28, 1) == Interval(25, 35)
        assert age.generalize(35, 1) == Interval(25, 35)
        assert age.generalize(36, 1) == Interval(35, 45)
        assert age.generalize(28, 2) == Interval(15, 35)

    def test_level0_identity(self, age):
        assert age.generalize(28, 0) == 28

    def test_top_suppressed(self, age):
        assert age.generalize(28, 3) == SUPPRESSED

    def test_out_of_bounds_rejected(self, age):
        with pytest.raises(HierarchyError, match="outside domain"):
            age.generalize(130, 1)

    def test_non_numeric_rejected(self, age):
        with pytest.raises(HierarchyError, match="numeric"):
            age.generalize("old", 1)

    def test_loss(self, age):
        assert age.loss(28, 0) == 0.0
        assert age.loss(28, 1) == pytest.approx(10 / 120)
        assert age.loss(28, 3) == 1.0

    def test_widths_must_be_ordered(self):
        with pytest.raises(HierarchyError, match="non-decreasing"):
            IntervalHierarchy("x", [Banding(20), Banding(10)], bounds=(0, 100))

    def test_invalid_bounds(self):
        with pytest.raises(HierarchyError, match="invalid bounds"):
            IntervalHierarchy("x", [Banding(10)], bounds=(10, 10))

    def test_zero_width_banding_rejected(self):
        with pytest.raises(HierarchyError, match="positive"):
            Banding(0)

    def test_released_loss_interval_and_span(self, age):
        assert age.released_loss(Interval(25, 35)) == pytest.approx(10 / 120)
        assert age.released_loss(Span(20, 50)) == pytest.approx(30 / 120)
        assert age.released_loss(28) == 0.0
        assert age.released_loss(SUPPRESSED) == 1.0

    def test_uniform_hierarchy_doubles(self):
        h = uniform_interval_hierarchy("age", (0, 80), base_width=5, levels=3)
        assert h.height == 4
        assert h.generalize(7, 1) == Interval(5, 10)
        assert h.generalize(7, 2) == Interval(0, 10)
        assert h.generalize(7, 3) == Interval(0, 20)


class TestMaskingHierarchy:
    @pytest.fixture
    def zips(self):
        return MaskingHierarchy(
            "zip", 5, domain={"13053", "13052", "13268", "13269", "13253", "13250"}
        )

    def test_masking_levels(self, zips):
        assert zips.generalize("13053", 0) == "13053"
        assert zips.generalize("13053", 1) == "1305*"
        assert zips.generalize("13053", 3) == "13***"
        assert zips.generalize("13053", 5) == SUPPRESSED

    def test_wrong_length_rejected(self, zips):
        with pytest.raises(HierarchyError, match="length"):
            zips.generalize("1305", 1)

    def test_out_of_domain_rejected(self, zips):
        with pytest.raises(HierarchyError, match="not in domain"):
            zips.generalize("99999", 1)

    def test_coverage(self, zips):
        assert zips.coverage("13053", 1) == 2  # 13053, 13052
        assert zips.coverage("13053", 3) == 6
        assert zips.coverage("13053", 0) == 1

    def test_coverage_requires_domain(self):
        free = MaskingHierarchy("zip", 5)
        with pytest.raises(HierarchyError, match="domain"):
            free.coverage("13053", 1)

    def test_loss_with_domain(self, zips):
        assert zips.loss("13053", 1) == pytest.approx(1 / 5)
        assert zips.loss("13053", 5) == 1.0

    def test_loss_without_domain_falls_back(self):
        free = MaskingHierarchy("zip", 5)
        assert free.loss("13053", 2) == pytest.approx(2 / 5)

    def test_released_loss_masked(self, zips):
        assert zips.released_loss("1305*") == pytest.approx(1 / 5)
        assert zips.released_loss("13053") == 0.0
        assert zips.released_loss("*****") == 1.0
        assert zips.released_loss(SUPPRESSED) == 1.0

    def test_released_loss_frozenset(self, zips):
        assert zips.released_loss(frozenset({"13053", "13052"})) == pytest.approx(1 / 5)

    def test_invalid_code_length(self):
        with pytest.raises(HierarchyError):
            MaskingHierarchy("zip", 0)
