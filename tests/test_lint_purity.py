"""Tests for Layer 4 of repro.lint: parallel-safety analysis (REP200-REP206).

Every rule gets a positive fixture (the violation fires) and a negative
fixture (the safe idiom stays quiet), plus the acceptance-critical cases:
a planted global-state write inside a task op is caught by REP201, REP202
stays quiet on seed-threaded randomness but fires on a planted
``random.random()`` two calls deep, the repo itself is clean under
``--select REP2 --strict``, and ``op_certificates.json`` regenerates
byte-identically.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import api
from repro.lint.diagnostics import Severity
from repro.lint.engine import expand_selection
from repro.lint.purity import (
    CERTIFICATE_SCHEMA,
    PROGRAM_RULES,
    _ANALYSIS_MEMO,
    check_parallel_safety,
    op_certificates,
    render_certificates,
    write_op_certificates,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
REPO_SRC = REPO_ROOT / "src"

OPS_PRELUDE = "from repro.runtime.task import register_op\n"


def tree(tmp_path, files):
    """Materialize ``{relative path: source}`` under ``tmp_path``."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return tmp_path


def findings_for(tmp_path, source, select=None):
    root = tree(
        tmp_path,
        {
            "app/__init__.py": "",
            "app/ops.py": OPS_PRELUDE + textwrap.dedent(source),
        },
    )
    return check_parallel_safety([root], select=select)


def rules_of(findings):
    return sorted({finding.rule for finding in findings})


class TestRep201GlobalState:
    def test_planted_global_write_in_task_op_is_caught(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            CACHE = {}

            @register_op("app.bad")
            def bad(params, deps, seed):
                CACHE[seed] = dict(params)
                return dict(params)
            """,
        )
        assert rules_of(findings) == ["REP201"]
        assert "'app.bad'" in findings[0].message

    def test_write_two_calls_deep_is_caught_with_chain(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            STATE = []

            def inner(value):
                STATE.append(value)

            def middle(value):
                inner(value)

            @register_op("app.deep")
            def deep(params, deps, seed):
                middle(seed)
                return dict(params)
            """,
        )
        assert rules_of(findings) == ["REP201"]
        assert "via" in findings[0].message

    def test_local_mutation_is_quiet(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            @register_op("app.pure")
            def pure(params, deps, seed):
                scratch = {}
                scratch["n"] = len(params)
                rows = list(params)
                rows.append("x")
                return {"n": scratch["n"]}
            """,
        )
        assert findings == []

    def test_global_write_outside_op_reach_is_quiet(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            STATE = []

            def untethered():
                STATE.append(1)

            @register_op("app.ok")
            def ok(params, deps, seed):
                return dict(params)
            """,
        )
        assert findings == []


class TestRep202AmbientNondeterminism:
    def test_planted_random_random_two_calls_deep_fires(self, tmp_path):
        # The kill-test: process-global RNG reached through two layers of
        # helpers must still be attributed to the op.
        findings = findings_for(
            tmp_path,
            """
            import random

            def inner():
                return random.random()

            def middle():
                return inner()

            @register_op("app.noisy")
            def noisy(params, deps, seed):
                return {"v": middle()}
            """,
        )
        assert rules_of(findings) == ["REP202"]
        assert "'app.noisy'" in findings[0].message

    def test_seed_threaded_randomness_is_quiet(self, tmp_path):
        # The sanctioned idiom: the derive_seed-split seed arrives through
        # params (with_seed), so it is part of the cache key, and seeds a
        # local random.Random.  Neither REP202 nor REP204 may fire.
        findings = findings_for(
            tmp_path,
            """
            import random

            def draw(rng):
                return rng.random()

            @register_op("app.seeded")
            def seeded(params, deps, seed):
                rng = random.Random(params["seed"])
                return {"v": draw(rng)}
            """,
        )
        assert findings == []

    def test_clock_read_fires(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            import time

            @register_op("app.clocked")
            def clocked(params, deps, seed):
                return {"t": time.time()}
            """,
        )
        assert rules_of(findings) == ["REP202"]

    def test_environment_read_fires(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            import os

            @register_op("app.envy")
            def envy(params, deps, seed):
                return {"home": os.environ.get("HOME", "")}
            """,
        )
        assert rules_of(findings) == ["REP202"]


class TestRep203Picklability:
    def test_taskspec_lambda_payload_fires(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            from repro.runtime.task import TaskSpec

            @register_op("app.ship")
            def ship(params, deps, seed):
                return dict(params)

            def build():
                return TaskSpec("t1", "app.ship", {"fn": lambda x: x})
            """,
        )
        assert rules_of(findings) == ["REP203"]
        assert "lambda" in findings[0].message

    def test_taskspec_lambda_for_inline_op_is_quiet(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            from repro.runtime.task import TaskSpec

            @register_op("app.local", inline_only=True)
            def local(params, deps, seed):
                return dict(params)

            def build():
                return TaskSpec("t1", "app.local", {"fn": lambda x: x})
            """,
        )
        assert findings == []

    def test_returned_lambda_through_helper_fires(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            def make():
                return lambda x: x

            @register_op("app.factory")
            def factory(params, deps, seed):
                return make()
            """,
        )
        assert rules_of(findings) == ["REP203"]

    def test_plain_json_payload_is_quiet(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            from repro.runtime.task import TaskSpec

            @register_op("app.plain")
            def plain(params, deps, seed):
                return dict(params)

            def build():
                return TaskSpec("t1", "app.plain", {"k": 5})
            """,
        )
        assert findings == []


class TestRep204CacheKeyCompleteness:
    def test_seed_reaching_return_fires(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            @register_op("app.seedy")
            def seedy(params, deps, seed):
                return {"seed": seed}
            """,
        )
        assert rules_of(findings) == ["REP204"]
        assert "with_seed" in findings[0].message

    def test_unused_seed_is_quiet(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            @register_op("app.pure")
            def pure(params, deps, seed):
                return dict(params)
            """,
        )
        assert findings == []

    def test_literal_epoch_cache_key_fires(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            from repro.runtime.task import CacheKey

            def key():
                return CacheKey(dataset="d", algorithm="a", epoch="1")
            """,
        )
        assert rules_of(findings) == ["REP204"]
        assert "epoch" in findings[0].message

    def test_default_epoch_cache_key_is_quiet(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            from repro.runtime.task import CacheKey

            def key():
                return CacheKey(dataset="d", algorithm="a")
            """,
        )
        assert findings == []


class TestRep205IterationOrder:
    def test_list_over_set_reaching_return_fires(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            @register_op("app.drift")
            def drift(params, deps, seed):
                return list({"a", "b", "c"})
            """,
        )
        assert rules_of(findings) == ["REP205"]
        assert findings[0].severity is Severity.WARNING

    def test_sorted_set_is_quiet(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            @register_op("app.stable")
            def stable(params, deps, seed):
                return sorted({"a", "b", "c"})
            """,
        )
        assert findings == []


class TestRep206InlineReachability:
    def test_parallel_op_reaching_inline_op_fires(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            @register_op("app.inline", inline_only=True)
            def inline_impl(params, deps, seed):
                return dict(params)

            @register_op("app.outer")
            def outer(params, deps, seed):
                inner = inline_impl(params, deps, 0)
                return dict(params)
            """,
        )
        assert rules_of(findings) == ["REP206"]
        assert "'app.outer'" in findings[0].message
        assert "'app.inline'" in findings[0].message

    def test_disjoint_ops_are_quiet(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            @register_op("app.inline", inline_only=True)
            def inline_impl(params, deps, seed):
                return dict(params)

            @register_op("app.outer")
            def outer(params, deps, seed):
                return dict(params)
            """,
        )
        assert findings == []


class TestRep200WaiverAudit:
    def test_unjustified_waiver_surfaces_as_warning(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            CACHE = {}

            @register_op("app.waived")
            def waived(params, deps, seed):
                CACHE[seed] = 1  # lint: disable=REP201
                return dict(params)
            """,
        )
        assert rules_of(findings) == ["REP200"]
        assert findings[0].severity is Severity.WARNING

    def test_justified_waiver_is_silent_and_audited(self, tmp_path):
        root = tree(
            tmp_path,
            {
                "app/__init__.py": "",
                "app/ops.py": OPS_PRELUDE
                + textwrap.dedent(
                    """
                    CACHE = {}

                    @register_op("app.waived")
                    def waived(params, deps, seed):
                        CACHE[seed] = 1  # lint: disable=REP201 -- idempotent memo
                        return dict(params)
                    """
                ),
            },
        )
        assert check_parallel_safety([root]) == []
        certs = op_certificates([root])
        assert certs["unaudited_waivers"] == 0
        waivers = certs["ops"]["app.waived"]["waivers"]
        assert waivers and waivers[0]["justification"] == "idempotent memo"
        assert certs["ops"]["app.waived"]["verdict"] == "certified"


class TestSelection:
    def test_select_narrows_to_requested_rules(self, tmp_path):
        source = """
        import random

        CACHE = {}

        @register_op("app.messy")
        def messy(params, deps, seed):
            CACHE[seed] = 1
            return {"v": random.random()}
        """
        both = findings_for(tmp_path / "a", source)
        assert rules_of(both) == ["REP201", "REP202"]
        only = findings_for(tmp_path / "b", source, select=["REP202"])
        assert rules_of(only) == ["REP202"]

    def test_rep2_prefix_expands_over_program_rules(self):
        universe = set(api.registered_rules()) | set(PROGRAM_RULES)
        expanded = expand_selection(["REP2"], universe=universe)
        assert expanded == sorted(PROGRAM_RULES)

    def test_unknown_prefix_still_rejected(self):
        with pytest.raises(ValueError):
            expand_selection(["REP9"], universe=set(PROGRAM_RULES))


class TestRepoIsClean:
    def test_repo_passes_strict_rep2(self):
        assert main(["lint", str(REPO_SRC), "--select", "REP2", "--strict"]) == 0

    def test_no_unaudited_waivers_in_repo(self):
        certs = op_certificates([REPO_SRC])
        assert certs["unaudited_waivers"] == 0
        assert all(
            op["verdict"] in ("certified", "inline-only")
            for op in certs["ops"].values()
        )


class TestCertificates:
    def test_generation_is_byte_deterministic(self, tmp_path):
        first = write_op_certificates([REPO_SRC], tmp_path / "a.json")
        _ANALYSIS_MEMO.clear()  # force a cold re-analysis, not a memo hit
        second = write_op_certificates([REPO_SRC], tmp_path / "b.json")
        assert render_certificates(first) == render_certificates(second)
        assert (tmp_path / "a.json").read_bytes() == (
            tmp_path / "b.json"
        ).read_bytes()

    def test_committed_certificates_are_current(self):
        committed = REPO_ROOT / "lint" / "op_certificates.json"
        regenerated = render_certificates(op_certificates([REPO_SRC]))
        assert committed.read_text(encoding="utf-8") == regenerated, (
            "lint/op_certificates.json is stale; regenerate with "
            "`repro lint src --select REP2 --certify-ops "
            "lint/op_certificates.json`"
        )

    def test_contract_of_certificate_payload(self, tmp_path):
        root = tree(
            tmp_path,
            {
                "app/__init__.py": "",
                "app/ops.py": OPS_PRELUDE
                + textwrap.dedent(
                    """
                    STATE = {}

                    @register_op("app.dirty")
                    def dirty(params, deps, seed):
                        STATE[seed] = 1
                        return dict(params)

                    @register_op("app.clean")
                    def clean(params, deps, seed):
                        return dict(params)

                    @register_op("app.pinned", inline_only=True)
                    def pinned(params, deps, seed):
                        return dict(params)
                    """
                ),
            },
        )
        certs = op_certificates([root])
        assert certs["schema"] == CERTIFICATE_SCHEMA
        assert certs["ops"]["app.dirty"]["verdict"] == "uncertified"
        assert certs["ops"]["app.dirty"]["findings"]
        assert certs["ops"]["app.dirty"]["effects"]["writes-global"]
        assert certs["ops"]["app.clean"]["verdict"] == "certified"
        assert certs["ops"]["app.clean"]["findings"] == []
        assert certs["ops"]["app.pinned"]["verdict"] == "inline-only"
        for op in certs["ops"].values():
            assert "\\" not in op["path"], "certificate paths must be POSIX"
        # The payload must round-trip through its canonical rendering.
        assert json.loads(render_certificates(certs)) == certs

    def test_cli_certify_ops_writes_file_and_reports(self, tmp_path, capsys):
        target = tmp_path / "certs.json"
        code = main(
            [
                "lint",
                str(REPO_SRC),
                "--select",
                "REP2",
                "--certify-ops",
                str(target),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "op certificate(s)" in out
        payload = json.loads(target.read_text(encoding="utf-8"))
        assert payload["schema"] == CERTIFICATE_SCHEMA
        assert payload["ops"]
