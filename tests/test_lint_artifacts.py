"""Tests for Layer 1 of repro.lint: artifact analysis (ART001-ART008, ART012)."""

import json
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.anonymize.engine import recode
from repro.core.indices import MinimumIndex
from repro.core.rproperty import privacy_profile
from repro.core.vector import PropertyVector
from repro.datasets import paper_tables
from repro.hierarchy.base import SUPPRESSED, Hierarchy
from repro.hierarchy.categorical import TaxonomyHierarchy
from repro.hierarchy.lattice import Lattice
from repro.lint import api
from repro.lint.artifacts import (
    BENCH_SCHEMA,
    check_bench_artifacts,
    check_hierarchies,
    check_hierarchy,
    check_index_registry,
    check_lattice,
    check_privacy_parameters,
    check_profile,
    check_property_vectors,
    check_unary_index,
    domain_sample,
)
from repro.lint.diagnostics import LintError, Severity
from repro.privacy import (
    DistinctLDiversity,
    KAnonymity,
    PSensitiveKAnonymity,
    RecursiveCLDiversity,
    TCloseness,
)


class StubHierarchy(Hierarchy):
    """Table-driven hierarchy: explicit chains (and losses) per value."""

    def __init__(self, name, chains, losses=None):
        super().__init__(name)
        self._chains = {value: tuple(chain) for value, chain in chains.items()}
        self._losses = losses

    @property
    def height(self):
        """Chain length minus the raw level."""
        return len(next(iter(self._chains.values()))) - 1

    @property
    def leaves(self):
        """Domain values, in declaration order."""
        return tuple(self._chains)

    def generalize(self, value, level):
        """Look the generalization up in the chain table."""
        self.check_level(level)
        return self._chains[value][level]

    def loss(self, value, level):
        """Explicit loss table, or the level fraction by default."""
        self.check_level(level)
        if self._losses is not None:
            return self._losses[value][level]
        return level / self.height


def clean_stub():
    return StubHierarchy(
        "city",
        {
            "a": ("a", "AB", SUPPRESSED),
            "b": ("b", "AB", SUPPRESSED),
            "c": ("c", "CD", SUPPRESSED),
            "d": ("d", "CD", SUPPRESSED),
        },
        losses={value: (0.0, 0.5, 1.0) for value in "abcd"},
    )


def rule_ids(findings):
    return sorted({d.rule for d in findings})


def errors_of(findings):
    return [d for d in findings if d.severity is Severity.ERROR]


def broken_marital_hierarchy():
    """A height-3 marital taxonomy whose level-1 token 'Married' splits at
    level 2 — the canonical monotonicity violation."""
    return TaxonomyHierarchy(
        paper_tables.SENSITIVE_ATTRIBUTE,
        {
            "CF-Spouse": ("Married", "WithSpouse"),
            "Spouse Present": ("Married", "Alone"),
            "Separated": ("Not Married", "Alone"),
            "Never Married": ("Not Married", "Alone"),
            "Divorced": ("Not Married", "Alone"),
            "Spouse Absent": ("Not Married", "Alone"),
        },
    )


class TestDomainSample:
    def test_explicit_sample_wins(self):
        assert domain_sample(clean_stub(), sample=["a"]) == ["a"]

    def test_leaves_used(self):
        assert domain_sample(clean_stub()) == ["a", "b", "c", "d"]

    def test_numeric_bounds_grid(self):
        sample = domain_sample(paper_tables.age_hierarchy(10, 5))
        assert sample[0] == 0.0 and sample[-1] == 120.0
        assert len(sample) == 17

    def test_no_domain_gives_empty(self):
        assert domain_sample(SimpleNamespace(height=2, name="opaque")) == []


class TestCheckHierarchy:
    def test_clean_hierarchy_has_no_findings(self):
        assert check_hierarchy(clean_stub()) == []

    def test_paper_hierarchies_are_clean(self):
        assert check_hierarchy(paper_tables.marital_hierarchy()) == []
        table = paper_tables.table1()
        assert (
            check_hierarchy(
                paper_tables.zip_hierarchy(), sample=table.column("Zip Code")
            )
            == []
        )

    def test_bad_height_is_art001(self):
        findings = check_hierarchy(SimpleNamespace(height=0, name="flat"))
        assert rule_ids(findings) == ["ART001"]
        assert errors_of(findings)

    def test_missing_domain_is_info_only(self):
        findings = check_hierarchy(SimpleNamespace(height=2, name="opaque"))
        assert [d.severity for d in findings] == [Severity.INFO]

    def test_incomplete_chain_is_art001(self):
        hierarchy = clean_stub()
        findings = check_hierarchy(hierarchy, sample=["a", "zzz"])
        assert rule_ids(errors_of(findings)) == ["ART001"]
        assert "zzz" in findings[0].message

    def test_non_identity_level0_is_art001(self):
        hierarchy = StubHierarchy(
            "h",
            {"a": ("A?", "X", SUPPRESSED), "b": ("b", "X", SUPPRESSED)},
            losses={"a": (0.0, 0.5, 1.0), "b": (0.0, 0.5, 1.0)},
        )
        findings = check_hierarchy(hierarchy)
        assert rule_ids(findings) == ["ART001"]
        assert "identity" in findings[0].message

    def test_missing_suppression_top_is_art001(self):
        hierarchy = StubHierarchy(
            "h",
            {"a": ("a", "X", "TOP"), "b": ("b", "X", "TOP")},
            losses={"a": (0.0, 0.5, 1.0), "b": (0.0, 0.5, 1.0)},
        )
        findings = check_hierarchy(hierarchy)
        assert rule_ids(findings) == ["ART001"]
        assert SUPPRESSED in findings[0].message

    def test_broken_monotonicity_is_art002(self):
        hierarchy = StubHierarchy(
            "h",
            {
                "a": ("a", "X", "P", SUPPRESSED),
                "b": ("b", "X", "Q", SUPPRESSED),
            },
            losses={v: (0.0, 1 / 3, 2 / 3, 1.0) for v in "ab"},
        )
        findings = check_hierarchy(hierarchy)
        assert rule_ids(findings) == ["ART002"]
        assert "monotonicity broken" in findings[0].message
        assert errors_of(findings)

    def test_redundant_level_is_art002_warning(self):
        hierarchy = StubHierarchy(
            "h",
            {"a": ("a", "a", SUPPRESSED), "b": ("b", "b", SUPPRESSED)},
            losses={v: (0.0, 0.0, 1.0) for v in "ab"},
        )
        findings = check_hierarchy(hierarchy)
        assert rule_ids(findings) == ["ART002"]
        assert all(d.severity is Severity.WARNING for d in findings)
        assert "coarsens nothing" in findings[0].message

    def test_broken_marital_taxonomy_reports_art002(self):
        findings = check_hierarchy(broken_marital_hierarchy())
        assert "ART002" in rule_ids(errors_of(findings))
        assert any("Married" in d.message for d in findings)

    def test_nonzero_raw_loss_is_art003(self):
        hierarchy = StubHierarchy(
            "h",
            {"a": ("a", "X", SUPPRESSED), "b": ("b", "X", SUPPRESSED)},
            losses={v: (0.2, 0.5, 1.0) for v in "ab"},
        )
        findings = check_hierarchy(hierarchy)
        assert rule_ids(findings) == ["ART003"]
        assert "cost 0" in findings[0].message

    def test_top_loss_below_one_is_art003(self):
        hierarchy = StubHierarchy(
            "h",
            {"a": ("a", "X", SUPPRESSED), "b": ("b", "X", SUPPRESSED)},
            losses={v: (0.0, 0.5, 0.9) for v in "ab"},
        )
        findings = check_hierarchy(hierarchy)
        assert rule_ids(findings) == ["ART003"]

    def test_out_of_range_loss_is_art003(self):
        hierarchy = StubHierarchy(
            "h",
            {"a": ("a", "X", SUPPRESSED), "b": ("b", "X", SUPPRESSED)},
            losses={v: (0.0, 1.5, 1.0) for v in "ab"},
        )
        findings = check_hierarchy(hierarchy)
        assert rule_ids(findings) == ["ART003"]
        assert any("[0, 1]" in d.message for d in findings)

    def test_decreasing_loss_is_art003(self):
        hierarchy = StubHierarchy(
            "h",
            {
                "a": ("a", "X", "Y", SUPPRESSED),
                "b": ("b", "X", "Y", SUPPRESSED),
            },
            losses={v: (0.0, 0.6, 0.3, 1.0) for v in "ab"},
        )
        findings = check_hierarchy(hierarchy)
        assert rule_ids(findings) == ["ART003"]
        assert any("decreases" in d.message for d in findings)


class TestCheckHierarchies:
    def test_matching_names_are_clean(self):
        assert check_hierarchies({"city": clean_stub()}) == []

    def test_key_name_mismatch_is_warned(self):
        findings = check_hierarchies({"town": clean_stub()})
        assert rule_ids(findings) == ["ART001"]
        assert all(d.severity is Severity.WARNING for d in findings)
        assert "does not match" in findings[0].message


class TestCheckLattice:
    def test_well_formed_lattice_is_clean(self):
        lattice = Lattice(
            [paper_tables.marital_hierarchy(), paper_tables.age_hierarchy(10, 5)]
        )
        assert check_lattice(lattice) == []

    def test_disagreeing_heights_are_art004(self):
        class WrongHeights(Lattice):
            """Lattice reporting every height one level too deep."""

            @property
            def heights(self):
                """Deliberately inconsistent heights."""
                return tuple(h + 1 for h in super().heights)

        findings = check_lattice(WrongHeights([clean_stub()]))
        assert rule_ids(findings) == ["ART004"]
        assert any("disagrees with DGH depth" in d.message for d in findings)

    def test_unreachable_nodes_are_art004(self):
        class DeadEnd(Lattice):
            """Lattice whose successor relation is empty."""

            def successors(self, node):
                """Yield nothing: only the bottom is reachable."""
                return iter(())

        findings = check_lattice(DeadEnd([clean_stub(), clean_stub()]))
        assert rule_ids(findings) == ["ART004"]
        assert any("reachable" in d.message for d in findings)

    def test_oversized_lattice_skips_reachability(self):
        chains = {
            i: (i,) + tuple(f"L{level}" for level in range(1, 36)) + (SUPPRESSED,)
            for i in range(2)
        }
        deep = StubHierarchy("deep", chains)
        findings = check_lattice(Lattice([deep, deep, deep]))
        assert [d.severity for d in findings] == [Severity.INFO]
        assert "skipped" in findings[0].message


class TestCheckPrivacyParameters:
    def test_stock_models_are_clean(self):
        findings = check_privacy_parameters(
            [
                KAnonymity(5),
                DistinctLDiversity(2),
                TCloseness(0.3),
                PSensitiveKAnonymity(2, 5),
                RecursiveCLDiversity(1.0, 2),
            ],
            rows=10,
            sensitive_values=["x", "y", "z", "x"],
        )
        assert findings == []

    def test_k_above_table_size_is_art005(self):
        findings = check_privacy_parameters(
            [SimpleNamespace(name="k", k=500)], rows=10
        )
        assert rule_ids(findings) == ["ART005"]
        assert "exceeds the table size" in findings[0].message

    def test_non_integer_k_is_art005(self):
        findings = check_privacy_parameters([SimpleNamespace(name="k", k=2.5)])
        assert rule_ids(errors_of(findings)) == ["ART005"]

    def test_l_above_distinct_is_art005(self):
        findings = check_privacy_parameters(
            [SimpleNamespace(name="l", l=9)],
            sensitive_values=["x", "y"],
        )
        assert rule_ids(findings) == ["ART005"]
        assert "distinct sensitive values" in findings[0].message

    def test_vacuous_l_is_warned(self):
        findings = check_privacy_parameters([SimpleNamespace(name="l", l=1)])
        assert [d.severity for d in findings] == [Severity.WARNING]
        assert "vacuous" in findings[0].message

    def test_t_out_of_unit_interval_is_art005(self):
        findings = check_privacy_parameters([SimpleNamespace(name="t", t=1.5)])
        assert rule_ids(findings) == ["ART005"]

    def test_p_above_k_is_art005(self):
        findings = check_privacy_parameters(
            [SimpleNamespace(name="p", p=7, k=3)], rows=100
        )
        assert rule_ids(findings) == ["ART005"]
        assert any("exceeds k" in d.message for d in findings)

    def test_nonpositive_c_is_art005(self):
        findings = check_privacy_parameters([SimpleNamespace(name="c", c=0.0)])
        assert rule_ids(findings) == ["ART005"]


class TestCheckIndices:
    def test_stock_index_is_clean(self):
        assert check_unary_index(MinimumIndex()) == []

    def test_contractless_object_is_art006(self):
        findings = check_unary_index(SimpleNamespace(name=""))
        assert rule_ids(findings) == ["ART006"]
        messages = " ".join(d.message for d in findings)
        assert "larger_is_better" in messages
        assert "value" in messages and "prefers" in messages

    def test_registry_key_mismatch_is_warned(self):
        findings = check_index_registry({"min": MinimumIndex()})
        assert rule_ids(findings) == ["ART006"]
        assert all(d.severity is Severity.WARNING for d in findings)

    def test_registry_under_own_name_is_clean(self):
        assert check_index_registry({"minimum": MinimumIndex()}) == []


class TestCheckProfile:
    DECLARED = {
        "equivalence-class-size",
        "sensitive-value-count",
        "tuple-utility",
        "breach-probability",
    }

    def test_stock_profile_is_clean(self):
        profile = privacy_profile("occupation")
        assert check_profile(profile, declared_properties=self.DECLARED) == []

    def test_empty_profile_is_art007(self):
        findings = check_profile(SimpleNamespace(names=(), r=0))
        assert rule_ids(findings) == ["ART007"]

    def test_duplicate_names_are_art007(self):
        findings = check_profile(SimpleNamespace(names=("a", "a"), r=2))
        assert rule_ids(findings) == ["ART007"]
        assert "not unique" in findings[0].message

    def test_r_mismatch_is_art007(self):
        findings = check_profile(SimpleNamespace(names=("a",), r=2))
        assert rule_ids(findings) == ["ART007"]

    def test_undeclared_property_is_art007(self):
        findings = check_profile(
            SimpleNamespace(names=("mystery",), r=1),
            declared_properties={"known"},
        )
        assert rule_ids(findings) == ["ART007"]
        assert "undeclared" in findings[0].message


class TestCheckPropertyVectors:
    def test_matching_length_is_clean(self):
        assert check_property_vectors([PropertyVector([1, 2, 3])], rows=3) == []

    def test_wrong_length_is_art008(self):
        findings = check_property_vectors([PropertyVector([1, 2, 3])], rows=4)
        assert rule_ids(findings) == ["ART008"]
        assert "3 measurements" in findings[0].message

    def test_mixed_orientation_is_warned(self):
        findings = check_property_vectors(
            [
                PropertyVector([1, 2], higher_is_better=True),
                PropertyVector([1, 2], higher_is_better=False),
            ],
            rows=2,
        )
        assert rule_ids(findings) == ["ART008"]
        assert all(d.severity is Severity.WARNING for d in findings)


class TestShippedArtifacts:
    def test_everything_the_package_ships_is_clean(self):
        assert api.check_shipped_artifacts() == []


class TestEngineGate:
    def test_recode_rejects_broken_monotonicity(self):
        api.clear_validation_cache()
        table = paper_tables.table1()
        hierarchies = {
            "Zip Code": paper_tables.zip_hierarchy(),
            "Age": paper_tables.age_hierarchy(10, 5),
            paper_tables.SENSITIVE_ATTRIBUTE: broken_marital_hierarchy(),
        }
        levels = {"Zip Code": 1, "Age": 1, paper_tables.SENSITIVE_ATTRIBUTE: 1}
        with pytest.raises(LintError) as excinfo:
            recode(table, hierarchies, levels)
        assert "refusing to recode" in str(excinfo.value)
        assert "ART002" in {d.rule for d in excinfo.value.diagnostics}

    def test_gate_diagnostics_exclude_advisory_rules(self):
        findings = api.gate_diagnostics(broken_marital_hierarchy())
        assert findings
        assert {d.rule for d in findings} <= {"ART001", "ART002"}
        assert all(d.severity is Severity.ERROR for d in findings)

    def test_valid_hierarchies_pass_and_are_memoized(self):
        api.clear_validation_cache()
        hierarchy = paper_tables.marital_hierarchy()
        api.ensure_valid_hierarchies({hierarchy.name: hierarchy})
        assert hierarchy in api._validated_hierarchies
        # Second call must be a cheap cache hit, not a re-validation.
        api.ensure_valid_hierarchies({hierarchy.name: hierarchy})

    def test_paper_schemes_recode_through_the_gate(self):
        release = paper_tables.t3a()
        assert len(release) == len(paper_tables.table1())


def _bench_payload(**overrides):
    """A minimal valid ``repro.bench/trajectory@1`` payload."""
    payload = {
        "schema": BENCH_SCHEMA,
        "suite": "recode",
        "entries": [
            {
                "git_rev": "abc1234",
                "quick": True,
                "cases": [
                    {
                        "n": 300,
                        "repeats": 3,
                        "p50_wall_s": 0.01,
                        "p95_wall_s": 0.02,
                        "plane_equivalent": True,
                    }
                ],
            }
        ],
    }
    payload.update(overrides)
    return payload


class TestCheckBenchArtifacts:
    def _write(self, tmp_path, payload):
        target = tmp_path / "BENCH_recode.json"
        target.write_text(json.dumps(payload), encoding="utf-8")
        return target

    def test_valid_trajectory_is_clean(self, tmp_path):
        assert check_bench_artifacts(self._write(tmp_path, _bench_payload())) == []

    def test_missing_file_is_an_error(self, tmp_path):
        findings = check_bench_artifacts(tmp_path / "BENCH_nope.json")
        assert rule_ids(findings) == ["ART012"]

    def test_wrong_schema_is_an_error(self, tmp_path):
        target = self._write(tmp_path, _bench_payload(schema="bogus@0"))
        findings = check_bench_artifacts(target)
        assert findings and "schema" in findings[0].message

    def test_empty_entries_is_an_error(self, tmp_path):
        target = self._write(tmp_path, _bench_payload(entries=[]))
        findings = check_bench_artifacts(target)
        assert findings and "entries" in findings[0].message

    def test_missing_git_rev_is_an_error(self, tmp_path):
        payload = _bench_payload()
        payload["entries"][0]["git_rev"] = ""
        findings = check_bench_artifacts(self._write(tmp_path, payload))
        assert any("git_rev" in f.message for f in findings)

    def test_percentile_inversion_is_an_error(self, tmp_path):
        payload = _bench_payload()
        payload["entries"][0]["cases"][0]["p50_wall_s"] = 0.5
        findings = check_bench_artifacts(self._write(tmp_path, payload))
        assert any("p50_wall_s" in f.message for f in findings)

    def test_boolean_masquerading_as_number_is_an_error(self, tmp_path):
        payload = _bench_payload()
        payload["entries"][0]["cases"][0]["n"] = True
        findings = check_bench_artifacts(self._write(tmp_path, payload))
        assert any("must be a number" in f.message for f in findings)

    def test_plane_divergence_is_an_error(self, tmp_path):
        payload = _bench_payload()
        payload["entries"][0]["cases"][0]["plane_equivalent"] = False
        findings = check_bench_artifacts(self._write(tmp_path, payload))
        assert any("plane_equivalent" in f.message for f in findings)
        assert all(f.severity is Severity.ERROR for f in findings)

    def test_float_n_is_an_error(self, tmp_path):
        payload = _bench_payload()
        payload["entries"][0]["cases"][0]["n"] = 300.0
        findings = check_bench_artifacts(self._write(tmp_path, payload))
        assert any("must be an integer" in f.message for f in findings)

    def test_float_repeats_is_an_error(self, tmp_path):
        payload = _bench_payload()
        payload["entries"][0]["cases"][0]["repeats"] = 3.5
        findings = check_bench_artifacts(self._write(tmp_path, payload))
        assert any("repeats must be an integer" in f.message for f in findings)

    def test_scale_tier_case_requires_kernel(self, tmp_path):
        payload = _bench_payload()
        payload["entries"][0]["cases"][0]["n"] = 1_000_000
        findings = check_bench_artifacts(self._write(tmp_path, payload))
        assert any("kernel backend" in f.message for f in findings)

    def test_scale_tier_case_with_kernel_is_clean(self, tmp_path):
        payload = _bench_payload()
        payload["entries"][0]["cases"][0]["n"] = 1_000_000
        payload["entries"][0]["cases"][0]["kernel"] = "numpy"
        assert check_bench_artifacts(self._write(tmp_path, payload)) == []

    def test_small_case_does_not_require_kernel(self, tmp_path):
        assert check_bench_artifacts(self._write(tmp_path, _bench_payload())) == []

    def test_committed_trajectory_is_clean(self):
        committed = Path(__file__).resolve().parent.parent / "BENCH_recode.json"
        assert committed.exists(), "BENCH_recode.json must be committed"
        assert check_bench_artifacts(committed) == []


class TestBenchCli:
    def test_runtime_flag_dispatches_bench_files(self, tmp_path, capsys):
        from repro.cli import main

        clean = tmp_path / "BENCH_ok.json"
        clean.write_text(json.dumps(_bench_payload()), encoding="utf-8")
        assert main(["lint", "--no-code", "--runtime", str(clean)]) == 0

        broken_payload = _bench_payload()
        broken_payload["entries"][0]["cases"][0]["plane_equivalent"] = False
        broken = tmp_path / "BENCH_bad.json"
        broken.write_text(json.dumps(broken_payload), encoding="utf-8")
        assert main(["lint", "--no-code", "--runtime", str(broken)]) == 1
        assert "ART012" in capsys.readouterr().out

    def test_select_art012_filters_runtime_findings(self, tmp_path, capsys):
        from repro.cli import main

        broken_payload = _bench_payload(schema="bogus@0")
        broken = tmp_path / "BENCH_bad.json"
        broken.write_text(json.dumps(broken_payload), encoding="utf-8")
        assert (
            main(
                ["lint", "--no-code", "--runtime", str(broken), "--select", "ART012"]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "ART012" in out
