"""Op registry module importable by spawned ``repro worker`` processes.

The socket transport ships tasks to standalone subprocesses whose op
registry starts empty except for the standard study ops.  Tests that
exercise socket execution register their ops here and pass
``worker_imports=("tests.socket_ops",)`` (plus a ``PYTHONPATH``
including the repository root) so the workers can resolve them.

Every op here is deliberately pure-by-params: no closures, no module
state, results fully determined by ``(params, deps, seed)`` — the same
discipline lint Layer 4 certifies for the real study ops.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.runtime.task import register_op


@register_op("sock.echo")
def _op_sock_echo(params, deps, seed):
    """Return the given value summed with dependency values."""
    return params["value"] + sum(deps.values())


@register_op("sock.pid")
def _op_sock_pid(params, deps, seed):
    """Return the executing worker's pid (proves remote execution)."""
    return os.getpid()


@register_op("sock.seeded")
def _op_sock_seeded(params, deps, seed):
    """Return the derived seed (proves seed propagation over the wire)."""
    return seed


@register_op("sock.fail")
def _op_sock_fail(params, deps, seed):
    """Always raise."""
    raise RuntimeError("socket boom")


@register_op("sock.pidwait")
def _op_sock_pidwait(params, deps, seed):
    """Announce our pid, then block until the release file appears.

    Fault-injection helper: the test SIGKILLs the announced pid mid-task
    and then creates the release file so the retry (on a surviving
    worker) completes promptly.
    """
    pid_path = Path(params["pidfile"])
    with pid_path.open("a") as handle:
        handle.write(f"{os.getpid()}\n")
    release = Path(params["release"])
    deadline = time.monotonic() + params.get("patience", 30.0)
    while not release.exists():
        if time.monotonic() > deadline:
            raise RuntimeError("release file never appeared")
        time.sleep(0.02)
    return params["value"]
