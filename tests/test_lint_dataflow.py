"""Tests for Layer 3 of repro.lint: the CFG/taint dataflow engine, the
REP101-REP104 boundary rules, inline suppression, prefix selection and the
finding baseline workflow."""

import ast
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import api, taint
from repro.lint.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.dataflow import analyze_function, build_cfg
from repro.lint.engine import (
    expand_selection,
    lint_source,
    parse_suppressions,
    registered_rules,
)
from repro.lint.redact import redact_value

REPO_SRC = Path(__file__).resolve().parent.parent / "src"

#: A fixture interpolating a raw cell into an exception (the regression
#: case from the acceptance criteria).
LEAKY_FIXTURE = (
    "def scan(dataset, attribute):\n"
    "    for cell in dataset.column(attribute):\n"
    "        if cell is None:\n"
    '            raise ValueError(f"bad cell {cell!r}")\n'
)


def taint_rules(source):
    """The REP1xx rule ids firing on a source snippet."""
    return sorted({d.rule for d in lint_source(source, select=["REP1"])})


class TestSinkKinds:
    def test_cell_in_exception_is_rep101(self):
        assert taint_rules(LEAKY_FIXTURE) == ["REP101"]

    def test_cell_in_print_is_rep102(self):
        source = (
            "def show(dataset):\n"
            "    for cell in dataset.column('age'):\n"
            "        print('cell', cell)\n"
        )
        assert taint_rules(source) == ["REP102"]

    def test_cell_in_logger_is_rep102(self):
        source = (
            "def show(dataset, logger):\n"
            "    cell = dataset.value(0, 'age')\n"
            "    logger.warning('bad cell %r', cell)\n"
        )
        assert taint_rules(source) == ["REP102"]

    def test_cell_in_file_write_is_rep103(self):
        source = (
            "def dump(dataset, handle):\n"
            "    for cell in dataset.column('age'):\n"
            "        handle.write(str(cell))\n"
        )
        assert taint_rules(source) == ["REP103"]

    def test_cell_in_json_dump_is_rep103(self):
        source = (
            "import json\n"
            "def sidecar(dataset, handle):\n"
            "    json.dump({'cells': dataset.column('age')}, handle)\n"
        )
        assert taint_rules(source) == ["REP103"]

    def test_assert_message_is_an_exception_sink(self):
        source = (
            "def check(dataset):\n"
            "    cell = dataset.value(0, 'age')\n"
            "    assert cell is not None, f'missing {cell}'\n"
        )
        assert taint_rules(source) == ["REP101"]


class TestDataflowCornerCases:
    def test_tuple_unpacking_is_arity_precise(self):
        # The literal RHS lets the analysis keep `count` clean while
        # `cell` carries the taint.
        source = (
            "def f(dataset):\n"
            "    cell, count = dataset.value(0, 'age'), 0\n"
            "    print(count)\n"
            "    raise ValueError(str(cell))\n"
        )
        assert taint_rules(source) == ["REP101"]

    def test_tuple_unpacking_from_opaque_value_taints_all(self):
        source = (
            "def f(dataset):\n"
            "    pair = dataset.quasi_identifier_tuple(0)\n"
            "    age, zip_code = pair\n"
            "    print(zip_code)\n"
        )
        assert taint_rules(source) == ["REP102"]

    def test_augmented_assignment_accumulates_taint(self):
        source = (
            "def f(dataset):\n"
            "    message = 'cells: '\n"
            "    message += str(dataset.column('age'))\n"
            "    raise ValueError(message)\n"
        )
        assert taint_rules(source) == ["REP101"]

    def test_walrus_binding_is_tracked(self):
        source = (
            "def f(dataset):\n"
            "    if (cell := dataset.value(0, 'age')) is not None:\n"
            "        print(cell)\n"
        )
        assert taint_rules(source) == ["REP102"]

    def test_walrus_escapes_comprehension_scope(self):
        # PEP 572: the walrus target outlives the comprehension even
        # though the generator target does not.
        source = (
            "def f(dataset):\n"
            "    texts = [str(last := cell) for cell in dataset.column('a')]\n"
            "    print(last)\n"
        )
        assert taint_rules(source) == ["REP102"]

    def test_comprehension_target_does_not_leak_out(self):
        source = (
            "def f(dataset, items):\n"
            "    cell = dataset.value(0, 'age')\n"
            "    clean = [cell for cell in items]\n"
            "    print(clean)\n"
            "    raise ValueError(str(cell))\n"
        )
        # The comprehension rebinds `cell` only inside its own scope: the
        # outer tainted binding still reaches the raise, the clean list
        # built from `items` does not fire REP102.
        assert taint_rules(source) == ["REP101"]

    def test_reassignment_kills_then_retaints(self):
        source = (
            "def f(dataset):\n"
            "    cell = dataset.value(0, 'age')\n"
            "    cell = 0\n"
            "    print(cell)\n"
            "    cell = dataset.value(1, 'age')\n"
            "    raise ValueError(str(cell))\n"
        )
        assert taint_rules(source) == ["REP101"]

    def test_enumerate_index_stays_clean(self):
        source = (
            "def f(dataset):\n"
            "    for row_index, row in enumerate(dataset):\n"
            "        if not row:\n"
            "            raise ValueError(f'row {row_index} is empty')\n"
        )
        assert taint_rules(source) == []

    def test_zip_binds_elementwise(self):
        source = (
            "def f(dataset, kinds):\n"
            "    for cell, kind in zip(dataset.column('age'), kinds):\n"
            "        print(kind)\n"
            "        raise ValueError(str(cell))\n"
        )
        assert taint_rules(source) == ["REP101"]

    def test_taint_joins_across_branches(self):
        source = (
            "def f(dataset, flag):\n"
            "    value = 'none'\n"
            "    if flag:\n"
            "        value = dataset.value(0, 'age')\n"
            "    raise ValueError(str(value))\n"
        )
        assert taint_rules(source) == ["REP101"]


class TestSanitizers:
    def test_generalize_kills_taint(self):
        source = (
            "def f(dataset, hierarchy):\n"
            "    cell = dataset.value(0, 'age')\n"
            "    token = hierarchy.generalize(cell, 1)\n"
            "    raise ValueError(f'cannot release {token}')\n"
        )
        assert taint_rules(source) == []

    def test_redact_value_kills_taint(self):
        source = (
            "from repro.lint.redact import redact_value\n"
            "def f(dataset):\n"
            "    cell = dataset.value(0, 'age')\n"
            "    raise ValueError(f'bad {redact_value(cell)}')\n"
        )
        assert taint_rules(source) == []

    def test_recode_path_is_clean(self):
        # The sanctioned release pipeline: recode, then write the result.
        source = (
            "def release_csv(dataset, hierarchies, node, handle):\n"
            "    released = recode(dataset, hierarchies, node)\n"
            "    for row in released.rows:\n"
            "        handle.write(str(row))\n"
        )
        assert taint_rules(source) == []

    def test_released_table_reads_are_not_sources(self):
        source = (
            "def audit(release):\n"
            "    print(release.column('age'))\n"
        )
        assert taint_rules(source) == []


class TestCallSummaries:
    def test_taint_through_return_is_rep104(self):
        source = (
            "def first_cell(dataset):\n"
            "    return dataset.value(0, 'age')\n"
            "\n"
            "def report(dataset):\n"
            "    cell = first_cell(dataset)\n"
            "    raise ValueError(f'bad {cell}')\n"
        )
        findings = lint_source(source, select=["REP1"])
        assert [d.rule for d in findings] == ["REP104"]
        assert "report" in findings[0].message

    def test_tainted_argument_seeds_callee(self):
        source = (
            "def check(cell):\n"
            "    if cell is None:\n"
            "        raise ValueError(f'bad cell {cell!r}')\n"
            "\n"
            "def scan(dataset):\n"
            "    for cell in dataset.column('age'):\n"
            "        check(cell)\n"
        )
        findings = lint_source(source, select=["REP1"])
        assert [d.rule for d in findings] == ["REP101"]
        assert "caller(s): scan" in findings[0].message

    def test_sanitizer_callee_body_is_still_analyzed(self):
        # map_value() sanitizes its return, but a raw argument leaking
        # from inside its own body is still a violation.
        source = (
            "class Cut:\n"
            "    def map_value(self, value):\n"
            "        raise ValueError(f'unmapped {value!r}')\n"
            "\n"
            "def apply(dataset, cut):\n"
            "    return [cut.map_value(v) for v in dataset.column('a')]\n"
        )
        assert taint_rules(source) == ["REP101"]

    def test_pass_through_helper_is_not_rep104(self):
        # The helper only forwards its argument; the caller's own source
        # taint classifies by sink kind, not as via-return.
        source = (
            "def fmt(value):\n"
            "    return str(value)\n"
            "\n"
            "def dump(dataset, handle):\n"
            "    handle.write(fmt(dataset.column('a')))\n"
        )
        assert taint_rules(source) == ["REP103"]


class TestFixedTree:
    def test_src_tree_is_clean_under_rep1(self):
        assert api.lint_paths([REPO_SRC], select=["REP1"]) == []

    def test_rep1_rules_are_registered(self):
        ids = set(registered_rules())
        assert {"REP101", "REP102", "REP103", "REP104"} <= ids

    def test_module_report_is_deterministic(self):
        tree = ast.parse(LEAKY_FIXTURE)
        first = taint.analyze_module_taint(tree).findings
        second = taint.analyze_module_taint(tree).findings
        assert [(f.rule, f.message) for f in first] == [
            (f.rule, f.message) for f in second
        ]


class TestRedactValue:
    def test_output_contains_no_raw_content(self):
        secret = "flu-diagnosis-47906"
        redacted = redact_value(secret)
        assert secret not in redacted
        assert "47906" not in redacted

    def test_output_is_stable_and_correlatable(self):
        assert redact_value("x") == redact_value("x")
        assert redact_value("x") != redact_value("y")

    def test_label_and_type_survive(self):
        redacted = redact_value(29, label="cell")
        assert redacted.startswith("<cell type=int len=2 ")


class TestSelection:
    def test_prefix_expands_to_family(self):
        assert expand_selection(["REP1"]) == [
            "REP101",
            "REP102",
            "REP103",
            "REP104",
        ]

    def test_exact_id_still_selects_one(self):
        assert expand_selection(["REP101"]) == ["REP101"]

    def test_unmatched_selector_raises(self):
        with pytest.raises(ValueError, match="REP9"):
            expand_selection(["REP9"])

    def test_select_rep101_only(self):
        source = LEAKY_FIXTURE + (
            "def show(dataset):\n"
            "    print(dataset.column('age'))\n"
        )
        findings = lint_source(source, select=["REP101"])
        assert sorted({d.rule for d in findings}) == ["REP101"]


class TestInlineSuppression:
    def test_disable_comment_suppresses_on_its_line(self):
        source = (
            "def scan(dataset):\n"
            "    for cell in dataset.column('a'):\n"
            "        raise ValueError(str(cell))  # lint: disable=REP101\n"
        )
        assert taint_rules(source) == []

    def test_disable_is_line_scoped(self):
        source = (
            "def scan(dataset):  # lint: disable=REP101\n"
            "    for cell in dataset.column('a'):\n"
            "        raise ValueError(str(cell))\n"
        )
        assert taint_rules(source) == ["REP101"]

    def test_disable_only_names_that_rule(self):
        source = (
            "def scan(dataset):\n"
            "    for cell in dataset.column('a'):\n"
            "        print(cell)  # lint: disable=REP101\n"
        )
        assert taint_rules(source) == ["REP102"]

    def test_multiple_ids_in_one_comment(self):
        suppressions, bad = parse_suppressions(
            "x = 1  # lint: disable=REP101, REP102\n"
        )
        assert suppressions == {1: {"REP101", "REP102"}}
        assert bad == []

    def test_unknown_id_is_a_rep006_finding(self):
        source = "x = 1  # lint: disable=REP999\n"
        findings = lint_source(source, select=["REP1"])
        assert [d.rule for d in findings] == ["REP006"]
        assert "REP999" in findings[0].message

    def test_suppression_applies_to_layer2_rules_too(self):
        source = "def f(x, acc=[]):  # lint: disable=REP003\n    return acc\n"
        assert lint_source(source) == []


class TestBaseline:
    def diagnostics(self, source):
        return lint_source(source, path="pkg/mod.py", select=["REP1"])

    def test_round_trip_suppresses_known_findings(self, tmp_path):
        findings = self.diagnostics(LEAKY_FIXTURE)
        assert findings
        path = tmp_path / "baseline.json"
        count = write_baseline(findings, path)
        assert count == len(findings)
        fresh, matched = apply_baseline(findings, load_baseline(path))
        assert fresh == []
        assert matched == len(findings)

    def test_counts_are_consumed_one_for_one(self, tmp_path):
        findings = self.diagnostics(LEAKY_FIXTURE)
        path = tmp_path / "baseline.json"
        write_baseline(findings, path)
        doubled = findings + findings
        fresh, matched = apply_baseline(doubled, load_baseline(path))
        assert matched == len(findings)
        assert len(fresh) == len(findings)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(BaselineError, match="does not exist"):
            load_baseline(tmp_path / "absent.json")

    def test_malformed_file_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{\"version\": 99}", encoding="utf-8")
        with pytest.raises(BaselineError, match="unsupported"):
            load_baseline(path)


class TestCli:
    def write_fixture(self, tmp_path):
        fixture = tmp_path / "leak.py"
        fixture.write_text(LEAKY_FIXTURE, encoding="utf-8")
        return fixture

    def test_regression_fixture_flagged_in_text(self, tmp_path, capsys):
        fixture = self.write_fixture(tmp_path)
        assert main(["lint", str(fixture), "--select", "REP1"]) == 1
        out = capsys.readouterr().out
        assert "REP101" in out
        assert "exception" in out

    def test_regression_fixture_flagged_in_json(self, tmp_path, capsys):
        fixture = self.write_fixture(tmp_path)
        code = main(["lint", str(fixture), "--select", "REP1", "--format", "json"])
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        rules = [d["rule"] for d in document["diagnostics"]]
        assert rules == ["REP101"]
        assert document["summary"]["error"] == 1

    def test_suppressed_fixture_is_clean(self, tmp_path, capsys):
        fixture = tmp_path / "waived.py"
        fixture.write_text(
            LEAKY_FIXTURE.replace(
                'raise ValueError(f"bad cell {cell!r}")',
                'raise ValueError(f"bad cell {cell!r}")  # lint: disable=REP101',
            ),
            encoding="utf-8",
        )
        assert main(["lint", str(fixture), "--select", "REP1"]) == 0

    def test_bad_suppression_id_exits_2_under_strict(self, tmp_path, capsys):
        fixture = tmp_path / "typo.py"
        fixture.write_text("x = 1  # lint: disable=REP9999\n", encoding="utf-8")
        assert main(["lint", str(fixture)]) == 0
        assert main(["lint", str(fixture), "--strict"]) == 2
        assert "REP006" in capsys.readouterr().out

    def test_baseline_write_then_compare(self, tmp_path, capsys):
        fixture = self.write_fixture(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "lint",
                    str(fixture),
                    "--select",
                    "REP1",
                    "--baseline",
                    str(baseline),
                    "--update-baseline",
                ]
            )
            == 0
        )
        assert "wrote 1 finding(s)" in capsys.readouterr().out
        code = main(
            ["lint", str(fixture), "--select", "REP1", "--baseline", str(baseline)]
        )
        assert code == 0
        assert "1 finding(s) matched" in capsys.readouterr().out

    def test_new_finding_not_in_baseline_still_fails(self, tmp_path, capsys):
        fixture = self.write_fixture(tmp_path)
        baseline = tmp_path / "baseline.json"
        main(
            [
                "lint",
                str(fixture),
                "--select",
                "REP1",
                "--baseline",
                str(baseline),
                "--update-baseline",
            ]
        )
        fixture.write_text(
            LEAKY_FIXTURE
            + "\ndef show(dataset):\n    print(dataset.column('age'))\n",
            encoding="utf-8",
        )
        code = main(
            ["lint", str(fixture), "--select", "REP1", "--baseline", str(baseline)]
        )
        assert code == 1
        assert "REP102" in capsys.readouterr().out

    def test_update_baseline_requires_baseline(self, tmp_path, capsys):
        fixture = self.write_fixture(tmp_path)
        assert main(["lint", str(fixture), "--update-baseline"]) == 2

    def test_missing_baseline_file_exits_2(self, tmp_path, capsys):
        fixture = self.write_fixture(tmp_path)
        code = main(
            [
                "lint",
                str(fixture),
                "--select",
                "REP1",
                "--baseline",
                str(tmp_path / "absent.json"),
            ]
        )
        assert code == 2


class TestCfgMachinery:
    def test_while_loop_reaches_fixpoint(self):
        source = (
            "def f(dataset):\n"
            "    value = 'seed'\n"
            "    while True:\n"
            "        print(value)\n"
            "        value = dataset.value(0, 'age')\n"
        )
        # The taint flows around the loop back edge into the print.
        assert taint_rules(source) == ["REP102"]

    def test_try_body_taint_reaches_handler(self):
        source = (
            "def f(dataset):\n"
            "    cell = None\n"
            "    try:\n"
            "        cell = dataset.value(0, 'age')\n"
            "        process(cell)\n"
            "    except KeyError:\n"
            "        print(cell)\n"
        )
        assert "REP102" in taint_rules(source)

    def test_cfg_blocks_cover_all_statements(self):
        tree = ast.parse(
            "x = 1\n"
            "if x:\n"
            "    y = 2\n"
            "else:\n"
            "    y = 3\n"
            "for i in range(y):\n"
            "    break\n"
        )
        cfg = build_cfg(tree.body)
        statements = [s for b in cfg.blocks.values() for s in b.statements]
        assert len(statements) >= 5

    def test_analyze_function_terminates_on_self_loop(self):
        tree = ast.parse(
            "while True:\n"
            "    x = x + 1\n"
        )
        result = analyze_function(tree.body, taint.PrivacyTaintPolicy({}, {}))
        assert result.sink_hits == []
