"""Golden fixture for the observability plane's export schemas.

Runs a tiny serial study under an injected :class:`~repro.obs.FakeClock`
(every clock read advances a fixed step, so spans and exec-time histograms
are bit-reproducible) and pins the exported Chrome-trace payload and
metrics snapshot in ``tests/golden/obs_plane.json``.  Any change to span
names, categories, parentage, metric keys, or either schema shows up as a
fixture diff instead of silently breaking downstream trace consumers.

Timing-derived values that survive into the fixture (ts/dur microseconds,
histogram sums) are deterministic *because* of the fake clock; wall-clock
fields that are not clock-injected (``wall_seconds`` etc.) live in the run
manifest, which is deliberately not part of this fixture.

Regenerate after an intentional schema change::

    PYTHONPATH=src python -m tests.goldens_obs
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs import FakeClock, Observation
from repro.obs.export import chrome_trace_payload
from repro.runtime.study import AlgorithmSpec, DatasetSpec, StudySpec, run_study

GOLDEN_PATH = Path(__file__).parent / "golden" / "obs_plane.json"

#: The fixture's workload: small, serial, cache-less, and fully covered by
#: the fake clock so every exported number is reproducible.
FIXTURE_SPEC = StudySpec(
    dataset=DatasetSpec.of("adult", rows=24, seed=7),
    algorithms=(
        AlgorithmSpec.of("datafly", k=2),
        AlgorithmSpec.of("mondrian", k=2),
    ),
    scalar_measures=("k_achieved", "lm"),
    vector_properties=("equivalence-class-size",),
    compare=True,
    seed=7,
)


def compute_fixture() -> dict[str, Any]:
    """The golden payload: trace + metrics of the fixture study."""
    observation = Observation(clock=FakeClock())
    run_study(FIXTURE_SPEC, jobs=1, obs=observation)
    payload = {
        "trace": chrome_trace_payload(observation.trace.spans),
        "metrics": observation.metrics.snapshot(),
    }
    # Round-trip through JSON so the comparison sees exactly what a reader
    # of the pinned file sees (tuples become lists, keys become strings).
    return json.loads(json.dumps(payload, sort_keys=True))


def load_fixture() -> dict[str, Any]:
    """The pinned payload from ``tests/golden/obs_plane.json``."""
    with GOLDEN_PATH.open("r", encoding="utf-8") as handle:
        return json.load(handle)


def regenerate() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    payload = compute_fixture()
    with GOLDEN_PATH.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    events = len(payload["trace"]["traceEvents"])
    counters = len(payload["metrics"]["counters"])
    print(f"wrote {GOLDEN_PATH} ({events} trace event(s), {counters} counter(s))")


if __name__ == "__main__":
    regenerate()
