"""API surface conformance: exports resolve, and every public item is
documented (the documentation deliverable, enforced)."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.anonymize",
    "repro.anonymize.algorithms",
    "repro.attack",
    "repro.core",
    "repro.core.indices",
    "repro.datasets",
    "repro.hierarchy",
    "repro.kernels",
    "repro.lint",
    "repro.moo",
    "repro.privacy",
    "repro.runtime",
    "repro.serve",
    "repro.utility",
]


def iter_modules():
    seen = set()
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        for info in pkgutil.iter_modules(package.__path__):
            full = f"{package_name}.{info.name}"
            if full not in seen:
                seen.add(full)
                yield importlib.import_module(full)


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", [])
    missing = [name for name in exported if not hasattr(package, name)]
    assert not missing, f"{package_name} exports unresolvable names {missing}"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_no_duplicate_exports(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", [])
    assert len(exported) == len(set(exported))


def test_every_module_has_docstring():
    undocumented = [
        module.__name__ for module in iter_modules() if not module.__doc__
    ]
    assert not undocumented


def test_every_public_callable_documented():
    undocumented = []
    for module in iter_modules():
        for name, item in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isfunction(item) or inspect.isclass(item)):
                continue
            if getattr(item, "__module__", None) != module.__name__:
                continue  # re-export; documented at its home
            if not inspect.getdoc(item):
                undocumented.append(f"{module.__name__}.{name}")
    assert not undocumented, f"undocumented public items: {undocumented}"


def test_every_public_method_documented():
    undocumented = []
    for module in iter_modules():
        for class_name, item in vars(module).items():
            if class_name.startswith("_") or not inspect.isclass(item):
                continue
            if getattr(item, "__module__", None) != module.__name__:
                continue
            for method_name, method in vars(item).items():
                if method_name.startswith("_"):
                    continue
                if not (
                    inspect.isfunction(method)
                    or isinstance(method, (property, staticmethod, classmethod))
                ):
                    continue
                target = method.fget if isinstance(method, property) else method
                if isinstance(method, (staticmethod, classmethod)):
                    target = method.__func__
                if target is not None and not inspect.getdoc(target):
                    undocumented.append(
                        f"{module.__name__}.{class_name}.{method_name}"
                    )
    assert not undocumented, f"undocumented methods: {undocumented}"


def test_version_exposed():
    assert repro.__version__ == "1.0.0"
