"""The paper's Tables 1-3 reproduced exactly (experiment ids T1, T2, T3)."""

import pytest

from repro.datasets import paper_tables
from repro.hierarchy import Interval


class TestTable1:
    def test_shape(self, table1):
        assert len(table1) == 10
        assert table1.schema.names == ("Zip Code", "Age", "Marital Status")

    def test_exact_rows(self, table1):
        assert table1[0] == ("13053", 28, "CF-Spouse")
        assert table1[4] == ("13253", 50, "Divorced")
        assert table1[9] == ("13250", 47, "Separated")

    def test_sensitive_attribute_constant(self):
        assert paper_tables.SENSITIVE_ATTRIBUTE == "Marital Status"


class TestTable2:
    def test_t3a_is_3_anonymous(self, t3a):
        assert t3a.k() == 3

    def test_t3b_is_3_anonymous(self, t3b):
        assert t3b.k() == 3

    def test_t3a_released_cells(self, t3a):
        # First row of the left table of Table 2.
        assert t3a.released[0] == ("1305*", Interval(25, 35), "Married")
        # Tuple 5 (row index 4).
        assert t3a.released[4] == ("1325*", Interval(45, 55), "Not Married")

    def test_t3b_released_cells(self, t3b):
        assert t3b.released[0] == ("130**", Interval(15, 35), "Married")
        assert t3b.released[4] == ("132**", Interval(35, 55), "Not Married")

    def test_t3a_class_structure(self, t3a):
        classes = t3a.equivalence_classes
        assert sorted(map(sorted, classes)) == [
            [0, 3, 7],
            [1, 2, 8],
            [4, 5, 6, 9],
        ]

    def test_t3b_class_structure(self, t3b):
        classes = t3b.equivalence_classes
        assert sorted(map(sorted, classes)) == [
            [0, 3, 7],
            [1, 2, 4, 5, 6, 8, 9],
        ]

    def test_class_size_vectors_match_paper(self, t3a, t3b):
        assert tuple(t3a.equivalence_classes.sizes()) == paper_tables.CLASS_SIZE_T3A
        assert tuple(t3b.equivalence_classes.sizes()) == paper_tables.CLASS_SIZE_T3B


class TestTable3:
    def test_t4_is_4_anonymous(self, t4):
        assert t4.k() == 4

    def test_t4_released_cells(self, t4):
        assert t4.released[0] == ("13***", Interval(20, 40), "*")
        assert t4.released[1] == ("13***", Interval(40, 60), "*")

    def test_t4_class_structure(self, t4):
        classes = t4.equivalence_classes
        assert sorted(map(sorted, classes)) == [
            [0, 2, 3, 7],
            [1, 4, 5, 6, 8, 9],
        ]

    def test_class_size_vector_matches_paper(self, t4):
        assert tuple(t4.equivalence_classes.sizes()) == paper_tables.CLASS_SIZE_T4


class TestSensitiveCounts:
    def test_t3a_sensitive_count_vector(self, t3a, table1):
        counts = t3a.equivalence_classes.sensitive_value_counts(
            table1.column("Marital Status")
        )
        assert tuple(counts) == paper_tables.SENSITIVE_COUNT_T3A


class TestNoSuppression:
    @pytest.mark.parametrize("name", ["T3a", "T3b", "T4"])
    def test_paper_generalizations_suppress_nothing(self, name):
        anonymization = paper_tables.all_generalizations()[name]
        assert not anonymization.suppressed
