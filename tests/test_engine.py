"""Tests for the recoding engine and Anonymization result."""

import pytest

from repro.anonymize.engine import (
    Anonymization,
    AnonymizationError,
    recode,
    recode_node,
    released_with_local_cells,
)
from repro.datasets import paper_tables
from repro.hierarchy import SUPPRESSED


@pytest.fixture
def hierarchies(table1):
    return {
        "Zip Code": paper_tables.zip_hierarchy(table1),
        "Age": paper_tables.age_hierarchy(10, 5),
        "Marital Status": paper_tables.marital_hierarchy(),
    }


class TestRecode:
    def test_identity_recoding(self, table1, hierarchies):
        released = recode(
            table1, hierarchies, {"Zip Code": 0, "Age": 0, "Marital Status": 0}
        )
        assert released.released.rows == table1.rows
        assert released.k() == 1

    def test_levels_recorded(self, table1, hierarchies):
        anonymization = recode(
            table1, hierarchies, {"Zip Code": 1, "Age": 1, "Marital Status": 1}
        )
        assert anonymization.levels == {
            "Zip Code": 1,
            "Age": 1,
            "Marital Status": 1,
        }

    def test_default_name_describes_levels(self, table1, hierarchies):
        anonymization = recode(
            table1, hierarchies, {"Zip Code": 1, "Age": 0, "Marital Status": 0}
        )
        assert "Zip Code=1" in anonymization.name

    def test_non_qi_columns_untouched(self, table1, hierarchies):
        # All columns of table1 are QIs; drop Age to insensitive and check.
        from repro.datasets.schema import AttributeRole

        relabeled = table1.with_roles({"Age": AttributeRole.INSENSITIVE})
        anonymization = recode(
            relabeled,
            {k: v for k, v in hierarchies.items() if k != "Age"},
            {"Zip Code": 1, "Marital Status": 1},
        )
        assert anonymization.released.column("Age") == table1.column("Age")

    def test_missing_hierarchy_rejected(self, table1, hierarchies):
        partial = {k: v for k, v in hierarchies.items() if k != "Age"}
        with pytest.raises(AnonymizationError, match="missing hierarchies"):
            recode(table1, partial, {"Zip Code": 1, "Age": 1, "Marital Status": 1})

    def test_missing_level_rejected(self, table1, hierarchies):
        with pytest.raises(AnonymizationError, match="missing levels"):
            recode(table1, hierarchies, {"Zip Code": 1})

    def test_invalid_level_rejected(self, table1, hierarchies):
        with pytest.raises(Exception):
            recode(
                table1, hierarchies, {"Zip Code": 99, "Age": 1, "Marital Status": 1}
            )

    def test_no_qi_dataset_rejected(self, table1, hierarchies):
        from repro.datasets.schema import AttributeRole

        roles = {name: AttributeRole.INSENSITIVE for name in table1.schema.names}
        with pytest.raises(AnonymizationError, match="no quasi-identifier"):
            recode(table1.with_roles(roles), hierarchies, {})


class TestSuppression:
    def test_suppressed_rows_fully_generalized(self, table1, hierarchies):
        anonymization = recode(
            table1,
            hierarchies,
            {"Zip Code": 1, "Age": 1, "Marital Status": 1},
            suppress=[0, 5],
        )
        assert anonymization.released[0] == (SUPPRESSED, SUPPRESSED, SUPPRESSED)
        assert anonymization.released[5] == (SUPPRESSED, SUPPRESSED, SUPPRESSED)

    def test_suppressed_rows_retained(self, table1, hierarchies):
        anonymization = recode(
            table1,
            hierarchies,
            {"Zip Code": 1, "Age": 1, "Marital Status": 1},
            suppress=[0],
        )
        # Paper Section 3: the data set keeps its size.
        assert len(anonymization) == len(table1)

    def test_suppressed_rows_form_one_class(self, table1, hierarchies):
        anonymization = recode(
            table1,
            hierarchies,
            {"Zip Code": 0, "Age": 0, "Marital Status": 0},
            suppress=[0, 1, 2],
        )
        classes = anonymization.equivalence_classes
        assert classes.class_of(0) == classes.class_of(1) == classes.class_of(2)

    def test_suppression_fraction(self, table1, hierarchies):
        anonymization = recode(
            table1,
            hierarchies,
            {"Zip Code": 1, "Age": 1, "Marital Status": 1},
            suppress=[0, 5],
        )
        assert anonymization.suppression_fraction() == pytest.approx(0.2)

    def test_out_of_range_suppression_rejected(self, table1, hierarchies):
        with pytest.raises(AnonymizationError, match="out of range"):
            recode(
                table1,
                hierarchies,
                {"Zip Code": 1, "Age": 1, "Marital Status": 1},
                suppress=[99],
            )


class TestAnonymization:
    def test_row_count_mismatch_rejected(self, table1):
        with pytest.raises(AnonymizationError, match="rows"):
            Anonymization(table1, table1.head(5))

    def test_k_matches_paper(self, t3a, t3b, t4):
        assert t3a.k() == 3
        assert t3b.k() == 3
        assert t4.k() == 4

    def test_renamed_preserves_classes(self, t3a):
        _ = t3a.equivalence_classes
        clone = t3a.renamed("other")
        assert clone.name == "other"
        assert clone.equivalence_classes.sizes() == t3a.equivalence_classes.sizes()

    def test_repr_mentions_name(self, t3a):
        assert "T3a" in repr(t3a)


class TestRecodeNode:
    def test_node_in_qi_order(self, table1, hierarchies):
        by_node = recode_node(table1, hierarchies, (1, 1, 1))
        by_levels = recode(
            table1, hierarchies, {"Zip Code": 1, "Age": 1, "Marital Status": 1}
        )
        assert by_node.released.rows == by_levels.released.rows

    def test_wrong_arity_rejected(self, table1, hierarchies):
        with pytest.raises(AnonymizationError, match="levels"):
            recode_node(table1, hierarchies, (1, 1))


class TestLocalCells:
    def test_local_release(self, table1):
        qi_cells = [
            {"Zip Code": "1****", "Age": 50, "Marital Status": "*"}
            for _ in range(len(table1))
        ]
        anonymization = released_with_local_cells(table1, qi_cells)
        assert anonymization.k() == len(table1)
        assert anonymization.levels is None

    def test_missing_attribute_rejected(self, table1):
        qi_cells = [{"Zip Code": "1****"} for _ in range(len(table1))]
        with pytest.raises(AnonymizationError, match="missing"):
            released_with_local_cells(table1, qi_cells)

    def test_extra_attribute_rejected(self, table1):
        qi_cells = [
            {
                "Zip Code": "1****",
                "Age": 50,
                "Marital Status": "*",
                "bogus": 1,
            }
            for _ in range(len(table1))
        ]
        with pytest.raises(AnonymizationError, match="non-QI"):
            released_with_local_cells(table1, qi_cells)
