"""Tests for the k-sweep helper, GiniIndex and the ▶bias comparator."""

import pytest

from repro import Datafly, Mondrian
from repro.analysis import default_measures, format_sweep, gini_coefficient, k_sweep
from repro.core.comparators import LeastBiasedBetter, Relation
from repro.core.indices.unary import GiniIndex
from repro.core.vector import PropertyVector, PropertyVectorError


class TestGiniIndex:
    def test_uniform_zero(self):
        assert GiniIndex()(PropertyVector([4, 4, 4])) == pytest.approx(0.0)

    def test_matches_analysis_gini(self):
        values = [1.0, 5.0, 2.0, 9.0]
        assert GiniIndex()(PropertyVector(values)) == pytest.approx(
            gini_coefficient(values)
        )

    def test_orientation(self):
        # Lower Gini is better, so `prefers` picks the flatter vector.
        index = GiniIndex()
        flat = PropertyVector([3, 3, 3])
        skewed = PropertyVector([1, 1, 7])
        assert index.prefers(flat, skewed)


class TestLeastBiasedBetter:
    def test_floor_decides_first(self):
        high_floor = PropertyVector([4, 4, 40])    # biased but safe floor
        low_floor = PropertyVector([3, 20, 20])    # flatter, worse floor
        comparator = LeastBiasedBetter()
        assert comparator.relation(high_floor, low_floor) is Relation.BETTER

    def test_gini_breaks_floor_ties(self):
        flat = PropertyVector([3, 3, 3, 3])
        skewed = PropertyVector([3, 9, 9, 3])
        comparator = LeastBiasedBetter()
        assert comparator.relation(flat, skewed) is Relation.BETTER
        assert comparator.relation(skewed, flat) is Relation.WORSE

    def test_tolerance(self):
        a = PropertyVector([3, 3, 4])
        b = PropertyVector([3, 4, 3])
        assert LeastBiasedBetter(gini_tolerance=1.0).relation(
            a, b
        ) is Relation.EQUIVALENT

    def test_invalid_tolerance(self):
        with pytest.raises(PropertyVectorError):
            LeastBiasedBetter(gini_tolerance=-1)

    def test_paper_tables(self, t3a, t3b):
        from repro.core.properties import equivalence_class_size

        comparator = LeastBiasedBetter()
        s = equivalence_class_size(t3a)
        t = equivalence_class_size(t3b)
        # Equal floors (k=3); T3a's distribution is flatter (gini 0.07 vs
        # 0.14) so ▶bias prefers T3a — deliberately a different verdict
        # than ▶cov, which is exactly the comparator-choice point of E4.
        assert comparator.relation(s, t) is Relation.BETTER


class TestKSweep:
    def test_rows_and_measures(self, adult_small, adult_h):
        rows = k_sweep(
            lambda k: Mondrian(k), adult_small, adult_h, ks=[2, 5, 10]
        )
        assert [row["k"] for row in rows] == [2.0, 5.0, 10.0]
        for row in rows:
            assert set(row) == {"k"} | set(default_measures())
            assert row["k_achieved"] >= row["k"]

    def test_lm_monotone_in_k_for_mondrian(self, adult_small, adult_h):
        rows = k_sweep(
            lambda k: Mondrian(k), adult_small, adult_h, ks=[2, 10, 25]
        )
        lms = [row["lm"] for row in rows]
        assert lms[0] <= lms[1] <= lms[2]

    def test_custom_measures(self, adult_small, adult_h):
        rows = k_sweep(
            lambda k: Datafly(k),
            adult_small,
            adult_h,
            ks=[5],
            measures={"rows": lambda release, _h: float(len(release))},
        )
        assert rows[0] == {"k": 5.0, "rows": float(len(adult_small))}

    def test_empty_ks_rejected(self, adult_small, adult_h):
        with pytest.raises(ValueError):
            k_sweep(lambda k: Datafly(k), adult_small, adult_h, ks=[])

    def test_format(self, adult_small, adult_h):
        rows = k_sweep(lambda k: Mondrian(k), adult_small, adult_h, ks=[5])
        text = format_sweep(rows)
        assert "k_achieved" in text
        assert "class_gini" in text

    def test_format_empty_rejected(self):
        with pytest.raises(ValueError):
            format_sweep([])
