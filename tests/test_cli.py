"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.datasets import adult_schema, read_csv


class TestGenerate:
    def test_writes_csv(self, tmp_path, capsys):
        output = tmp_path / "data.csv"
        code = main(["generate", str(output), "--rows", "30", "--seed", "1"])
        assert code == 0
        restored = read_csv(output, adult_schema())
        assert len(restored) == 30
        assert "wrote 30 rows" in capsys.readouterr().out

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        main(["generate", str(a), "--rows", "20", "--seed", "9"])
        main(["generate", str(b), "--rows", "20", "--seed", "9"])
        assert a.read_text() == b.read_text()


class TestAnonymize:
    def test_mondrian_release(self, tmp_path, capsys):
        output = tmp_path / "release.csv"
        code = main([
            "anonymize", str(output),
            "--algorithm", "mondrian", "--k", "5", "--rows", "60",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "mondrian" in out
        assert output.exists()

    def test_unknown_algorithm_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["anonymize", str(tmp_path / "x.csv"), "--algorithm", "bogus"])


class TestCompare:
    def test_report_printed(self, capsys):
        code = main([
            "compare", "--algorithms", "datafly", "mondrian",
            "--k", "5", "--rows", "80",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Anonymization comparison report" in out
        assert "equivalence-class-size" in out


class TestAudit:
    def test_audit_printed(self, capsys):
        code = main(["audit", "--algorithm", "datafly", "--k", "5",
                     "--rows", "80"])
        assert code == 0
        out = capsys.readouterr().out
        assert "gini=" in out


class TestPaper:
    def test_paper_tables_printed(self, capsys):
        code = main(["paper"])
        assert code == 0
        out = capsys.readouterr().out
        assert "13053" in out
        assert "T3a (k=3)" in out
        assert "T4 (k=4)" in out


class TestParser:
    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestSweep:
    def test_sweep_printed(self, capsys):
        code = main(["sweep", "--algorithm", "mondrian", "--ks", "2", "5",
                     "--rows", "80"])
        assert code == 0
        out = capsys.readouterr().out
        assert "k_achieved" in out
        assert "class_gini" in out


class TestAttack:
    def test_attack_printed(self, capsys):
        code = main(["attack", "--algorithm", "mondrian", "--k", "5",
                     "--rows", "60", "--trials", "100"])
        assert code == 0
        out = capsys.readouterr().out
        assert "prosecutor" in out
        assert "Monte Carlo" in out
