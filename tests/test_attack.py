"""Tests for the attack simulation module."""

import pytest

from repro.attack import (
    AttackError,
    background_knowledge_risks,
    cell_matches,
    homogeneity_risks,
    homogeneous_classes,
    linkage_report,
    match_set,
    prosecutor_risks,
    simulate_linkage,
)
from repro.core.properties import breach_probability
from repro.datasets import paper_tables
from repro.hierarchy import SUPPRESSED, Interval, Span

SENSITIVE = paper_tables.SENSITIVE_ATTRIBUTE

#: Hierarchy map for resolving taxonomy tokens ("Married") during linkage;
#: zip masks and age intervals need no hierarchy.
PAPER_H = {SENSITIVE: paper_tables.marital_hierarchy()}


class TestCellMatches:
    def test_exact(self):
        assert cell_matches("13053", "13053")
        assert not cell_matches("13053", "13052")

    def test_suppressed_matches_anything(self):
        assert cell_matches(SUPPRESSED, "whatever")
        assert cell_matches(SUPPRESSED, 42)

    def test_interval(self):
        assert cell_matches(Interval(25, 35), 28)
        assert not cell_matches(Interval(25, 35), 25)
        assert not cell_matches(Interval(25, 35), 40)

    def test_span(self):
        assert cell_matches(Span(10, 20), 10)
        assert not cell_matches(Span(10, 20), 21)

    def test_mask(self):
        assert cell_matches("1305*", "13053")
        assert not cell_matches("1305*", "13253")
        assert not cell_matches("1305*", "130")
        assert cell_matches("13***", "13250")

    def test_frozenset(self):
        assert cell_matches(frozenset({"a", "b"}), "a")
        assert not cell_matches(frozenset({"a", "b"}), "c")

    def test_internal_token_no_false_match(self):
        # A taxonomy token like "Married" is not a mask and not equal to
        # any raw value; match fails (conservative — the adversary uses
        # the taxonomy separately).
        assert not cell_matches("Married", "CF-Spouse")


class TestMatchSet:
    def test_t3a_match_sets_are_equivalence_classes(self, t3a, table1):
        # The adversary knowing tuple 1's QIs matches the whole class.
        record = [table1[0][0], table1[0][1], table1[0][2]]
        assert match_set(t3a, record, PAPER_H) == [0, 3, 7]

    def test_wrong_arity_rejected(self, t3a):
        with pytest.raises(AttackError, match="expected 3"):
            match_set(t3a, ["13053"])


class TestProsecutorRisks:
    def test_matches_breach_probability_on_paper_tables(self, t3a, t3b, t4):
        # Structural 1/|EC| equals attack-derived risk when the release
        # keeps hierarchy-consistent cells.
        for release in (t3a, t3b, t4):
            structural = breach_probability(release)
            attacked = prosecutor_risks(release, hierarchies=PAPER_H)
            assert attacked.as_tuple() == pytest.approx(structural.as_tuple())

    def test_orientation(self, t3a):
        assert not prosecutor_risks(t3a, hierarchies=PAPER_H).higher_is_better

    def test_mondrian_release(self, adult_small, adult_h):
        from repro.anonymize.algorithms import Mondrian

        release = Mondrian(5).anonymize(adult_small, adult_h)
        risks = prosecutor_risks(release)
        # Match sets can only be supersets of equivalence classes.
        structural = breach_probability(release)
        assert all(
            attacked <= struct + 1e-12
            for attacked, struct in zip(risks, structural)
        )

    def test_external_table_must_align(self, t3a, table1):
        with pytest.raises(AttackError, match="align"):
            prosecutor_risks(t3a, table1.head(5))


class TestLinkageReport:
    def test_t3a_report(self, t3a):
        report = linkage_report(t3a, hierarchies=PAPER_H)
        assert report.prosecutor_max == pytest.approx(1 / 3)
        assert report.journalist_risk == report.prosecutor_max
        assert report.marketer_risk == pytest.approx(
            (6 * (1 / 3) + 4 * (1 / 4)) / 10
        )
        assert report.records_at_max_risk == 6
        assert "prosecutor" in report.describe()

    def test_t3b_lower_marketer_risk(self, t3a, t3b):
        # T3b's larger classes push the bulk re-identification rate down.
        assert (
            linkage_report(t3b, hierarchies=PAPER_H).marketer_risk
            < linkage_report(t3a, hierarchies=PAPER_H).marketer_risk
        )


class TestSimulation:
    def test_empirical_rate_close_to_marketer_risk(self, t3a):
        rate = simulate_linkage(t3a, trials=4000, seed=1, hierarchies=PAPER_H)
        expected = linkage_report(t3a, hierarchies=PAPER_H).marketer_risk
        assert rate == pytest.approx(expected, abs=0.03)

    def test_deterministic_per_seed(self, t3a):
        assert simulate_linkage(
            t3a, 200, seed=5, hierarchies=PAPER_H
        ) == simulate_linkage(t3a, 200, seed=5, hierarchies=PAPER_H)

    def test_invalid_trials(self, t3a):
        with pytest.raises(AttackError):
            simulate_linkage(t3a, trials=0)


class TestHomogeneity:
    def test_t4_fully_suppressed_sensitive_varies(self, t4, table1):
        risks = homogeneity_risks(t4, SENSITIVE)
        # Class {1,3,4,8}: CF-Spouse x2, Never Married, Spouse Present.
        assert risks[0] == pytest.approx(2 / 4)
        assert risks[2] == pytest.approx(1 / 4)

    def test_homogeneous_classes_detected(self, table1):
        from repro.anonymize.engine import recode

        hierarchies = {
            "Zip Code": paper_tables.zip_hierarchy(),
            "Age": paper_tables.age_hierarchy(10, 5),
            SENSITIVE: paper_tables.marital_hierarchy(),
        }
        raw = recode(
            table1, hierarchies, {"Zip Code": 0, "Age": 0, SENSITIVE: 0}
        )
        # Every singleton class is trivially homogeneous.
        assert len(homogeneous_classes(raw, SENSITIVE)) == 10

    def test_no_homogeneous_class_in_t3a(self, t3a):
        assert homogeneous_classes(t3a, SENSITIVE) == []


class TestBackgroundKnowledge:
    def test_zero_knowledge_equals_homogeneity(self, t3a):
        assert background_knowledge_risks(
            t3a, 0, SENSITIVE
        ).as_tuple() == pytest.approx(
            homogeneity_risks(t3a, SENSITIVE).as_tuple()
        )

    def test_knowledge_increases_risk(self, t3a):
        base = background_knowledge_risks(t3a, 0, SENSITIVE)
        informed = background_knowledge_risks(t3a, 1, SENSITIVE)
        assert all(b <= i + 1e-12 for b, i in zip(base, informed))
        assert any(i > b for b, i in zip(base, informed))

    def test_full_knowledge_discloses(self, t3a):
        # Ruling out every other value always discloses.
        risks = background_knowledge_risks(t3a, 10, SENSITIVE)
        assert all(risk == 1.0 for risk in risks)

    def test_negative_rejected(self, t3a):
        with pytest.raises(ValueError):
            background_knowledge_risks(t3a, -1, SENSITIVE)


class TestAttackInvariants:
    """Property-style invariants of the adversary machinery on random
    recodings of the hospital workload."""

    @pytest.fixture(scope="class")
    def workload(self):
        from repro.datasets import hospital_dataset, hospital_hierarchies

        return hospital_dataset(80, seed=13), hospital_hierarchies()

    def test_match_sets_superset_of_classes(self, workload):
        from repro.anonymize.engine import recode_node

        data, hierarchies = workload
        release = recode_node(data, hierarchies, (2, 1, 0))
        qi = data.schema.quasi_identifier_indices
        classes = release.equivalence_classes
        for row_index in range(len(data)):
            record = [data[row_index][p] for p in qi]
            matches = set(match_set(release, record, hierarchies))
            assert set(classes.members_of(row_index)) <= matches

    def test_risks_bounded_by_class_sizes(self, workload):
        from repro.anonymize.engine import recode_node
        from repro.core.properties import breach_probability

        data, hierarchies = workload
        for node in ((0, 0, 0), (1, 2, 1), (5, 4, 1)):
            release = recode_node(data, hierarchies, node)
            risks = prosecutor_risks(release, hierarchies=hierarchies)
            structural = breach_probability(release)
            assert all(
                risk <= struct + 1e-12
                for risk, struct in zip(risks, structural)
            )

    def test_generalizing_never_increases_risk(self, workload):
        from repro.anonymize.engine import recode_node

        data, hierarchies = workload
        lower = recode_node(data, hierarchies, (1, 1, 0))
        upper = recode_node(data, hierarchies, (3, 2, 1))
        lower_risks = prosecutor_risks(lower, hierarchies=hierarchies)
        upper_risks = prosecutor_risks(upper, hierarchies=hierarchies)
        assert all(
            up <= low + 1e-12 for up, low in zip(upper_risks, lower_risks)
        )

    def test_composition_with_self_is_identity(self, workload):
        from repro.anonymize.engine import recode_node
        from repro.attack import composition_risks

        data, hierarchies = workload
        release = recode_node(data, hierarchies, (2, 1, 0))
        single = prosecutor_risks(release, hierarchies=hierarchies)
        joint = composition_risks([release, release], hierarchies=hierarchies)
        assert joint.as_tuple() == pytest.approx(single.as_tuple())
