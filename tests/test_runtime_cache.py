"""Content-addressed result store: hits, misses, corruption, eviction."""

from __future__ import annotations

import os
import pickle

import pytest

from repro.runtime.cache import MISS, CacheStats, ResultCache
from repro.runtime.task import CODE_EPOCH, CacheKey, canonical_json, derive_seed


def key_for(name: str, **params) -> CacheKey:
    return CacheKey(
        dataset="d" * 64,
        algorithm=canonical_json({"name": name, "params": params}),
        metric="",
    )


class TestCacheKey:
    def test_digest_is_stable_across_processes(self):
        # The digest must not depend on PYTHONHASHSEED or dict order.
        key = CacheKey(dataset="abc", algorithm='{"k":5,"name":"datafly"}', metric="lm")
        assert key.digest() == CacheKey(
            metric="lm", algorithm='{"k":5,"name":"datafly"}', dataset="abc"
        ).digest()

    def test_digest_sensitive_to_every_component(self):
        base = CacheKey(dataset="a", algorithm="b", metric="c")
        variants = [
            CacheKey(dataset="x", algorithm="b", metric="c"),
            CacheKey(dataset="a", algorithm="x", metric="c"),
            CacheKey(dataset="a", algorithm="b", metric="x"),
            CacheKey(dataset="a", algorithm="b", metric="c", epoch="999"),
        ]
        digests = {base.digest()} | {v.digest() for v in variants}
        assert len(digests) == 5

    def test_default_epoch_is_current(self):
        assert CacheKey(dataset="a", algorithm="b").epoch == CODE_EPOCH


class TestResultCache:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "store")
        key = key_for("datafly", k=5)
        assert cache.get(key) is MISS
        cache.put(key, {"rows": [1, 2, 3]})
        assert cache.get(key) == {"rows": [1, 2, 3]}
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.writes == 1

    def test_distinct_keys_do_not_collide(self, tmp_path):
        cache = ResultCache(tmp_path / "store")
        cache.put(key_for("datafly", k=5), "a")
        cache.put(key_for("datafly", k=6), "b")
        assert cache.get(key_for("datafly", k=5)) == "a"
        assert cache.get(key_for("datafly", k=6)) == "b"
        assert len(cache) == 2

    def test_corrupt_entry_recovers_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "store")
        key = key_for("mondrian", k=2)
        cache.put(key, "value")
        path = cache.path_for(key)
        path.write_bytes(b"not a pickle")
        assert cache.get(key) is MISS
        assert cache.stats.corrupt == 1
        assert not path.exists()
        # The store heals: a rewrite works and hits again.
        cache.put(key, "value2")
        assert cache.get(key) == "value2"

    def test_key_mismatch_treated_as_corruption(self, tmp_path):
        # An entry whose stored key does not match the requested key must
        # never be returned (content addressing would be lying).
        cache = ResultCache(tmp_path / "store")
        key_a, key_b = key_for("a"), key_for("b")
        cache.put(key_a, "value-a")
        path_b = cache.path_for(key_b)
        path_b.parent.mkdir(parents=True, exist_ok=True)
        path_b.write_bytes(cache.path_for(key_a).read_bytes())
        assert cache.get(key_b) is MISS
        assert cache.stats.corrupt == 1

    def test_lru_eviction_under_size_cap(self, tmp_path):
        cache = ResultCache(tmp_path / "store", max_bytes=1)
        first, second = key_for("first"), key_for("second")
        cache.put(first, "x" * 100)
        cache.put(second, "y" * 100)
        # A 1-byte cap cannot hold both; the older entry goes first, the
        # entry just written is protected.
        assert cache.stats.evictions >= 1
        assert cache.get(second) == "y" * 100

    def test_eviction_prefers_least_recently_used(self, tmp_path):
        cache = ResultCache(tmp_path / "store")
        old, fresh = key_for("old"), key_for("fresh")
        cache.put(old, "o")
        cache.put(fresh, "f")
        past = 1_000_000.0
        os.utime(cache.path_for(old), (past, past))
        # Cap at the current two-entry size: adding a third must evict
        # exactly one entry, and recency says it is `old`.
        cache.max_bytes = cache.size_bytes()
        cache.put(key_for("new"), "n")
        assert cache.get(old) is MISS
        assert cache.get(fresh) == "f"

    def test_clear_empties_the_store(self, tmp_path):
        cache = ResultCache(tmp_path / "store")
        cache.put(key_for("x"), 1)
        cache.put(key_for("y"), 2)
        cache.clear()
        assert len(cache) == 0
        assert cache.get(key_for("x")) is MISS

    def test_entries_are_self_describing(self, tmp_path):
        # Stored envelopes carry their own key so audits (ART010) can
        # verify content addresses offline.
        cache = ResultCache(tmp_path / "store")
        key = key_for("datafly", k=3)
        cache.put(key, [1, 2])
        with cache.path_for(key).open("rb") as handle:
            entry = pickle.load(handle)
        assert set(entry) == {"key", "value"}
        assert CacheKey(**entry["key"]).digest() == key.digest()

    def test_stats_snapshot(self, tmp_path):
        cache = ResultCache(tmp_path / "store")
        cache.get(key_for("miss"))
        cache.put(key_for("miss"), 0)
        snapshot = cache.stats.snapshot()
        assert snapshot == {
            "hits": 0,
            "misses": 1,
            "writes": 1,
            "evictions": 0,
            "corrupt": 0,
        }
        assert isinstance(cache.stats, CacheStats)


class TestDeriveSeed:
    def test_deterministic_and_task_dependent(self):
        assert derive_seed(42, "anonymize:a") == derive_seed(42, "anonymize:a")
        assert derive_seed(42, "anonymize:a") != derive_seed(42, "anonymize:b")
        assert derive_seed(42, "anonymize:a") != derive_seed(43, "anonymize:a")

    def test_fits_in_63_bits(self):
        for task in ("a", "b", "c", "anonymize:genetic[k=5]"):
            seed = derive_seed(7, task)
            assert 0 <= seed < 2**63

    def test_independent_of_scheduling_order(self):
        # Seeds derive from (study seed, task id) only, so parallel and
        # serial execution see identical streams.
        forward = [derive_seed(1, f"t{i}") for i in range(20)]
        backward = [derive_seed(1, f"t{i}") for i in reversed(range(20))]
        assert forward == list(reversed(backward))
