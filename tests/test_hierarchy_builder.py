"""Tests for automatic hierarchy construction."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hierarchy import (
    HierarchyError,
    SUPPRESSED,
    categorical_hierarchy_from_data,
    infer_hierarchies,
    numeric_hierarchy_from_data,
    string_hierarchy_from_data,
)


class TestNumericBuilder:
    def test_domain_covers_values(self):
        values = [17, 25, 40, 88]
        hierarchy = numeric_hierarchy_from_data("age", values, levels=3)
        for value in values:
            for level in range(hierarchy.height + 1):
                hierarchy.generalize(value, level)  # must not raise

    def test_height(self):
        hierarchy = numeric_hierarchy_from_data("age", [1, 100], levels=4)
        assert hierarchy.height == 5

    def test_top_band_covers_everything(self):
        hierarchy = numeric_hierarchy_from_data("age", [0, 64], levels=3)
        # Level `levels` is suppression; level levels-1 has 2 bands.
        band_low = hierarchy.generalize(1, 3)
        band_high = hierarchy.generalize(63, 3)
        assert band_low != band_high
        assert band_low.width == pytest.approx(32)

    def test_constant_column(self):
        hierarchy = numeric_hierarchy_from_data("x", [5, 5, 5], levels=2)
        hierarchy.generalize(5, 1)  # in-domain despite zero range

    def test_padding_extends_domain(self):
        hierarchy = numeric_hierarchy_from_data("x", [10, 20], padding=5)
        hierarchy.generalize(24, 1)  # within padded bounds

    def test_no_numeric_values_rejected(self):
        with pytest.raises(HierarchyError):
            numeric_hierarchy_from_data("x", ["a"])

    def test_invalid_levels(self):
        with pytest.raises(HierarchyError):
            numeric_hierarchy_from_data("x", [1, 2], levels=0)

    @given(
        st.lists(
            st.floats(min_value=-1000, max_value=1000, allow_nan=False),
            min_size=1,
            max_size=40,
        ),
        st.integers(min_value=1, max_value=5),
    )
    def test_every_observed_value_generalizable(self, values, levels):
        hierarchy = numeric_hierarchy_from_data("x", values, levels=levels)
        for value in values:
            assert hierarchy.loss(value, hierarchy.height) == 1.0
            assert hierarchy.generalize(value, 0) == value


class TestCategoricalBuilder:
    def test_single_value(self):
        hierarchy = categorical_hierarchy_from_data("c", ["only", "only"])
        assert hierarchy.height == 1
        assert hierarchy.generalize("only", 1) == SUPPRESSED

    def test_groups_cover_all_values(self):
        values = list("abcdefgh") * 3
        hierarchy = categorical_hierarchy_from_data("c", values, fanout=3)
        for value in set(values):
            for level in range(hierarchy.height + 1):
                hierarchy.generalize(value, level)

    def test_group_labels_namespaced(self):
        hierarchy = categorical_hierarchy_from_data("c", list("abcdef"))
        token = hierarchy.generalize("a", 1)
        assert str(token).startswith("c:L1:")

    def test_height_grows_with_domain(self):
        small = categorical_hierarchy_from_data("c", list("abc"), fanout=3)
        large = categorical_hierarchy_from_data(
            "c", [f"v{i}" for i in range(27)], fanout=3
        )
        assert large.height > small.height

    def test_invalid_fanout(self):
        with pytest.raises(HierarchyError):
            categorical_hierarchy_from_data("c", ["a"], fanout=1)

    def test_empty_rejected(self):
        with pytest.raises(HierarchyError):
            categorical_hierarchy_from_data("c", [])

    @given(
        st.lists(
            st.sampled_from("abcdefghijkl"), min_size=1, max_size=60
        ),
        st.integers(min_value=2, max_value=4),
    )
    def test_uniform_depth_always(self, values, fanout):
        hierarchy = categorical_hierarchy_from_data("c", values, fanout=fanout)
        depths = {
            len(hierarchy.generalizations(value)) for value in set(values)
        }
        assert len(depths) == 1


class TestStringBuilder:
    def test_masking_from_codes(self):
        hierarchy = string_hierarchy_from_data("zip", ["13053", "13268"])
        assert hierarchy.generalize("13053", 1) == "1305*"

    def test_mixed_lengths_rejected(self):
        with pytest.raises(HierarchyError, match="mixed"):
            string_hierarchy_from_data("zip", ["123", "1234"])

    def test_empty_rejected(self):
        with pytest.raises(HierarchyError):
            string_hierarchy_from_data("zip", [])


class TestInferHierarchies:
    def test_adult_inference_end_to_end(self, adult_small):
        hierarchies = infer_hierarchies(adult_small)
        assert set(hierarchies) == set(
            adult_small.schema.quasi_identifier_names
        )
        # And a real algorithm runs on the inferred hierarchies.
        from repro.anonymize.algorithms import Datafly

        release = Datafly(5).anonymize(adult_small, hierarchies)
        classes = release.equivalence_classes
        for row in range(len(release)):
            if row not in release.suppressed:
                assert classes.size_of(row) >= 5

    def test_paper_table_inference(self, table1):
        hierarchies = infer_hierarchies(table1)
        assert hierarchies["Zip Code"].generalize("13053", 1) == "1305*"
        hierarchies["Age"].generalize(28, 1)
        hierarchies["Marital Status"].generalize("Divorced", 1)
