"""Tests for the multi-model constrained lattice search, including the
monotonicity assumptions it relies on."""

import pytest

from repro.anonymize.algorithms import AlgorithmError, ConstrainedLattice
from repro.anonymize.algorithms.base import RecodingWorkspace
from repro.anonymize.engine import recode_node
from repro.datasets import paper_tables
from repro.privacy import (
    DistinctLDiversity,
    EntropyLDiversity,
    KAnonymity,
    PSensitiveKAnonymity,
    RecursiveCLDiversity,
    TCloseness,
)

SENSITIVE = paper_tables.SENSITIVE_ATTRIBUTE


def paper_hierarchies():
    return {
        "Zip Code": paper_tables.zip_hierarchy(),
        "Age": paper_tables.age_hierarchy(10, 5),
        SENSITIVE: paper_tables.marital_hierarchy(),
    }


ALL_MODELS = [
    KAnonymity(3),
    DistinctLDiversity(2, SENSITIVE),
    EntropyLDiversity(1.5, SENSITIVE),
    RecursiveCLDiversity(3.0, 2, SENSITIVE),
    TCloseness(0.5, SENSITIVE),
    TCloseness(0.5, SENSITIVE, taxonomy=paper_tables.marital_hierarchy()),
    PSensitiveKAnonymity(2, 3, SENSITIVE),
]


class TestModelMonotonicity:
    """The search assumes each model's measure never degrades when the
    recoding is generalized; verify exhaustively on the paper lattice."""

    @pytest.mark.parametrize(
        "model", ALL_MODELS, ids=[model.name for model in ALL_MODELS]
    )
    def test_monotone_along_lattice(self, table1, model):
        hierarchies = paper_hierarchies()
        workspace = RecodingWorkspace(table1, hierarchies)
        lattice = workspace.lattice
        measures = {
            node: model.measure(recode_node(table1, hierarchies, node))
            for node in lattice.nodes()
        }
        for node in lattice.nodes():
            for successor in lattice.successors(node):
                assert measures[successor] >= measures[node] - 1e-9, (
                    f"{model.name} degraded from {node} to {successor}"
                )


class TestConstrainedSearch:
    def test_single_model_matches_k_anonymity(self, table1):
        hierarchies = paper_hierarchies()
        release = ConstrainedLattice([KAnonymity(3)]).anonymize(
            table1, hierarchies
        )
        assert release.k() >= 3

    def test_all_constraints_satisfied(self, table1):
        hierarchies = paper_hierarchies()
        models = [
            KAnonymity(3),
            DistinctLDiversity(2, SENSITIVE),
            TCloseness(0.5, SENSITIVE),
        ]
        release = ConstrainedLattice(models).anonymize(table1, hierarchies)
        for model in models:
            assert model.satisfied_by(release), model.name

    def test_extra_constraints_cost_utility(self, table1):
        from repro.utility import general_loss

        hierarchies = paper_hierarchies()
        k_only = ConstrainedLattice([KAnonymity(3)]).anonymize(
            table1, hierarchies
        )
        k_and_t = ConstrainedLattice(
            [KAnonymity(3), TCloseness(0.2, SENSITIVE)]
        ).anonymize(table1, hierarchies)
        assert general_loss(k_and_t, hierarchies) >= general_loss(
            k_only, hierarchies
        )

    def test_frontier_nodes_minimal(self, table1):
        hierarchies = paper_hierarchies()
        algorithm = ConstrainedLattice([KAnonymity(3)])
        frontier = algorithm.satisfying_frontier(table1, hierarchies)
        workspace = RecodingWorkspace(table1, hierarchies)
        assert frontier
        for node in frontier:
            for predecessor in workspace.lattice.predecessors(node):
                release = recode_node(table1, hierarchies, predecessor)
                assert not all(
                    model.satisfied_by(release) for model in algorithm.models
                )

    def test_unsatisfiable_raises(self, table1):
        hierarchies = paper_hierarchies()
        with pytest.raises(AlgorithmError, match="no full-domain"):
            ConstrainedLattice([KAnonymity(11)]).anonymize(table1, hierarchies)

    def test_empty_models_rejected(self):
        with pytest.raises(AlgorithmError):
            ConstrainedLattice([])

    def test_adult_workload(self, adult_small, adult_h):
        models = [KAnonymity(5), DistinctLDiversity(3, "occupation")]
        release = ConstrainedLattice(models).anonymize(
            adult_small.head(150), adult_h
        )
        for model in models:
            assert model.satisfied_by(release)
