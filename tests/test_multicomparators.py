"""Tests for set-level ▶WTD / ▶LEX / ▶GOAL comparator objects and the
weighted-k objective."""

import pytest

from repro.core import (
    GoalBetter,
    LexicographicBetter,
    Relation,
    WeightedBetter,
)
from repro.core.indices.binary import spread
from repro.core.vector import PropertyVector
from repro.datasets import paper_tables

P_A = PropertyVector(paper_tables.CLASS_SIZE_T3A, "privacy")
P_B = PropertyVector(paper_tables.CLASS_SIZE_T3B, "privacy")
U_A = PropertyVector(paper_tables.PAPER_UTILITY_T3A, "utility")
U_B = PropertyVector(paper_tables.PAPER_UTILITY_T3B, "utility")

UPSILON_A = (P_A, U_A)
UPSILON_B = (P_B, U_B)


class TestWeightedBetter:
    def test_equal_weights_tie(self):
        comparator = WeightedBetter([0.5, 0.5])
        assert comparator.relation(UPSILON_A, UPSILON_B) is Relation.EQUIVALENT

    def test_privacy_weighting(self):
        comparator = WeightedBetter([0.9, 0.1])
        assert comparator.relation(UPSILON_B, UPSILON_A) is Relation.BETTER
        assert comparator.relation(UPSILON_A, UPSILON_B) is Relation.WORSE

    def test_utility_weighting(self):
        comparator = WeightedBetter([0.1, 0.9])
        assert comparator.better(UPSILON_A, UPSILON_B)

    def test_custom_index(self):
        comparator = WeightedBetter([0.5, 0.5], index=spread)
        assert comparator.relation(UPSILON_B, UPSILON_A) in (
            Relation.BETTER, Relation.WORSE, Relation.EQUIVALENT,
        )


class TestLexicographicBetter:
    def test_privacy_first(self):
        comparator = LexicographicBetter()
        assert comparator.relation(UPSILON_B, UPSILON_A) is Relation.BETTER

    def test_self_equivalent(self):
        comparator = LexicographicBetter()
        assert comparator.relation(UPSILON_A, UPSILON_A) is Relation.EQUIVALENT

    def test_epsilon_flips_decision(self):
        # Huge tolerance on privacy: the utility property (where T3a wins)
        # decides instead.
        comparator = LexicographicBetter(epsilons=[1.0, 0.0])
        assert comparator.relation(UPSILON_A, UPSILON_B) is Relation.BETTER


class TestGoalBetter:
    def test_privacy_goal(self):
        comparator = GoalBetter(goals=[1.0, 0.0])
        assert comparator.relation(UPSILON_B, UPSILON_A) is Relation.BETTER

    def test_symmetric_goal_ties(self):
        comparator = GoalBetter(goals=[1.0, 1.0])
        assert comparator.relation(UPSILON_A, UPSILON_B) is Relation.EQUIVALENT


class TestWeightedKObjective:
    def test_matches_mean_class_size(self, table1):
        from repro.anonymize.algorithms.base import RecodingWorkspace
        from repro.moo import weighted_k_objective

        hierarchies = {
            "Zip Code": paper_tables.zip_hierarchy(),
            "Age": paper_tables.age_hierarchy(10, 5),
            paper_tables.SENSITIVE_ATTRIBUTE: paper_tables.marital_hierarchy(),
        }
        workspace = RecodingWorkspace(table1, hierarchies)
        # At the T3a node, weighted k = P_s-avg = 3.4 (Section 3).
        assert weighted_k_objective(workspace, (1, 1, 1)) == pytest.approx(-3.4)

    def test_monotone_toward_top(self, table1):
        from repro.anonymize.algorithms.base import RecodingWorkspace
        from repro.moo import weighted_k_objective

        hierarchies = {
            "Zip Code": paper_tables.zip_hierarchy(),
            "Age": paper_tables.age_hierarchy(10, 5),
            paper_tables.SENSITIVE_ATTRIBUTE: paper_tables.marital_hierarchy(),
        }
        workspace = RecodingWorkspace(table1, hierarchies)
        top = workspace.lattice.top
        bottom = workspace.lattice.bottom
        assert weighted_k_objective(workspace, top) < weighted_k_objective(
            workspace, bottom
        )

    def test_usable_in_nsga2(self, table1):
        from repro.moo import Nsga2Search, utility_loss_objective, weighted_k_objective

        hierarchies = {
            "Zip Code": paper_tables.zip_hierarchy(),
            "Age": paper_tables.age_hierarchy(10, 5),
            paper_tables.SENSITIVE_ATTRIBUTE: paper_tables.marital_hierarchy(),
        }
        search = Nsga2Search(
            objectives=(weighted_k_objective, utility_loss_objective),
            population_size=8,
            generations=4,
            seed=5,
        )
        result = search.search(table1, hierarchies)
        assert len(result) >= 1
