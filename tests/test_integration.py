"""Integration tests: algorithms × the property-vector framework.

These exercise the paper's central claim end-to-end on census-like data:
two anonymizations can satisfy the same scalar privacy requirement and
still distribute privacy very differently across tuples — and the vector
machinery detects it where the scalar cannot.
"""

import pytest

from repro import (
    CoverageBetter,
    Datafly,
    KAnonymity,
    MinBetter,
    Mondrian,
    OptimalLattice,
    Relation,
    Samarati,
    bias_summary,
    comparison_report,
    privacy_profile,
)
from repro.core.indices.binary import coverage, spread
from repro.core.properties import equivalence_class_size, tuple_loss
from repro.datasets import paper_tables


@pytest.fixture(scope="module")
def releases(adult_small_module, adult_h_module):
    data, hierarchies = adult_small_module, adult_h_module
    return {
        "datafly": Datafly(5).anonymize(data, hierarchies),
        "samarati": Samarati(5).anonymize(data, hierarchies),
        "mondrian": Mondrian(5).anonymize(data, hierarchies),
        "optimal": OptimalLattice(5).anonymize(data, hierarchies),
    }


@pytest.fixture(scope="module")
def adult_small_module():
    from repro.datasets import adult_dataset

    return adult_dataset(300, seed=11)


@pytest.fixture(scope="module")
def adult_h_module():
    from repro.datasets import adult_hierarchies

    return adult_hierarchies()


def non_suppressed_k(anonymization):
    classes = anonymization.equivalence_classes
    return min(
        classes.size_of(i)
        for i in range(len(anonymization))
        if i not in anonymization.suppressed
    )


class TestSameScalarDifferentBias:
    def test_all_algorithms_meet_k(self, releases):
        for release in releases.values():
            assert non_suppressed_k(release) >= 5

    def test_scalar_model_cannot_distinguish(self, releases):
        # Suppressed rows are excluded so every subject presents the same
        # "k >= 5" scalar story.
        ks = {name: non_suppressed_k(r) for name, r in releases.items()}
        assert all(k >= 5 for k in ks.values())

    def test_vectors_do_distinguish(self, releases):
        vectors = {
            name: equivalence_class_size(release)
            for name, release in releases.items()
        }
        distinct_vectors = {vector.as_tuple() for vector in vectors.values()}
        assert len(distinct_vectors) > 1

    def test_bias_differs_between_algorithms(self, releases):
        summaries = {
            name: bias_summary(equivalence_class_size(release))
            for name, release in releases.items()
        }
        ginis = {round(s.gini, 6) for s in summaries.values()}
        assert len(ginis) > 1

    def test_coverage_detects_asymmetry(self, releases):
        mondrian = equivalence_class_size(releases["mondrian"])
        datafly = equivalence_class_size(releases["datafly"])
        forward = coverage(datafly, mondrian)
        backward = coverage(mondrian, datafly)
        assert forward != backward  # somebody protects more individuals

    def test_full_report_renders(self, releases):
        profile = privacy_profile("occupation")
        text = comparison_report(list(releases.values()), profile)
        assert "equivalence-class-size" in text


class TestPrivacyUtilityTension:
    def test_datafly_more_private_mondrian_more_useful(
        self, releases, adult_h_module
    ):
        # Full-domain recoding creates huge classes (more collective
        # privacy by class size) while Mondrian keeps classes tight (more
        # utility).  Verify the tension is visible in the vectors.
        datafly_privacy = equivalence_class_size(releases["datafly"])
        mondrian_privacy = equivalence_class_size(releases["mondrian"])
        datafly_losses = tuple_loss(releases["datafly"], adult_h_module)
        mondrian_losses = tuple_loss(releases["mondrian"], adult_h_module)
        assert coverage(datafly_privacy, mondrian_privacy) > 0.5
        # Mondrian wins utility for the majority of tuples.
        assert coverage(mondrian_losses, datafly_losses) > 0.5

    def test_min_better_vs_coverage_better_can_disagree(self, t3b, t4):
        s_t3b = equivalence_class_size(t3b)
        s_t4 = equivalence_class_size(t4)
        # ▶min prefers T4 (k=4 vs 3) while ▶cov prefers T3b — the paper's
        # Section 2 example of "better" being disrupted.
        assert MinBetter().relation(s_t4, s_t3b) is Relation.BETTER
        assert CoverageBetter().relation(s_t3b, s_t4) is Relation.BETTER


class TestModelsAcrossAlgorithms:
    def test_k_anonymity_model_agrees_with_class_sizes(self, releases):
        for release in releases.items():
            name, anonymization = release
            model = KAnonymity(5)
            vector = model.property_vector(anonymization)
            assert model.measure(anonymization) == vector.min()

    def test_paper_table_chain_consistency(self, t3a, t3b, t4):
        # Section 5.2's chain under ▶cov: T3b > T4 > T3a.
        comparator = CoverageBetter()
        s = {name: equivalence_class_size(a) for name, a in
             paper_tables.all_generalizations().items()}
        assert comparator.relation(s["T3b"], s["T4"]) is Relation.BETTER
        assert comparator.relation(s["T4"], s["T3a"]) is Relation.BETTER
        assert comparator.relation(s["T3b"], s["T3a"]) is Relation.BETTER
