"""Tests for hierarchy JSON serialization."""

import pytest

from repro.datasets import adult_hierarchies, paper_tables
from repro.hierarchy import (
    HierarchyError,
    SUPPRESSED,
    hierarchy_from_spec,
    hierarchy_to_spec,
    load_hierarchies,
    save_hierarchies,
)


class TestSpecRoundTrip:
    def test_taxonomy(self):
        original = paper_tables.marital_hierarchy()
        restored = hierarchy_from_spec(hierarchy_to_spec(original))
        assert restored.height == original.height
        for leaf in original.leaves:
            assert restored.generalizations(leaf) == original.generalizations(leaf)

    def test_interval(self):
        original = paper_tables.age_hierarchy(10, 5)
        restored = hierarchy_from_spec(hierarchy_to_spec(original))
        assert restored.height == original.height
        assert restored.bounds == original.bounds
        assert restored.generalize(28, 1) == original.generalize(28, 1)

    def test_masking(self):
        original = paper_tables.zip_hierarchy()
        restored = hierarchy_from_spec(hierarchy_to_spec(original))
        assert restored.generalize("13053", 2) == "130**"
        assert restored.domain == original.domain

    def test_masking_without_domain(self):
        from repro.hierarchy import MaskingHierarchy

        original = MaskingHierarchy("zip", 4)
        restored = hierarchy_from_spec(hierarchy_to_spec(original))
        assert restored.domain is None
        assert restored.generalize("1234", 1) == "123*"

    def test_flat_taxonomy(self):
        from repro.hierarchy import TaxonomyHierarchy

        original = TaxonomyHierarchy("sex", {"Male": (), "Female": ()})
        restored = hierarchy_from_spec(hierarchy_to_spec(original))
        assert restored.generalize("Male", 1) == SUPPRESSED

    def test_unknown_kind_rejected(self):
        with pytest.raises(HierarchyError, match="unknown"):
            hierarchy_from_spec({"kind": "bogus", "name": "x"})

    def test_missing_field_rejected(self):
        with pytest.raises(HierarchyError, match="missing"):
            hierarchy_from_spec({"kind": "taxonomy"})


class TestFileRoundTrip:
    def test_adult_hierarchy_map(self, tmp_path):
        original = adult_hierarchies()
        path = tmp_path / "hierarchies.json"
        save_hierarchies(original, path)
        restored = load_hierarchies(path)
        assert set(restored) == set(original)
        assert restored["age"].generalize(37, 2) == original["age"].generalize(37, 2)
        assert restored["education"].generalize(
            "Masters", 1
        ) == original["education"].generalize("Masters", 1)

    def test_algorithms_run_on_restored(self, tmp_path, adult_small):
        from repro.anonymize.algorithms import Datafly

        path = tmp_path / "hierarchies.json"
        save_hierarchies(adult_hierarchies(), path)
        restored = load_hierarchies(path)
        release = Datafly(5).anonymize(adult_small, restored)
        assert len(release) == len(adult_small)
