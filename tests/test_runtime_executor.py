"""Executor semantics: graphs, retries, failure isolation, timeout, resume.

The test operations are registered at module import time so that forked
worker processes (the default start method on Linux) inherit them.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.runtime.cache import ResultCache
from repro.runtime.events import RunLog, read_events, read_manifest, summarize_events
from repro.runtime.executor import ExecutionError, StudyExecutor
from repro.runtime.task import CacheKey, TaskError, TaskGraph, TaskSpec, register_op


@register_op("test.echo")
def _op_echo(params, deps, seed):
    """Return the given value (optionally summed with dependency values)."""
    return params["value"] + sum(deps.values())


@register_op("test.fail")
def _op_fail(params, deps, seed):
    """Always raise."""
    raise RuntimeError("boom")


@register_op("test.flaky")
def _op_flaky(params, deps, seed):
    """Fail until a marker file exists, then succeed."""
    marker = Path(params["marker"])
    if marker.exists():
        return "recovered"
    marker.write_text("attempted")
    raise RuntimeError("first attempt fails")


@register_op("test.slow-once")
def _op_slow_once(params, deps, seed):
    """Sleep past the timeout on the first attempt, return fast after."""
    marker = Path(params["marker"])
    if not marker.exists():
        marker.write_text("attempted")
        time.sleep(params.get("sleep", 30.0))
    return "fast"


@register_op("test.touch")
def _op_touch(params, deps, seed):
    """Record the execution in a side-effect file, then return the value."""
    path = Path(params["log"])
    with path.open("a") as handle:
        handle.write(f"{params['value']}\n")
    return params["value"]


def echo(task_id, value, deps=(), key=None, retries=0, timeout=None):
    return TaskSpec(
        task_id=task_id,
        op="test.echo",
        params={"value": value},
        deps=tuple(deps),
        key=key,
        retries=retries,
        timeout=timeout,
    )


class TestTaskGraph:
    def test_insertion_order_is_topological(self):
        graph = TaskGraph()
        graph.add(echo("a", 1))
        graph.add(echo("b", 2, deps=["a"]))
        assert list(graph.task_ids) == ["a", "b"]
        assert "a" in graph and len(graph) == 2

    def test_duplicate_task_id_rejected(self):
        graph = TaskGraph()
        graph.add(echo("a", 1))
        with pytest.raises(TaskError, match="duplicate"):
            graph.add(echo("a", 2))

    def test_missing_dependency_rejected(self):
        graph = TaskGraph()
        with pytest.raises(TaskError, match="unknown tasks"):
            graph.add(echo("b", 2, deps=["ghost"]))

    def test_unknown_op_rejected(self):
        graph = TaskGraph()
        with pytest.raises(TaskError, match="unknown operation"):
            graph.add(TaskSpec(task_id="x", op="test.no-such-op"))

    def test_ready_respects_deps_and_exclusions(self):
        graph = TaskGraph()
        graph.add(echo("a", 1))
        graph.add(echo("b", 2, deps=["a"]))
        graph.add(echo("c", 3))
        ready_ids = {spec.task_id for spec in graph.ready(set(), set())}
        assert ready_ids == {"a", "c"}
        later = {spec.task_id for spec in graph.ready({"a"}, {"c"})}
        assert later == {"b"}


class TestSerialExecution:
    def test_values_flow_through_deps(self):
        graph = TaskGraph()
        graph.add(echo("a", 1))
        graph.add(echo("b", 2))
        graph.add(echo("sum", 10, deps=["a", "b"]))
        report = StudyExecutor(jobs=1).run(graph)
        assert report.value("sum") == 13
        assert report.completed == 3 and report.failed == 0

    def test_retry_recovers_flaky_task(self, tmp_path):
        graph = TaskGraph()
        graph.add(
            TaskSpec(
                task_id="flaky",
                op="test.flaky",
                params={"marker": str(tmp_path / "marker")},
                retries=2,
            )
        )
        report = StudyExecutor(jobs=1).run(graph)
        assert report.value("flaky") == "recovered"
        assert report.retries == 1
        assert report.outcomes["flaky"].attempts == 2

    def test_failure_blocks_dependents_but_not_independents(self):
        graph = TaskGraph()
        graph.add(TaskSpec(task_id="bad", op="test.fail"))
        graph.add(echo("child", 1, deps=["bad"]))
        graph.add(echo("grandchild", 1, deps=["child"]))
        graph.add(echo("independent", 7))
        report = StudyExecutor(jobs=1).run(graph)
        assert report.outcomes["bad"].status == "failed"
        assert report.outcomes["child"].status == "blocked"
        assert report.outcomes["grandchild"].status == "blocked"
        assert report.value("independent") == 7
        with pytest.raises(ExecutionError, match="bad"):
            report.raise_on_failure()

    def test_default_retries_apply_when_spec_has_none(self, tmp_path):
        graph = TaskGraph()
        graph.add(
            TaskSpec(
                task_id="flaky",
                op="test.flaky",
                params={"marker": str(tmp_path / "marker")},
            )
        )
        report = StudyExecutor(jobs=1, default_retries=1).run(graph)
        assert report.value("flaky") == "recovered"


class TestParallelExecution:
    def test_parallel_matches_serial(self):
        def build():
            graph = TaskGraph()
            for i in range(6):
                graph.add(echo(f"leaf{i}", i))
            graph.add(echo("total", 0, deps=[f"leaf{i}" for i in range(6)]))
            return graph

        serial = StudyExecutor(jobs=1).run(build())
        parallel = StudyExecutor(jobs=3).run(build())
        assert serial.value("total") == parallel.value("total") == 15

    def test_timeout_then_retry_succeeds(self, tmp_path):
        graph = TaskGraph()
        graph.add(
            TaskSpec(
                task_id="slow",
                op="test.slow-once",
                params={"marker": str(tmp_path / "marker")},
                timeout=1.0,
                retries=1,
            )
        )
        log = RunLog(tmp_path / "run")
        report = StudyExecutor(jobs=2, log=log).run(graph)
        assert report.value("slow") == "fast"
        counts = summarize_events(read_events(log.events_path))
        assert counts.get("timeout", 0) >= 1
        assert counts.get("retry", 0) >= 1

    def test_timeout_without_retry_fails(self, tmp_path):
        graph = TaskGraph()
        graph.add(
            TaskSpec(
                task_id="slow",
                op="test.slow-once",
                params={"marker": str(tmp_path / "marker")},
                timeout=1.0,
            )
        )
        report = StudyExecutor(jobs=2).run(graph)
        assert report.outcomes["slow"].status == "failed"
        assert "timed out" in report.outcomes["slow"].error


class TestResume:
    def test_interrupted_run_resumes_from_cache(self, tmp_path):
        """A run that dies mid-study recomputes nothing it already finished."""
        side_effects = tmp_path / "executions.log"
        cache = ResultCache(tmp_path / "store")

        def build(include_poison):
            graph = TaskGraph()
            for i in range(4):
                graph.add(
                    TaskSpec(
                        task_id=f"work{i}",
                        op="test.touch",
                        params={"log": str(side_effects), "value": i},
                        key=CacheKey(dataset="resume-test", algorithm=f"work{i}"),
                    )
                )
            if include_poison:
                graph.add(TaskSpec(task_id="poison", op="test.fail"))
            graph.add(
                TaskSpec(
                    task_id="final",
                    op="test.touch",
                    params={"log": str(side_effects), "value": 99},
                    deps=tuple(f"work{i}" for i in range(4)),
                    key=CacheKey(dataset="resume-test", algorithm="final"),
                )
            )
            return graph

        # First run "crashes": a poison task fails, blocking nothing but
        # leaving the run marked failed (stand-in for a killed process —
        # kill -9 leaves the same on-disk state: completed prefix cached).
        first = StudyExecutor(jobs=1, cache=ResultCache(tmp_path / "store")).run(
            build(include_poison=True)
        )
        assert first.outcomes["poison"].status == "failed"
        assert first.completed == 5

        executed_first = side_effects.read_text().splitlines()
        assert sorted(executed_first) == ["0", "1", "2", "3", "99"]

        # Relaunch over the same store: everything cached, nothing re-runs.
        second = StudyExecutor(jobs=1, cache=cache).run(build(include_poison=False))
        second.raise_on_failure()
        assert second.cache_hits == 5
        assert second.executed == 0
        assert side_effects.read_text().splitlines() == executed_first

    def test_uncached_tasks_execute_on_resume(self, tmp_path):
        cache = ResultCache(tmp_path / "store")
        graph = TaskGraph()
        graph.add(echo("cached", 1, key=CacheKey(dataset="d", algorithm="cached")))
        graph.add(echo("fresh", 2))
        cache.put(CacheKey(dataset="d", algorithm="cached"), 111)
        report = StudyExecutor(jobs=1, cache=cache).run(graph)
        assert report.value("cached") == 111  # from the store, not recomputed
        assert report.value("fresh") == 2
        assert report.cache_hits == 1 and report.executed == 1


class TestRunArtifacts:
    def test_manifest_and_events_written(self, tmp_path):
        graph = TaskGraph()
        graph.add(echo("a", 1))
        log = RunLog(tmp_path / "run")
        StudyExecutor(jobs=1, log=log).run(graph)
        manifest = read_manifest(tmp_path / "run")
        assert manifest["status"] == "completed"
        assert manifest["task_ids"] == ["a"]
        counts = summarize_events(read_events(log.events_path))
        assert counts["run-start"] == 1
        assert counts["run-finish"] == 1
        assert counts["finished"] == 1

    def test_failed_run_marked_in_manifest(self, tmp_path):
        graph = TaskGraph()
        graph.add(TaskSpec(task_id="bad", op="test.fail"))
        log = RunLog(tmp_path / "run")
        StudyExecutor(jobs=1, log=log).run(graph)
        assert read_manifest(tmp_path / "run")["status"] == "failed"
