"""Executable checks around Theorem 1 and its corollaries."""

from repro.kernels.array import xp as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.theory import (
    equivalence_holds,
    find_dominance_counterexample,
    indices_claim_dominance,
    minimum_indices_required,
    projection_indices,
)
from repro.core.vector import PropertyVector


class TestProjectionIndices:
    def test_exactly_n_indices_characterize_dominance(self):
        # The bound of Theorem 1 is tight: N projections suffice.
        indices = projection_indices(4)
        a = PropertyVector([4, 4, 4, 4])
        b = PropertyVector([3, 4, 2, 4])
        assert indices_claim_dominance(indices, a, b)
        assert equivalence_holds(indices, a, b)

    def test_no_counterexample_for_projections(self):
        indices = projection_indices(3)
        assert (
            find_dominance_counterexample(indices, size=3, trials=300, seed=1)
            is None
        )

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            projection_indices(0)

    @given(
        st.lists(
            st.floats(min_value=0, max_value=10, allow_nan=False),
            min_size=2,
            max_size=8,
        )
    )
    def test_projections_agree_with_dominance(self, values):
        from repro.core.comparators import weakly_dominates

        size = len(values)
        indices = projection_indices(size)
        a = PropertyVector(values)
        b = PropertyVector([v / 2 for v in values]) if max(values) > 0 else a
        assert indices_claim_dominance(indices, a, b) == weakly_dominates(a, b)


class TestTheorem1Witnesses:
    """Theorem 1 says every family with n < N fails; we exhibit witnesses
    for the aggregate families used in practice."""

    @staticmethod
    def aggregates():
        return [
            lambda v: float(v.oriented.min()),
            lambda v: float(v.oriented.mean()),
        ]

    def test_min_and_mean_fail_for_n3(self):
        witness = find_dominance_counterexample(self.aggregates(), size=3, seed=0)
        assert witness is not None
        first, second = witness
        assert not equivalence_holds(self.aggregates(), first, second)

    def test_min_alone_fails_for_n2(self):
        indices = [lambda v: float(v.oriented.min())]
        witness = find_dominance_counterexample(indices, size=2, seed=0)
        assert witness is not None

    def test_structured_base_case(self):
        # The theorem's own base case: (a, b) vs (b, a) breaks any single
        # index family immediately.
        indices = [lambda v: float(v.oriented.sum())]
        witness = find_dominance_counterexample(indices, size=2, trials=1, seed=0)
        assert witness is not None

    def test_min_mean_max_fail_for_n4(self):
        indices = self.aggregates() + [lambda v: float(v.oriented.max())]
        witness = find_dominance_counterexample(indices, size=4, seed=3)
        assert witness is not None

    def test_quantile_family_fails(self):
        indices = [
            (lambda q: lambda v: float(np.quantile(v.oriented, q)))(q)
            for q in (0.0, 0.5, 1.0)
        ]
        witness = find_dominance_counterexample(indices, size=5, seed=5)
        assert witness is not None

    def test_size_must_be_at_least_two(self):
        with pytest.raises(ValueError):
            find_dominance_counterexample(self.aggregates(), size=1)


class TestLowerBound:
    def test_theorem1_bound(self):
        assert minimum_indices_required(1, 10) == 10

    def test_corollary2_bound(self):
        assert minimum_indices_required(3, 10) == 30

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            minimum_indices_required(0, 10)
        with pytest.raises(ValueError):
            minimum_indices_required(1, 0)
