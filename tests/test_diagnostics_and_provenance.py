"""Tests for comparator diagnostics and release provenance."""

import pytest

from repro.analysis import (
    audit_comparator,
    condorcet_cycle_example,
    find_cycles,
)
from repro.anonymize import (
    AnonymizationError,
    provenance_record,
    read_release,
    write_release,
)
from repro.core.comparators import (
    CoverageBetter,
    MinBetter,
    RankBetter,
    Relation,
    SpreadBetter,
)
from repro.core.vector import PropertyVector


class TestAuditComparator:
    def test_builtin_comparators_lawful(self):
        vectors = {
            "a": PropertyVector([3, 3, 4]),
            "b": PropertyVector([4, 3, 3]),
            "c": PropertyVector([3, 4, 3]),
        }
        for comparator in (
            MinBetter(),
            RankBetter(ideal=5.0),
            CoverageBetter(),
            SpreadBetter(),
        ):
            diagnostics = audit_comparator(comparator, vectors)
            assert diagnostics.lawful, diagnostics.describe()

    def test_coverage_condorcet_cycle_detected(self):
        diagnostics = audit_comparator(
            CoverageBetter(), condorcet_cycle_example()
        )
        assert diagnostics.lawful           # pairwise laws hold...
        assert diagnostics.cycles == [("a", "b", "c")]  # ...but it cycles

    def test_rank_comparator_never_cycles(self):
        # ▶rank is induced by a scalar index, hence acyclic.
        diagnostics = audit_comparator(
            RankBetter(ideal=5.0), condorcet_cycle_example()
        )
        assert diagnostics.cycles == []

    def test_spread_breaks_the_coverage_cycle(self):
        # On the cycle example all pairwise sums are equal, so ▶spr calls
        # every pair equivalent — no cycle.
        diagnostics = audit_comparator(
            SpreadBetter(), condorcet_cycle_example()
        )
        assert diagnostics.cycles == []

    def test_describe(self):
        diagnostics = audit_comparator(
            CoverageBetter(), condorcet_cycle_example()
        )
        assert "cycles=1" in diagnostics.describe()


class TestFindCycles:
    def test_simple_triangle(self):
        relations = {
            ("a", "b"): Relation.BETTER,
            ("b", "c"): Relation.BETTER,
            ("c", "a"): Relation.BETTER,
            ("b", "a"): Relation.WORSE,
            ("c", "b"): Relation.WORSE,
            ("a", "c"): Relation.WORSE,
        }
        assert find_cycles(relations, ["a", "b", "c"]) == [("a", "b", "c")]

    def test_acyclic_chain(self):
        relations = {
            ("a", "b"): Relation.BETTER,
            ("b", "c"): Relation.BETTER,
            ("a", "c"): Relation.BETTER,
            ("b", "a"): Relation.WORSE,
            ("c", "b"): Relation.WORSE,
            ("c", "a"): Relation.WORSE,
        }
        assert find_cycles(relations, ["a", "b", "c"]) == []

    def test_cycle_reported_once(self):
        relations = {
            ("a", "b"): Relation.BETTER,
            ("b", "c"): Relation.BETTER,
            ("c", "a"): Relation.BETTER,
        }
        cycles = find_cycles(relations, ["a", "b", "c"])
        assert len(cycles) == 1


class TestProvenance:
    def test_record_contents(self, t3a):
        record = provenance_record(t3a)
        assert record["name"] == "T3a"
        assert record["rows"] == 10
        assert record["k_achieved"] == 3
        assert record["levels"] == {
            "Zip Code": 1, "Age": 1, "Marital Status": 1,
        }
        assert record["suppressed"] == []

    def test_full_domain_round_trip(self, t3a, table1, tmp_path):
        write_release(t3a, tmp_path / "t3a.csv")
        restored = read_release(tmp_path / "t3a.csv", table1)
        assert restored.released == t3a.released
        assert restored.levels == t3a.levels
        assert restored.k() == 3

    def test_local_recoding_round_trip(self, adult_small, adult_h, tmp_path):
        from repro import Mondrian

        release = Mondrian(5).anonymize(adult_small, adult_h)
        write_release(release, tmp_path / "release.csv")
        restored = read_release(tmp_path / "release.csv", adult_small)
        assert restored.released == release.released
        assert restored.levels is None

    def test_suppressed_rows_round_trip(self, table1, tmp_path):
        from repro.anonymize.engine import recode
        from repro.datasets import paper_tables

        hierarchies = {
            "Zip Code": paper_tables.zip_hierarchy(),
            "Age": paper_tables.age_hierarchy(10, 5),
            "Marital Status": paper_tables.marital_hierarchy(),
        }
        release = recode(
            table1,
            hierarchies,
            {"Zip Code": 1, "Age": 1, "Marital Status": 1},
            suppress=[2, 7],
        )
        write_release(release, tmp_path / "sup.csv")
        restored = read_release(tmp_path / "sup.csv", table1)
        assert restored.suppressed == frozenset({2, 7})

    def test_missing_sidecar_rejected(self, table1, tmp_path):
        from repro.datasets import write_csv

        write_csv(table1, tmp_path / "bare.csv")
        with pytest.raises(AnonymizationError, match="sidecar"):
            read_release(tmp_path / "bare.csv", table1)

    def test_shape_mismatch_rejected(self, t3a, table1, tmp_path):
        write_release(t3a, tmp_path / "t3a.csv")
        with pytest.raises(AnonymizationError, match="rows"):
            read_release(tmp_path / "t3a.csv", table1.head(5))


class TestSetAndSpanCells:
    def test_frozenset_round_trip(self, tmp_path):
        from repro.datasets import Dataset, read_csv, write_csv
        from repro.datasets.schema import AttributeKind, Schema, quasi_identifier

        schema = Schema.of(quasi_identifier("c", AttributeKind.CATEGORICAL))
        data = Dataset(schema, [(frozenset({"x", "y"}),), ("plain",)])
        write_csv(data, tmp_path / "sets.csv")
        restored = read_csv(tmp_path / "sets.csv", schema)
        assert restored[0][0] == frozenset({"x", "y"})
        assert restored[1][0] == "plain"

    def test_span_round_trip(self, tmp_path):
        from repro.datasets import Dataset, read_csv, write_csv
        from repro.datasets.schema import AttributeKind, Schema, quasi_identifier
        from repro.hierarchy import Span

        schema = Schema.of(quasi_identifier("n", AttributeKind.NUMERIC))
        data = Dataset(schema, [(Span(10, 20),), (Span(-5, 3),), (7,)])
        write_csv(data, tmp_path / "spans.csv")
        restored = read_csv(tmp_path / "spans.csv", schema)
        assert restored[0][0] == Span(10, 20)
        assert restored[1][0] == Span(-5, 3)
        assert restored[2][0] == 7
