"""Tests for hierarchy cuts, Top-Down Specialization and Bottom-Up
Generalization."""

import pytest

from repro.anonymize.algorithms import (
    BottomUpGeneralization,
    CutError,
    LevelCut,
    TaxonomyCut,
    TopDownSpecialization,
)
from repro.anonymize.algorithms.cuts import (
    apply_cuts,
    bottom_cuts,
    cut_total_loss,
    cut_violations,
    top_cuts,
)
from repro.datasets import paper_tables
from repro.hierarchy import SUPPRESSED, TaxonomyHierarchy
from repro.utility import general_loss


def paper_hierarchies():
    return {
        "Zip Code": paper_tables.zip_hierarchy(),
        "Age": paper_tables.age_hierarchy(10, 5),
        "Marital Status": paper_tables.marital_hierarchy(),
    }


@pytest.fixture
def marital():
    return paper_tables.marital_hierarchy()


class TestTaxonomyNavigation:
    def test_level_of(self, marital):
        assert marital.level_of("Divorced") == 0
        assert marital.level_of("Married") == 1
        assert marital.level_of(SUPPRESSED) == 2

    def test_level_of_unknown(self, marital):
        with pytest.raises(Exception):
            marital.level_of("Widowed")

    def test_parent(self, marital):
        assert marital.parent("Divorced") == "Not Married"
        assert marital.parent("Married") == SUPPRESSED
        with pytest.raises(Exception):
            marital.parent(SUPPRESSED)

    def test_children(self, marital):
        assert set(marital.children("Married")) == {
            "CF-Spouse", "Spouse Present",
        }
        assert set(marital.children(SUPPRESSED)) == {"Married", "Not Married"}
        with pytest.raises(Exception):
            marital.children("Divorced")

    def test_leaves_under(self, marital):
        assert set(marital.leaves_under("Not Married")) == {
            "Separated", "Never Married", "Divorced", "Spouse Absent",
        }
        assert marital.leaves_under("Divorced") == ["Divorced"]

    def test_alias_collision_rejected(self):
        with pytest.raises(Exception, match="collides"):
            TaxonomyHierarchy("x", {"a": ("b",), "b": ("c",), "c": ("c",)})

    def test_alias_of_own_leaf_allowed(self):
        hierarchy = TaxonomyHierarchy("x", {"a": ("a",), "b": ("g",)})
        assert hierarchy.generalize("a", 1) == "a"


class TestTaxonomyCut:
    def test_top_cut_maps_to_suppressed(self, marital):
        cut = TaxonomyCut(marital, {SUPPRESSED})
        assert cut.map_value("Divorced") == SUPPRESSED

    def test_leaf_cut_identity(self, marital):
        cut = TaxonomyCut(marital, set(marital.leaves))
        assert cut.map_value("Divorced") == "Divorced"

    def test_mixed_cut(self, marital):
        cut = TaxonomyCut(
            marital,
            {"Married", "Separated", "Never Married", "Divorced",
             "Spouse Absent"},
        )
        assert cut.map_value("CF-Spouse") == "Married"
        assert cut.map_value("Divorced") == "Divorced"

    def test_invalid_cut_undercover(self, marital):
        with pytest.raises(CutError, match="0 times"):
            TaxonomyCut(marital, {"Married"})

    def test_invalid_cut_overcover(self, marital):
        with pytest.raises(CutError, match="2 times"):
            TaxonomyCut(marital, {"Married", "CF-Spouse", "Not Married"})

    def test_specialize(self, marital):
        cut = TaxonomyCut(marital, {SUPPRESSED})
        finer = cut.specialize(SUPPRESSED)
        assert finer.tokens == {"Married", "Not Married"}

    def test_specialize_leaf_rejected(self, marital):
        cut = TaxonomyCut(marital, set(marital.leaves))
        assert cut.specializations() == []

    def test_generalize_round_trip(self, marital):
        cut = TaxonomyCut(marital, {"Married", "Not Married"})
        merged = cut.generalize(SUPPRESSED)
        assert merged.tokens == {SUPPRESSED}

    def test_partial_sibling_group_not_mergeable(self, marital):
        cut = TaxonomyCut(
            marital,
            {"Married", "Separated", "Never Married", "Divorced",
             "Spouse Absent"},
        )
        # "Not Married" is mergeable (all 4 leaves present); top is not
        # (Married's sibling "Not Married" missing from the cut).
        assert cut.generalizations() == ["Not Married"]

    def test_generalize_invalid_parent(self, marital):
        cut = TaxonomyCut(marital, {SUPPRESSED})
        with pytest.raises(CutError):
            cut.generalize("Married")

    def test_alias_cut_operations(self):
        hierarchy = TaxonomyHierarchy(
            "work",
            {"Private": ("Private",), "Fed": ("Gov",), "State": ("Gov",)},
        )
        leaf_cut = TaxonomyCut(hierarchy, {"Private", "Fed", "State"})
        # Merging Gov's children must work despite the Private alias.
        assert set(leaf_cut.generalizations()) == {"Gov"}
        merged = leaf_cut.generalize("Gov")
        assert merged.tokens == {"Private", "Gov"}
        # The merged cut can then reach the top.
        assert set(merged.generalizations()) == {SUPPRESSED}

    def test_loss(self, marital):
        cut = TaxonomyCut(marital, {"Married", "Not Married"})
        assert cut.loss("Divorced") == pytest.approx(3 / 5)


class TestLevelCut:
    def test_map_and_loss(self):
        hierarchy = paper_tables.age_hierarchy(10, 5)
        cut = LevelCut(hierarchy, 1)
        assert str(cut.map_value(28)) == "(25,35]"
        assert cut.loss(28) == pytest.approx(10 / 120)

    def test_specialize_and_generalize(self):
        hierarchy = paper_tables.age_hierarchy(10, 5)
        cut = LevelCut(hierarchy, 1)
        assert cut.specialize().level == 0
        assert cut.generalize().level == 2
        with pytest.raises(CutError):
            LevelCut(hierarchy, 0).specialize()
        with pytest.raises(CutError):
            LevelCut(hierarchy, hierarchy.height).generalize()

    def test_candidate_lists(self):
        hierarchy = paper_tables.age_hierarchy(10, 5)
        assert LevelCut(hierarchy, 0).specializations() == []
        assert LevelCut(hierarchy, hierarchy.height).generalizations() == []


class TestCutHelpers:
    def test_top_and_bottom(self, table1):
        hierarchies = paper_hierarchies()
        top = top_cuts(table1, hierarchies)
        bottom = bottom_cuts(table1, hierarchies)
        assert cut_total_loss(table1, top) == pytest.approx(3.0 * len(table1))
        assert cut_total_loss(table1, bottom) == 0.0
        assert cut_violations(table1, top, 10) == 0
        assert cut_violations(table1, bottom, 2) == 10

    def test_apply_cuts_release(self, table1):
        hierarchies = paper_hierarchies()
        release = apply_cuts(table1, top_cuts(table1, hierarchies), "top")
        assert release.k() == len(table1)

    def test_missing_cut_rejected(self, table1):
        hierarchies = paper_hierarchies()
        cuts = top_cuts(table1, hierarchies)
        del cuts["Age"]
        with pytest.raises(CutError, match="missing"):
            apply_cuts(table1, cuts, "broken")


class TestTopDown:
    def test_achieves_k(self, table1):
        release = TopDownSpecialization(3).anonymize(
            table1, paper_hierarchies()
        )
        assert release.k() >= 3
        assert not release.suppressed

    def test_never_leaves_k_region(self, table1):
        # Every prefix of the search is k-anonymous by construction; check
        # the final cut explicitly.
        algorithm = TopDownSpecialization(3)
        cuts = algorithm.search_cuts(table1, paper_hierarchies())
        assert cut_violations(table1, cuts, 3) == 0

    def test_max_specializations_cap(self, table1):
        capped = TopDownSpecialization(2, max_specializations=1)
        free = TopDownSpecialization(2)
        hierarchies = paper_hierarchies()
        assert cut_total_loss(
            table1, capped.search_cuts(table1, hierarchies)
        ) >= cut_total_loss(table1, free.search_cuts(table1, hierarchies))

    def test_adult_workload(self, adult_small, adult_h):
        release = TopDownSpecialization(5).anonymize(adult_small, adult_h)
        assert release.k() >= 5

    def test_cut_recoding_beats_or_matches_full_domain(
        self, adult_small, adult_h
    ):
        from repro.anonymize.algorithms import Samarati

        tds = TopDownSpecialization(5).anonymize(adult_small, adult_h)
        samarati = Samarati(5, suppression_limit=0.0).anonymize(
            adult_small, adult_h
        )
        # Cuts are a superset of full-domain recodings under greedy search;
        # allow a small slack for greedy misses.
        assert general_loss(tds, adult_h) <= general_loss(
            samarati, adult_h
        ) * 1.1

    def test_too_small_dataset(self, table1):
        with pytest.raises(ValueError):
            TopDownSpecialization(11).anonymize(table1, paper_hierarchies())


class TestBottomUp:
    def test_achieves_k(self, table1):
        release = BottomUpGeneralization(3).anonymize(
            table1, paper_hierarchies()
        )
        assert release.k() >= 3
        assert not release.suppressed

    def test_adult_workload(self, adult_small, adult_h):
        release = BottomUpGeneralization(5).anonymize(
            adult_small.head(150), adult_h
        )
        assert release.k() >= 5

    def test_terminates_at_top_for_extreme_k(self, table1):
        release = BottomUpGeneralization(10).anonymize(
            table1, paper_hierarchies()
        )
        assert release.k() == 10

    def test_too_small_dataset(self, table1):
        with pytest.raises(ValueError):
            BottomUpGeneralization(11).anonymize(table1, paper_hierarchies())
