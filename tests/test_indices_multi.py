"""Tests for multi-property indices: P_WTD, P_LEX, P_GOAL (Sections 5.5-5.7)."""

import pytest

from repro.core.indices.binary import coverage, spread
from repro.core.indices.multi import (
    goal,
    goal_from_unary,
    lexicographic,
    weighted,
)
from repro.core.indices.unary import MeanIndex, MinimumIndex
from repro.core.vector import PropertyVector, PropertyVectorError

# Paper Section 5.5: privacy (class size) and utility vectors for T3a / T3b.
P_A = PropertyVector((3, 3, 3, 3, 4, 4, 4, 3, 3, 4), "privacy")
P_B = PropertyVector((3, 7, 7, 3, 7, 7, 7, 3, 7, 7), "privacy")
U_A = PropertyVector(
    (2.03, 1.7, 1.7, 2.03, 1.6, 1.6, 1.6, 2.03, 1.7, 1.6), "utility"
)
U_B = PropertyVector(
    (2.03, 0.97, 0.97, 2.03, 0.97, 0.97, 0.97, 2.03, 0.97, 0.97), "utility"
)

UPSILON_A = (P_A, U_A)
UPSILON_B = (P_B, U_B)


class TestWeighted:
    def test_paper_section55_equal_weights_tie(self):
        # P_cov(p_a,p_b)=0.3, P_cov(u_a,u_b)=1 -> 0.65 both ways: the paper's
        # conclusion that with equal weights T3a and T3b are equally good.
        forward = weighted(UPSILON_A, UPSILON_B, weights=[0.5, 0.5])
        backward = weighted(UPSILON_B, UPSILON_A, weights=[0.5, 0.5])
        assert forward == pytest.approx(0.65)
        assert backward == pytest.approx(0.65)

    def test_paper_coverage_components(self):
        assert coverage(P_A, P_B) == pytest.approx(0.3)
        assert coverage(P_B, P_A) == pytest.approx(1.0)
        assert coverage(U_A, U_B) == pytest.approx(1.0)
        assert coverage(U_B, U_A) == pytest.approx(0.3)

    def test_privacy_weighting_prefers_t3b(self):
        weights = [0.9, 0.1]
        assert weighted(UPSILON_B, UPSILON_A, weights) > weighted(
            UPSILON_A, UPSILON_B, weights
        )

    def test_utility_weighting_prefers_t3a(self):
        weights = [0.1, 0.9]
        assert weighted(UPSILON_A, UPSILON_B, weights) > weighted(
            UPSILON_B, UPSILON_A, weights
        )

    def test_weights_must_sum_to_one(self):
        with pytest.raises(PropertyVectorError, match="sum to 1"):
            weighted(UPSILON_A, UPSILON_B, weights=[0.5, 0.6])

    def test_weights_must_be_positive(self):
        with pytest.raises(PropertyVectorError, match="positive"):
            weighted(UPSILON_A, UPSILON_B, weights=[1.0, 0.0])

    def test_weight_count_checked(self):
        with pytest.raises(PropertyVectorError, match="weights"):
            weighted(UPSILON_A, UPSILON_B, weights=[1.0])

    def test_set_size_mismatch(self):
        with pytest.raises(PropertyVectorError, match="sizes"):
            weighted((P_A,), UPSILON_B, weights=[1.0])

    def test_per_property_indices(self):
        value = weighted(
            UPSILON_A, UPSILON_B, weights=[0.5, 0.5], index=[coverage, spread]
        )
        assert value == pytest.approx(0.5 * 0.3 + 0.5 * spread(U_A, U_B))


class TestLexicographic:
    def test_privacy_first_prefers_t3b(self):
        # Privacy ordered first: T3b is superior on property 1.
        assert lexicographic(UPSILON_B, UPSILON_A) == 1
        # T3a is superior only on property 2 (utility).
        assert lexicographic(UPSILON_A, UPSILON_B) == 2
        # So T3b ▶LEX T3a.
        assert lexicographic(UPSILON_B, UPSILON_A) < lexicographic(
            UPSILON_A, UPSILON_B
        )

    def test_epsilon_tolerance_skips_insignificant_wins(self):
        # With a huge tolerance on privacy, T3b's privacy win is treated as
        # insignificant; T3b is superior nowhere (returns r+1) while T3a's
        # utility win on property 2 now decides: T3a ▶LEX T3b.
        assert lexicographic(UPSILON_B, UPSILON_A, epsilons=[1.0, 0.0]) == 3
        assert lexicographic(UPSILON_A, UPSILON_B, epsilons=[1.0, 0.0]) == 2

    def test_no_superior_property_returns_r_plus_one(self):
        assert lexicographic(UPSILON_A, UPSILON_A) == 3

    def test_scalar_epsilon_broadcast(self):
        assert lexicographic(UPSILON_B, UPSILON_A, epsilons=0.0) == 1

    def test_negative_epsilon_rejected(self):
        with pytest.raises(PropertyVectorError, match="non-negative"):
            lexicographic(UPSILON_A, UPSILON_B, epsilons=[-0.1, 0.0])

    def test_epsilon_count_checked(self):
        with pytest.raises(PropertyVectorError, match="epsilons"):
            lexicographic(UPSILON_A, UPSILON_B, epsilons=[0.0])


class TestGoal:
    def test_perfect_goal_scores_zero(self):
        goals = [coverage(P_A, P_B), coverage(U_A, U_B)]
        assert goal(UPSILON_A, UPSILON_B, goals) == pytest.approx(0.0)

    def test_closer_to_goal_wins(self):
        goals = [1.0, 1.0]  # want full coverage on both properties
        score_b = goal(UPSILON_B, UPSILON_A, goals)
        score_a = goal(UPSILON_A, UPSILON_B, goals)
        # T3b fully covers privacy, T3a fully covers utility: symmetric...
        assert score_a == pytest.approx(score_b)

    def test_asymmetric_goal(self):
        goals = [1.0, 0.0]  # demand privacy coverage, ignore utility
        assert goal(UPSILON_B, UPSILON_A, goals) < goal(UPSILON_A, UPSILON_B, goals)

    def test_goal_count_checked(self):
        with pytest.raises(PropertyVectorError, match="goals"):
            goal(UPSILON_A, UPSILON_B, goals=[1.0])

    def test_goal_from_unary(self):
        # Goal property vectors: perfect privacy of 10 everywhere, mean
        # utility of 2.
        goal_privacy = PropertyVector([10.0] * 10)
        goal_utility = PropertyVector([2.0] * 10)
        score_a = goal_from_unary(
            UPSILON_A,
            (goal_privacy, goal_utility),
            (MinimumIndex(), MeanIndex()),
        )
        score_b = goal_from_unary(
            UPSILON_B,
            (goal_privacy, goal_utility),
            (MinimumIndex(), MeanIndex()),
        )
        # Both have min privacy 3 (same distance from 10); T3a has mean
        # utility closer to 2 than T3b -> T3a scores lower (better).
        assert score_a < score_b

    def test_goal_from_unary_length_checked(self):
        with pytest.raises(PropertyVectorError, match="equal lengths"):
            goal_from_unary(UPSILON_A, (P_B,), (MinimumIndex(), MeanIndex()))

    def test_empty_sets_rejected(self):
        with pytest.raises(PropertyVectorError, match="non-empty"):
            goal((), (), goals=[])
