"""Tests for PropertyVector, including hypothesis property tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.kernels import HAVE_NUMPY

if HAVE_NUMPY:
    import numpy as np

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="exercises numpy-array interop"
)

from repro.core.vector import (
    PropertyVector,
    PropertyVectorError,
    check_all_comparable,
    check_comparable,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
vectors = st.lists(finite_floats, min_size=1, max_size=30)


class TestConstruction:
    def test_basic(self):
        vector = PropertyVector([1, 2, 3], "sizes")
        assert len(vector) == 3
        assert vector.name == "sizes"
        assert vector.higher_is_better

    def test_empty_rejected(self):
        with pytest.raises(PropertyVectorError, match="non-empty"):
            PropertyVector([])

    def test_nan_rejected(self):
        with pytest.raises(PropertyVectorError, match="finite"):
            PropertyVector([1.0, float("nan")])

    def test_inf_rejected(self):
        with pytest.raises(PropertyVectorError, match="finite"):
            PropertyVector([float("inf")])

    @needs_numpy
    def test_2d_rejected(self):
        with pytest.raises(PropertyVectorError, match="1-D"):
            PropertyVector(np.zeros((2, 2)))

    def test_values_read_only(self):
        # numpy raises ValueError (read-only flag), the pure-python array
        # TypeError (no __setitem__) — either way writes must not land.
        vector = PropertyVector([1, 2, 3])
        with pytest.raises((ValueError, TypeError)):
            vector.values[0] = 9

    @needs_numpy
    def test_source_array_not_aliased(self):
        source = np.array([1.0, 2.0])
        vector = PropertyVector(source)
        source[0] = 99
        assert vector[0] == 1.0


class TestOrientation:
    def test_oriented_identity_when_higher_better(self):
        vector = PropertyVector([1, 2], higher_is_better=True)
        assert list(vector.oriented) == [1, 2]

    def test_oriented_negates_when_lower_better(self):
        vector = PropertyVector([1, 2], higher_is_better=False)
        assert list(vector.oriented) == [-1, -2]

    def test_negated_round_trip(self):
        vector = PropertyVector([1, 2], "loss", higher_is_better=False)
        flipped = vector.negated()
        assert flipped.higher_is_better
        assert list(flipped.oriented) == list(vector.oriented)

    @given(vectors)
    def test_negation_preserves_orientation_semantics(self, values):
        vector = PropertyVector(values, higher_is_better=True)
        assert list(vector.negated().oriented) == list(vector.oriented)


class TestProtocol:
    def test_getitem_and_iter(self):
        vector = PropertyVector([5, 7])
        assert vector[1] == 7
        assert list(vector) == [5, 7]

    def test_equality(self):
        assert PropertyVector([1, 2]) == PropertyVector([1, 2])
        assert PropertyVector([1, 2]) != PropertyVector([2, 1])
        assert PropertyVector([1, 2]) != PropertyVector(
            [1, 2], higher_is_better=False
        )

    def test_hash_consistent_with_equality(self):
        assert hash(PropertyVector([1, 2], "a")) == hash(PropertyVector([1, 2], "a"))

    def test_as_tuple(self):
        assert PropertyVector([1, 2]).as_tuple() == (1.0, 2.0)

    def test_renamed(self):
        assert PropertyVector([1], "a").renamed("b").name == "b"

    def test_repr_shows_direction(self):
        assert "↓" in repr(PropertyVector([1], higher_is_better=False))


class TestStatistics:
    def test_summaries(self):
        vector = PropertyVector([3, 3, 3, 3, 4, 4, 4, 3, 3, 4])
        assert vector.min() == 3
        assert vector.max() == 4
        assert vector.mean() == pytest.approx(3.4)
        assert vector.quantile(0.5) == 3


class TestComparability:
    def test_size_mismatch(self):
        with pytest.raises(PropertyVectorError, match="sizes"):
            check_comparable(PropertyVector([1]), PropertyVector([1, 2]))

    def test_orientation_mismatch(self):
        with pytest.raises(PropertyVectorError, match="orientation"):
            check_comparable(
                PropertyVector([1]), PropertyVector([1], higher_is_better=False)
            )

    def test_check_all(self):
        family = [PropertyVector([1, 2]), PropertyVector([3, 4])]
        check_all_comparable(family)
        family.append(PropertyVector([1]))
        with pytest.raises(PropertyVectorError):
            check_all_comparable(family)


class TestNormalization:
    def test_minmax_to_unit_interval(self):
        vector = PropertyVector([2, 4, 6])
        scaled = vector.normalized()
        assert scaled.as_tuple() == (0.0, 0.5, 1.0)
        assert scaled.higher_is_better

    def test_constant_vector_all_zero(self):
        assert PropertyVector([5, 5]).normalized().as_tuple() == (0.0, 0.0)

    def test_lower_is_better_orientation_flipped(self):
        losses = PropertyVector([0.2, 0.8], higher_is_better=False)
        scaled = losses.normalized()
        # Best (lowest loss) tuple maps to 1.
        assert scaled.as_tuple() == (1.0, 0.0)

    def test_name_suffix(self):
        assert "[normalized]" in PropertyVector([1, 2], "x").normalized().name
