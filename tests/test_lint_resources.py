"""Tests for Layer 5 of repro.lint: resource-lifecycle analysis (REP300-305).

Covers the exception-aware CFG corners (finally re-raise, else clauses,
suppressing ``with``, nested try in a loop), a positive and a negative
fixture per rule, interprocedural release through helpers, waiver and
REP300 audit behavior, ``--select REP3`` prefix expansion, baseline
interplay, the SARIF reporter, the shared parse cache, and the
acceptance-critical properties: the repo itself is clean under
``--select REP3 --strict`` with zero waivers, and the op certificates
carry byte-deterministic ``crash_safety`` verdicts.
"""

import ast
import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import api
from repro.lint.dataflow import build_exception_cfg, statement_may_raise
from repro.lint.engine import expand_selection, parse_cached
from repro.lint.resources import (
    RESOURCE_RULES,
    check_resource_safety,
    crash_safety_by_op,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
REPO_SRC = REPO_ROOT / "src"


def findings_for(tmp_path, source, select=None, name="mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return check_resource_safety([tmp_path], select=select)


def rules_of(findings):
    return sorted({finding.rule for finding in findings})


def cfg_of(source):
    tree = ast.parse(textwrap.dedent(source))
    return build_exception_cfg(tree.body[0].body, may_raise=statement_may_raise)


# -- exception-aware CFG corners ---------------------------------------------


class TestExceptionCFG:
    def test_raising_statement_gets_exception_edge(self):
        cfg = cfg_of(
            """
            def f(x):
                y = g(x)
                return y
            """
        )
        exc_targets = [
            target
            for block in cfg.blocks.values()
            for target in block.exc_successors
        ]
        assert cfg.raise_exit in exc_targets

    def test_pure_moves_have_no_exception_edges(self):
        cfg = cfg_of(
            """
            def f(x):
                y = x
                z = y
            """
        )
        assert all(
            not block.exc_successors for block in cfg.blocks.values()
        )

    def test_finally_tail_reaches_both_exits(self):
        cfg = cfg_of(
            """
            def f(x):
                try:
                    g(x)
                finally:
                    h()
            """
        )
        # Some block must edge to the normal exit AND some block must edge
        # to the raise exit (the finally re-raise path).
        succs = [
            target
            for block in cfg.blocks.values()
            for target in block.successors
        ]
        assert cfg.normal_exit in succs
        assert cfg.raise_exit in succs

    def test_handler_raise_lands_outside_own_try(self):
        """An exception raised inside a handler skips sibling handlers."""
        cfg = cfg_of(
            """
            def f(x):
                try:
                    g(x)
                except ValueError:
                    h(x)
                except KeyError:
                    pass
            """
        )
        assert cfg.raise_exit in {
            target
            for block in cfg.blocks.values()
            for target in block.exc_successors
        }

    def test_else_clause_exceptions_skip_handlers(self, tmp_path):
        # The release lives in the else clause: the try body's exception
        # path never runs it, so the handle leaks on that path.
        findings = findings_for(
            tmp_path,
            """
            def f(path):
                handle = open(path)
                try:
                    data = handle.read()
                except ValueError:
                    data = ""
                else:
                    handle.close()
                return data
            """,
        )
        assert "REP301" in rules_of(findings)

    def test_finally_release_is_clean_even_on_reraise(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            def f(path):
                handle = open(path)
                try:
                    return handle.read()
                finally:
                    handle.close()
            """,
        )
        assert findings == []

    def test_suppressing_with_contains_the_exception(self, tmp_path):
        # contextlib.suppress swallows the raise, so control always
        # reaches the close: no leak.
        findings = findings_for(
            tmp_path,
            """
            import contextlib

            def f(path):
                handle = open(path)
                with contextlib.suppress(ValueError):
                    handle.write(parse(path))
                handle.close()
            """,
        )
        assert findings == []

    def test_nested_try_in_loop(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            def f(paths):
                out = []
                for path in paths:
                    handle = open(path)
                    try:
                        out.append(handle.read())
                    finally:
                        handle.close()
                return out
            """,
        )
        assert findings == []

    def test_loop_with_unprotected_body_leaks(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            def f(paths):
                out = []
                for path in paths:
                    handle = open(path)
                    out.append(handle.read())
                    handle.close()
                return out
            """,
        )
        assert "REP301" in rules_of(findings)


# -- REP301: must-release -----------------------------------------------------


class TestRep301:
    def test_leak_on_exception_path_fires(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            def f(path):
                handle = open(path)
                data = handle.read()
                handle.close()
                return data
            """,
        )
        assert rules_of(findings) == ["REP301"]

    def test_with_statement_is_clean(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            def f(path):
                with open(path) as handle:
                    return handle.read()
            """,
        )
        assert findings == []

    def test_interprocedural_release_through_helper(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            def shut(handle):
                handle.close()

            def f(path):
                handle = open(path)
                shut(handle)
            """,
        )
        assert findings == []

    def test_escape_via_return_discharges_obligation(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            def f(path):
                return open(path)
            """,
        )
        assert findings == []

    def test_escape_via_attribute_store_discharges(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            class Holder:
                def open_log(self, path):
                    self.log = open(path, "r")
            """,
        )
        assert findings == []

    def test_socket_leak_fires(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            import socket

            def f(host):
                conn = socket.create_connection((host, 80))
                conn.sendall(b"ping")
            """,
        )
        assert "REP301" in rules_of(findings)


# -- REP302: atomic durable writes --------------------------------------------


class TestRep302:
    def test_bare_write_open_fires(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            def f(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
            """,
        )
        assert "REP302" in rules_of(findings)

    def test_write_text_fires(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            from pathlib import Path

            def f(path, text):
                Path(path).write_text(text)
            """,
        )
        assert "REP302" in rules_of(findings)

    def test_append_mode_is_exempt(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            def f(path, line):
                with open(path, "a") as handle:
                    handle.write(line)
            """,
        )
        assert findings == []

    def test_read_mode_is_exempt(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            def f(path):
                with open(path) as handle:
                    return handle.read()
            """,
        )
        assert findings == []

    def test_sanctioned_module_is_exempt(self, tmp_path):
        module_dir = tmp_path / "repro" / "utility"
        module_dir.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (module_dir / "__init__.py").write_text("")
        (module_dir / "atomic.py").write_text(
            textwrap.dedent(
                """
                import os

                def write(path, text):
                    with os.fdopen(os.open(path, 0), "w") as handle:
                        handle.write(text)
                """
            )
        )
        assert check_resource_safety([tmp_path], select=["REP302"]) == []


# -- REP303: temp-file lifecycle ----------------------------------------------


class TestRep303:
    def test_unreleased_temp_file_fires(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            import os
            import tempfile

            def f(data, target):
                fd, tmp = tempfile.mkstemp(dir=".")
                os.write(fd, data)
                os.close(fd)
                os.replace(tmp, target)
            """,
        )
        # os.write may raise with the tmp file on disk and no cleanup.
        assert "REP303" in rules_of(findings)

    def test_mkstemp_outside_target_dir_fires(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            import os
            import tempfile

            def f(target, data):
                fd, tmp = tempfile.mkstemp()
                try:
                    os.write(fd, data)
                finally:
                    os.close(fd)
                os.replace(tmp, target)
            """,
            select=["REP303"],
        )
        assert any("dir=" in f.message for f in findings)

    def test_guarded_same_dir_pattern_is_clean(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            import os
            import tempfile

            def f(target, text):
                fd, tmp = tempfile.mkstemp(dir=os.path.dirname(target))
                try:
                    with os.fdopen(fd, "w") as handle:
                        handle.write(text)
                    os.replace(tmp, target)
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
            """,
            select=["REP303"],
        )
        assert findings == []


# -- REP304: lock discipline --------------------------------------------------


class TestRep304:
    def test_acquisition_order_cycle_fires(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            import threading

            cache_lock = threading.Lock()
            stats_lock = threading.Lock()

            def a():
                with cache_lock:
                    with stats_lock:
                        pass

            def b():
                with stats_lock:
                    with cache_lock:
                        pass
            """,
        )
        assert "REP304" in rules_of(findings)
        assert any("cycle" in f.message for f in findings)

    def test_consistent_order_is_clean(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            import threading

            cache_lock = threading.Lock()
            stats_lock = threading.Lock()

            def a():
                with cache_lock:
                    with stats_lock:
                        pass

            def b():
                with cache_lock:
                    with stats_lock:
                        pass
            """,
        )
        assert findings == []

    def test_blocking_call_while_lock_held_fires(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            import time
            import threading

            state_lock = threading.Lock()

            def f():
                with state_lock:
                    time.sleep(5)
            """,
        )
        assert "REP304" in rules_of(findings)
        assert any("blocking" in f.message for f in findings)


# -- REP305: pools ------------------------------------------------------------


class TestRep305:
    def test_close_without_join_fires(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            import multiprocessing

            def f(items):
                pool = multiprocessing.Pool(2)
                out = pool.map(str, items)
                pool.close()
                return out
            """,
        )
        assert "REP305" in rules_of(findings)

    def test_terminate_join_in_finally_is_clean(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            import multiprocessing

            def f(items):
                pool = multiprocessing.Pool(2)
                try:
                    return pool.map(str, items)
                finally:
                    pool.terminate()
                    pool.join()
            """,
        )
        assert findings == []

    def test_with_executor_is_clean(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            from concurrent.futures import ThreadPoolExecutor

            def f(items):
                with ThreadPoolExecutor(2) as pool:
                    return list(pool.map(str, items))
            """,
        )
        assert findings == []


# -- waivers and REP300 -------------------------------------------------------


class TestWaivers:
    def test_justified_waiver_silences_and_passes_audit(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            def f(path):
                handle = open(path)  # lint: disable=REP301 -- handed to caller-managed registry
                register(handle)
            """,
        )
        assert findings == []

    def test_unjustified_waiver_fires_rep300(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            def f(path, text):
                with open(path, "w") as handle:  # lint: disable=REP302
                    handle.write(text)
            """,
        )
        assert rules_of(findings) == ["REP300"]

    def test_waiver_for_other_rule_does_not_silence(self, tmp_path):
        findings = findings_for(
            tmp_path,
            """
            def f(path, text):
                with open(path, "w") as handle:  # lint: disable=REP301 -- wrong id
                    handle.write(text)
            """,
        )
        assert "REP302" in rules_of(findings)


# -- selection, baseline, reporters -------------------------------------------


class TestSelectionAndCli:
    def test_rep3_prefix_expands_to_all_resource_rules(self):
        expanded = expand_selection(["REP3"], universe=set(RESOURCE_RULES))
        assert expanded == sorted(RESOURCE_RULES)

    def test_repo_src_is_clean_under_strict(self):
        assert main(["lint", str(REPO_SRC), "--select", "REP3", "--strict"]) == 0

    def test_repo_src_has_zero_rep3_waivers(self):
        from repro.lint.purity import analyze_program
        from repro.lint.resources import analyze_resources

        analysis = analyze_resources(analyze_program([REPO_SRC]).index)
        assert analysis.waivers == []

    def test_select_narrows_findings(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            textwrap.dedent(
                """
                def f(path, text):
                    handle = open(path, "w")
                    handle.write(text)
                """
            )
        )
        only_302 = check_resource_safety([tmp_path], select=["REP302"])
        assert rules_of(only_302) == ["REP302"]

    def test_cli_exit_one_on_violation(self, tmp_path, capsys):
        path = tmp_path / "mod.py"
        path.write_text("def f(p):\n    h = open(p)\n    return h.read()\n")
        assert main(["lint", str(tmp_path), "--select", "REP3"]) == 1
        assert "REP301" in capsys.readouterr().out

    def test_baseline_interplay(self, tmp_path, capsys):
        path = tmp_path / "mod.py"
        path.write_text("def f(p):\n    h = open(p)\n    return h.read()\n")
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "lint",
                    str(path),
                    "--select",
                    "REP3",
                    "--baseline",
                    str(baseline),
                    "--update-baseline",
                ]
            )
            == 0
        )
        capsys.readouterr()
        # With the finding baselined, the same invocation is clean.
        assert (
            main(
                [
                    "lint",
                    str(path),
                    "--select",
                    "REP3",
                    "--baseline",
                    str(baseline),
                ]
            )
            == 0
        )
        assert "1 finding(s) matched" in capsys.readouterr().out

    def test_sarif_format(self, tmp_path, capsys):
        path = tmp_path / "mod.py"
        path.write_text("def f(p):\n    h = open(p)\n    return h.read()\n")
        main(["lint", str(tmp_path), "--select", "REP3", "--format", "sarif"])
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert [rule["id"] for rule in run["tool"]["driver"]["rules"]] == [
            "REP301"
        ]
        result = run["results"][0]
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["region"]["startLine"] == 2

    def test_sarif_info_maps_to_note(self):
        from repro.lint.diagnostics import Diagnostic, Severity
        from repro.lint.report import render_sarif

        log = json.loads(
            render_sarif(
                [
                    Diagnostic(
                        rule="REP000",
                        message="m",
                        severity=Severity.INFO,
                        path="x.py",
                        line=1,
                    )
                ]
            )
        )
        assert log["runs"][0]["results"][0]["level"] == "note"


# -- shared parse cache -------------------------------------------------------


class TestParseCache:
    def test_same_file_parses_once(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("x = 1\n")
        source_a, tree_a = parse_cached(path)
        source_b, tree_b = parse_cached(path)
        assert tree_a is tree_b and source_a is source_b

    def test_modification_invalidates(self, tmp_path):
        import os

        path = tmp_path / "mod.py"
        path.write_text("x = 1\n")
        _, tree_a = parse_cached(path)
        path.write_text("x = 2\n")
        os.utime(path, ns=(1, 1))  # force a distinct fingerprint
        _, tree_b = parse_cached(path)
        assert tree_a is not tree_b

    def test_syntax_error_returns_none_tree(self, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text("def broken(:\n")
        source, tree = parse_cached(path)
        assert tree is None and "broken" in source


# -- certificates -------------------------------------------------------------


class TestCrashSafetyCertificates:
    def test_certificates_carry_crash_safety(self, tmp_path):
        certificates = api.op_certificates([REPO_SRC])
        assert certificates["schema"] == "repro.lint/op-certificates@2"
        for op in certificates["ops"].values():
            crash = op["crash_safety"]
            assert crash["verdict"] == "crash-safe"
            assert crash["findings"] == []
            assert crash["waivers"] == []

    def test_crash_safety_by_op_flags_reachable_leak(self, tmp_path):
        from repro.lint.purity import analyze_program
        from repro.lint.resources import analyze_resources

        (tmp_path / "app").mkdir()
        (tmp_path / "app" / "__init__.py").write_text("")
        (tmp_path / "app" / "ops.py").write_text(
            textwrap.dedent(
                """
                from repro.runtime.task import register_op

                def leaky(path):
                    handle = open(path)
                    return handle.read()

                @register_op("app.leaky")
                def run(path):
                    return leaky(path)
                """
            )
        )
        analysis = analyze_resources(analyze_program([tmp_path]).index)
        verdicts = crash_safety_by_op(analysis)
        assert verdicts["app.leaky"]["verdict"] == "uncertified"
        assert any("REP301" in f for f in verdicts["app.leaky"]["findings"])

    def test_committed_certificates_include_crash_safety(self):
        committed = json.loads(
            (REPO_ROOT / "lint" / "op_certificates.json").read_text()
        )
        assert committed["schema"] == "repro.lint/op-certificates@2"
        assert all(
            "crash_safety" in op for op in committed["ops"].values()
        )
