"""Tests for equivalence class computation."""

import pytest

from repro.anonymize.equivalence import EquivalenceClasses


@pytest.fixture
def classes():
    # Keys: a a b a b c  -> classes {0,1,3}, {2,4}, {5}
    return EquivalenceClasses(["a", "a", "b", "a", "b", "c"])


class TestPartition:
    def test_class_count(self, classes):
        assert len(classes) == 3

    def test_members_in_row_order(self, classes):
        assert classes[0] == (0, 1, 3)
        assert classes[1] == (2, 4)
        assert classes[2] == (5,)

    def test_class_of(self, classes):
        assert classes.class_of(0) == 0
        assert classes.class_of(4) == 1
        assert classes.class_of(5) == 2

    def test_members_of(self, classes):
        assert classes.members_of(3) == (0, 1, 3)

    def test_size_of(self, classes):
        assert classes.size_of(2) == 2

    def test_key_of_class(self, classes):
        assert classes.key_of_class(1) == "b"

    def test_row_count(self, classes):
        assert classes.row_count == 6

    def test_iteration(self, classes):
        assert list(classes) == [(0, 1, 3), (2, 4), (5,)]


class TestVectors:
    def test_sizes_per_row(self, classes):
        assert classes.sizes() == [3, 3, 2, 3, 2, 1]

    def test_class_sizes(self, classes):
        assert classes.class_sizes() == [3, 2, 1]

    def test_minimum_size(self, classes):
        assert classes.minimum_size() == 1

    def test_minimum_size_empty(self):
        assert EquivalenceClasses([]).minimum_size() == 0

    def test_value_counts(self, classes):
        histograms = classes.value_counts(["x", "y", "x", "x", "x", "z"])
        assert histograms[0] == {"x": 2, "y": 1}
        assert histograms[1] == {"x": 2}
        assert histograms[2] == {"z": 1}

    def test_value_counts_length_validated(self, classes):
        with pytest.raises(ValueError, match="expected 6"):
            classes.value_counts(["x"])

    def test_sensitive_value_counts(self, classes):
        counts = classes.sensitive_value_counts(["x", "y", "x", "x", "x", "z"])
        assert counts == [2, 1, 2, 2, 2, 1]

    def test_paper_t3a_sensitive_counts(self):
        # Classes of T3a with marital values per Section 3 of the paper.
        keys = ["A", "B", "B", "A", "C", "C", "C", "A", "B", "C"]
        marital = [
            "CF-Spouse", "Separated", "Never Married", "CF-Spouse",
            "Divorced", "Spouse Absent", "Divorced", "Spouse Present",
            "Separated", "Separated",
        ]
        classes = EquivalenceClasses(keys)
        assert classes.sensitive_value_counts(marital) == [
            2, 2, 1, 2, 2, 1, 2, 1, 2, 1
        ]
