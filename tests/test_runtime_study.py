"""Studies end to end: graph shape, serial/parallel equality, memoization,
dataset fingerprints, runtime artifact lint, and the ``repro study`` CLI."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.datasets import adult_dataset
from repro.lint.api import check_cache_store, check_run_artifacts
from repro.lint.diagnostics import Severity
from repro.runtime.cache import ResultCache
from repro.runtime.study import (
    AlgorithmSpec,
    DatasetSpec,
    StudyError,
    StudySpec,
    build_study,
    run_release_grid,
    run_study,
)

GRID = StudySpec(
    dataset=DatasetSpec.of("adult", rows=60, seed=7),
    algorithms=(
        AlgorithmSpec.of("datafly", k=2),
        AlgorithmSpec.of("mondrian", k=2),
        AlgorithmSpec.of("samarati", k=3),
    ),
    scalar_measures=("k_achieved", "suppressed"),
    vector_properties=("equivalence-class-size",),
    seed=7,
)


class TestSpecs:
    def test_unknown_names_rejected(self):
        with pytest.raises(StudyError, match="unknown algorithm"):
            AlgorithmSpec.of("no-such-algorithm", k=5)
        with pytest.raises(StudyError, match="unknown dataset"):
            DatasetSpec.of("no-such-dataset")

    def test_labels_carry_parameters(self):
        assert AlgorithmSpec.of("datafly", k=5).label == "datafly[k=5]"

    def test_study_rejects_empty_grid(self):
        with pytest.raises(StudyError, match="at least one algorithm"):
            StudySpec(dataset=DatasetSpec.of("adult"), algorithms=())


class TestGraphShape:
    def test_task_counts(self):
        graph = build_study(GRID)
        ids = list(graph.task_ids)
        anonymize = [t for t in ids if t.startswith("anonymize:")]
        measure = [t for t in ids if t.startswith("measure:")]
        compare = [t for t in ids if t.startswith("compare:")]
        assert len(anonymize) == 3
        # 2 scalars + 1 vector property per cell.
        assert len(measure) == 3 * 3
        assert len(compare) == 1
        assert len(graph) == len(anonymize) + len(measure) + len(compare)

    def test_measures_depend_on_their_release(self):
        graph = build_study(GRID)
        spec = graph.task("measure:k_achieved:datafly[k=2]")
        assert spec.deps == ("anonymize:datafly[k=2]",)


class TestStudyExecution:
    def test_serial_equals_parallel(self):
        serial = run_study(GRID, jobs=1)
        parallel = run_study(GRID, jobs=2)
        assert serial.scalars == parallel.scalars
        for label in serial.labels:
            s = serial.vectors["equivalence-class-size"][label]
            p = parallel.vectors["equivalence-class-size"][label]
            assert tuple(s.values) == tuple(p.values)
        assert serial.comparisons.keys() == parallel.comparisons.keys()
        for prop in serial.comparisons:
            assert serial.comparisons[prop]["wins"] == parallel.comparisons[prop]["wins"]

    def test_warm_cache_rerun_executes_nothing(self, tmp_path):
        cache = ResultCache(tmp_path / "store")
        cold = run_study(GRID, jobs=1, cache=cache)
        assert cold.report.executed == len(cold.report.outcomes)
        warm = run_study(GRID, jobs=1, cache=cache)
        assert warm.report.executed == 0
        assert warm.report.cache_hit_rate() == 1.0
        assert warm.scalars == cold.scalars

    def test_release_grid_matches_direct_anonymization(self, adult_h):
        specs = [AlgorithmSpec.of("datafly", k=2), AlgorithmSpec.of("mondrian", k=2)]
        dataset_spec = DatasetSpec.of("adult", rows=60, seed=7)
        releases = run_release_grid(specs, dataset_spec, jobs=2, seed=7)
        data = adult_dataset(60, seed=7)
        for spec, release in zip(specs, releases):
            direct = spec.build().anonymize(data, adult_h)
            assert release.released.rows == direct.released.rows
            assert release.suppressed == direct.suppressed


class TestDatasetFingerprint:
    def test_stable_for_identical_generation(self):
        assert (
            adult_dataset(50, seed=3).fingerprint()
            == adult_dataset(50, seed=3).fingerprint()
        )

    def test_sensitive_to_rows_and_seed(self):
        base = adult_dataset(50, seed=3).fingerprint()
        assert adult_dataset(51, seed=3).fingerprint() != base
        assert adult_dataset(50, seed=4).fingerprint() != base

    def test_column_order_independent(self):
        data = adult_dataset(40, seed=1)
        names = list(data.schema.names)
        reordered = data.project(list(reversed(names)))
        assert reordered.fingerprint() == data.fingerprint()

    def test_row_order_dependent(self):
        data = adult_dataset(40, seed=1)
        flipped = data.replace_rows(tuple(reversed(data.rows)))
        assert flipped.fingerprint() != data.fingerprint()

    def test_value_type_distinguished(self):
        # 1 and "1" must not collide: a type confusion would alias two
        # different datasets to one cache address.
        data = adult_dataset(5, seed=0)
        rows = [list(row) for row in data.rows]
        target = rows[0][0]
        rows[0][0] = str(target) if not isinstance(target, str) else int(target)
        assert data.replace_rows(rows).fingerprint() != data.fingerprint()


class TestRuntimeArtifactLint:
    def test_clean_run_and_store_pass(self, tmp_path):
        from repro.runtime.events import RunLog

        cache = ResultCache(tmp_path / "store")
        log = RunLog(tmp_path / "run")
        run_study(GRID, jobs=1, cache=cache, log=log)
        assert check_run_artifacts(tmp_path / "run") == []
        findings = check_cache_store(tmp_path / "store")
        assert [f for f in findings if f.severity is Severity.ERROR] == []

    def test_missing_manifest_reported(self, tmp_path):
        findings = check_run_artifacts(tmp_path)
        assert any(f.rule == "ART009" for f in findings)

    def test_tampered_store_reported(self, tmp_path):
        cache = ResultCache(tmp_path / "store")
        run_study(GRID, jobs=1, cache=cache)
        victim = next((tmp_path / "store" / "objects").rglob("*.pkl"))
        victim.write_bytes(b"garbage")
        findings = check_cache_store(tmp_path / "store")
        assert any(
            f.rule == "ART010" and f.severity is Severity.ERROR for f in findings
        )


class TestStudyCli:
    ARGS = [
        "study",
        "--algorithms", "datafly", "mondrian",
        "--ks", "2", "3",
        "--rows", "60",
        "--jobs", "2",
    ]

    def test_cold_then_warm_expect_cached(self, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path / "store")]
        run_dir = ["--run-dir", str(tmp_path / "run")]
        assert main(self.ARGS + cache + run_dir) == 0
        cold = capsys.readouterr().out
        assert "datafly[k=2]" in cold
        assert "dominance wins" in cold
        # Cold run with --expect-cached must fail with the documented code.
        assert main(self.ARGS + ["--cache-dir", str(tmp_path / "s2"), "--expect-cached"]) == 3
        capsys.readouterr()
        # Warm rerun over the first store: pure cache hits.
        assert main(self.ARGS + cache + ["--expect-cached"]) == 0
        warm = capsys.readouterr().out
        assert "executed: 0" in warm
        assert "(100.0%)" in warm
        # The run artifacts the cold run left behind lint clean.
        assert check_run_artifacts(tmp_path / "run") == []

    def test_no_cache_disables_memoization(self, tmp_path, capsys):
        args = self.ARGS + ["--no-cache"]
        assert main(args) == 0
        assert "cache hits: 0" in capsys.readouterr().out


class TestCompareJobs:
    def test_parallel_compare_matches_serial(self, capsys):
        base = [
            "compare",
            "--algorithms", "datafly", "mondrian",
            "--rows", "80",
        ]
        assert main(base) == 0
        serial = capsys.readouterr().out
        assert main(base + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel
