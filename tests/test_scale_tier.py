"""Scale-tier goldens: streamed digests and the pinned k-sweep.

Pins the 1M-row tier's reproducibility contract from
``tests/golden/scale_tier.json`` (see :mod:`tests.goldens_scale`):

* the 100k streamed digests re-run on whichever backend is active, so the
  no-numpy CI leg proves byte-identity of the pure-python generators
  against digests recorded under numpy;
* the 1M digest and the 100k k-sweep are numpy-gated — they exist to pin
  the scale tier the benchmarks time, and the cheap cases already cover
  the backend-equivalence claim;
* chunk-size invariance and direct python==numpy digest equality are
  asserted on small inputs on every run.
"""

from __future__ import annotations

import pytest

from repro.kernels import HAVE_NUMPY, force_backend

from .goldens_scale import (
    GOLDEN_FILE,
    SWEEP_ROWS,
    compute_digest,
    compute_ksweep,
    digest_cases,
    load_goldens,
)

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="scale-tier case is numpy-gated (see module docstring)"
)


@pytest.fixture(scope="module")
def goldens() -> dict:
    assert GOLDEN_FILE.exists(), (
        f"missing golden file {GOLDEN_FILE}; regenerate with "
        "`PYTHONPATH=src python -m tests.goldens_scale`"
    )
    return load_goldens()


SMALL_CASES = sorted(
    name for name, spec in digest_cases().items() if spec["rows"] <= SWEEP_ROWS
)
LARGE_CASES = sorted(
    name for name, spec in digest_cases().items() if spec["rows"] > SWEEP_ROWS
)


@pytest.mark.parametrize("name", SMALL_CASES)
def test_streamed_digest_matches_golden(goldens, name):
    spec = goldens["digests"][name]
    assert spec == dict(digest_cases()[name], digest=spec["digest"]), (
        "golden spec drifted from tests.goldens_scale.digest_cases(); "
        "regenerate the fixture"
    )
    assert compute_digest(spec) == spec["digest"]


@needs_numpy
@pytest.mark.parametrize("name", LARGE_CASES)
def test_large_streamed_digest_matches_golden(goldens, name):
    spec = goldens["digests"][name]
    assert compute_digest(spec) == spec["digest"]


def test_digest_independent_of_chunk_size(goldens):
    spec = dict(goldens["digests"]["adult_100k"], rows=10_000)
    assert compute_digest(spec, chunk_rows=1024) == compute_digest(
        spec, chunk_rows=3333
    )


@needs_numpy
def test_digest_identical_across_backends(goldens):
    spec = dict(goldens["digests"]["adult_100k"], rows=5_000)
    with force_backend("python"):
        scalar = compute_digest(spec)
    with force_backend("numpy"):
        vector = compute_digest(spec)
    assert scalar == vector


@needs_numpy
def test_ksweep_matches_golden(goldens):
    assert compute_ksweep() == goldens["ksweep"]
