"""Tests for plain-text figure rendering."""

import pytest

from repro.analysis import bar_chart, scatter_plot
from repro.core.vector import PropertyVector
from repro.datasets import paper_tables


class TestBarChart:
    def test_figure1_series_render(self):
        chart = bar_chart({
            "T3a": PropertyVector(paper_tables.CLASS_SIZE_T3A),
            "T3b": PropertyVector(paper_tables.CLASS_SIZE_T3B),
            "T4": PropertyVector(paper_tables.CLASS_SIZE_T4),
        })
        assert "tuple  1" in chart
        assert chart.count("T3a") == 10
        assert "#" in chart

    def test_scaling_to_peak(self):
        chart = bar_chart({"a": [1.0, 2.0]}, width=10)
        lines = [line for line in chart.splitlines() if "|" in line]
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_unequal_lengths_rejected(self):
        with pytest.raises(ValueError, match="unequal"):
            bar_chart({"a": [1.0], "b": [1.0, 2.0]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_custom_labels(self):
        chart = bar_chart({"a": [1.0]}, labels=["only"])
        assert "tuple only" in chart

    def test_wrong_label_count(self):
        with pytest.raises(ValueError, match="labels"):
            bar_chart({"a": [1.0, 2.0]}, labels=["x"])

    def test_all_zero_series(self):
        chart = bar_chart({"a": [0.0, 0.0]})
        assert "#" not in chart


class TestScatterPlot:
    def test_corners_plotted(self):
        plot = scatter_plot([(0, 0), (1, 1)], width=10, height=5)
        rows = [line for line in plot.splitlines() if line.startswith("|")]
        assert rows[0][10] == "*"   # top-right: max y at max x
        assert rows[-1][1] == "*"   # bottom-left

    def test_axis_labels(self):
        plot = scatter_plot([(0, 1), (2, 3)], x_label="loss", y_label="priv")
        assert "loss (0 .. 2)" in plot
        assert "priv (1 .. 3)" in plot

    def test_degenerate_point(self):
        plot = scatter_plot([(1, 1)])
        assert "*" in plot

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            scatter_plot([])
