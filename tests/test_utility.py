"""Tests for utility metrics: LM, DM, precision, class-size summaries."""

import pytest

from repro.anonymize.engine import recode
from repro.datasets import paper_tables
from repro.utility import (
    average_tuple_class_size,
    cell_losses,
    discernibility,
    general_loss,
    normalized_average_class_size,
    precision,
    tuple_losses,
    tuple_penalties,
    tuple_precisions,
    tuple_utilities,
)


@pytest.fixture
def hierarchies():
    return {
        "Zip Code": paper_tables.zip_hierarchy(),
        "Age": paper_tables.age_hierarchy(10, 5),
        "Marital Status": paper_tables.marital_hierarchy(),
    }


@pytest.fixture
def raw(table1, hierarchies):
    return recode(table1, hierarchies, {"Zip Code": 0, "Age": 0, "Marital Status": 0})


@pytest.fixture
def top(table1, hierarchies):
    return recode(table1, hierarchies, {"Zip Code": 5, "Age": 2, "Marital Status": 2})


class TestLossMetric:
    def test_raw_release_loses_nothing(self, raw, hierarchies):
        assert tuple_losses(raw, hierarchies) == [0.0] * 10
        assert general_loss(raw, hierarchies) == 0.0

    def test_top_release_loses_everything(self, top, hierarchies):
        assert tuple_losses(top, hierarchies) == [3.0] * 10
        assert general_loss(top, hierarchies) == 1.0

    def test_t3a_cell_losses(self, t3a, hierarchies):
        losses = cell_losses(t3a, hierarchies)
        # Tuple 1: zip 1305* covers {13053,13052} of 6 -> 1/5;
        # age band width 10 over domain 120 -> 1/12;
        # Married covers 2 of 6 -> 1/5.
        assert losses[0]["Zip Code"] == pytest.approx(1 / 5)
        assert losses[0]["Age"] == pytest.approx(10 / 120)
        assert losses[0]["Marital Status"] == pytest.approx(1 / 5)

    def test_utilities_complement(self, t3a, hierarchies):
        losses = tuple_losses(t3a, hierarchies)
        utilities = tuple_utilities(t3a, hierarchies)
        assert all(
            utility == pytest.approx(3.0 - loss)
            for loss, utility in zip(losses, utilities)
        )

    def test_monotone_in_generalization(self, t3a, t3b, hierarchies):
        hierarchies_b = dict(hierarchies, Age=paper_tables.age_hierarchy(20, 15))
        a_losses = tuple_losses(t3a, hierarchies)
        b_losses = tuple_losses(t3b, hierarchies_b)
        assert all(a <= b + 1e-12 for a, b in zip(a_losses, b_losses))

    def test_missing_hierarchy(self, t3a, hierarchies):
        from repro.anonymize.engine import AnonymizationError

        del hierarchies["Age"]
        with pytest.raises(AnonymizationError, match="missing"):
            tuple_losses(t3a, hierarchies)


class TestDiscernibility:
    def test_per_tuple_is_class_size(self, t3a):
        assert tuple_penalties(t3a) == list(paper_tables.CLASS_SIZE_T3A)

    def test_scalar_dm(self, t3a):
        # Sum of class size squared: 3^2 + 3^2 + 4^2 ... per class.
        assert discernibility(t3a) == 3 * 3 + 3 * 3 + 4 * 4

    def test_suppressed_rows_charged_n(self, table1, raw, hierarchies):
        suppressed = recode(
            table1,
            hierarchies,
            {"Zip Code": 0, "Age": 0, "Marital Status": 0},
            suppress=[0, 1],
        )
        penalties = tuple_penalties(suppressed)
        assert penalties[0] == penalties[1] == 10

    def test_raw_release_dm_is_n(self, raw):
        assert discernibility(raw) == 10  # every class is a singleton


class TestPrecision:
    def test_raw_release_full_precision(self, raw, hierarchies):
        assert precision(raw, hierarchies) == 1.0

    def test_top_release_zero_precision(self, top, hierarchies):
        assert precision(top, hierarchies) == pytest.approx(0.0)

    def test_t3a_precision(self, t3a, hierarchies):
        # Heights: zip 5, age 2, marital 2; all at level 1 ->
        # climbed fractions 1/5, 1/2, 1/2.
        expected = 1.0 - (1 / 5 + 1 / 2 + 1 / 2) / 3
        assert precision(t3a, hierarchies) == pytest.approx(expected)

    def test_suppressed_rows_zero_precision(self, table1, hierarchies):
        anonymization = recode(
            table1,
            hierarchies,
            {"Zip Code": 1, "Age": 1, "Marital Status": 1},
            suppress=[3],
        )
        values = tuple_precisions(anonymization, hierarchies)
        assert values[3] == pytest.approx(0.0)
        assert values[0] > 0

    def test_local_recoding_fallback(self, table1, hierarchies):
        from repro.anonymize.algorithms import Mondrian

        anonymization = Mondrian(2).anonymize(table1, hierarchies)
        values = tuple_precisions(anonymization, hierarchies)
        assert all(0.0 <= value <= 1.0 for value in values)


class TestClassSizeSummaries:
    def test_paper_s_avg(self, t3a):
        assert average_tuple_class_size(t3a) == pytest.approx(3.4)

    def test_c_avg(self, t3a):
        # 10 rows, 3 classes, k=3 -> 10/9.
        assert normalized_average_class_size(t3a, 3) == pytest.approx(10 / 9)

    def test_c_avg_invalid_k(self, t3a):
        with pytest.raises(ValueError):
            normalized_average_class_size(t3a, 0)
