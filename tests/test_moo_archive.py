"""Tests for Pareto archives, ε-dominance and knee selection, plus the
Mondrian l-diversity variant."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.moo import EpsilonParetoArchive, ParetoArchive, knee_point
from repro.moo.pareto import dominates

points = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=10, allow_nan=False),
        st.floats(min_value=0, max_value=10, allow_nan=False),
    ),
    min_size=1,
    max_size=30,
)


class TestParetoArchive:
    def test_accepts_non_dominated(self):
        archive = ParetoArchive()
        assert archive.add("a", (1, 3))
        assert archive.add("b", (3, 1))
        assert len(archive) == 2

    def test_rejects_dominated(self):
        archive = ParetoArchive()
        archive.add("a", (1, 1))
        assert not archive.add("b", (2, 2))
        assert len(archive) == 1

    def test_rejects_duplicate_objectives(self):
        archive = ParetoArchive()
        archive.add("a", (1, 1))
        assert not archive.add("b", (1, 1))

    def test_evicts_dominated_members(self):
        archive = ParetoArchive()
        archive.add("a", (2, 2))
        archive.add("b", (3, 1))
        # (1,1) dominates both existing members and evicts them.
        assert archive.add("c", (1, 1))
        assert "a" not in archive
        assert "b" not in archive
        assert len(archive) == 1

    def test_eviction_keeps_incomparable(self):
        archive = ParetoArchive()
        archive.add("a", (2, 2))
        archive.add("b", (0, 5))
        assert archive.add("c", (1, 1))  # dominates a, not b
        assert "b" in archive
        assert len(archive) == 2

    def test_payload_listing(self):
        archive = ParetoArchive()
        archive.add("a", (1, 3))
        archive.add("b", (3, 1))
        assert set(archive.payloads) == {"a", "b"}
        assert len(archive.objectives) == 2

    @given(points)
    def test_archive_members_mutually_non_dominated(self, candidates):
        archive = ParetoArchive()
        for index, point in enumerate(candidates):
            archive.add(index, point)
        members = archive.objectives
        for i, a in enumerate(members):
            for j, b in enumerate(members):
                if i != j:
                    assert not dominates(a, b)

    @given(points)
    def test_every_candidate_dominated_or_archived(self, candidates):
        archive = ParetoArchive()
        for index, point in enumerate(candidates):
            archive.add(index, point)
        for point in candidates:
            point = tuple(map(float, point))
            assert any(
                member == point or dominates(member, point)
                for member in archive.objectives
            )


class TestEpsilonArchive:
    def test_box_deduplication(self):
        archive = EpsilonParetoArchive(epsilon=1.0)
        assert archive.add("a", (0.9, 0.9))
        # Same box, farther from the corner: rejected.
        assert not archive.add("b", (0.95, 0.95))
        # Same box, closer to the corner: replaces.
        assert archive.add("c", (0.1, 0.1))
        assert len(archive) == 1
        assert "c" in archive

    def test_bounded_size(self):
        archive = EpsilonParetoArchive(epsilon=2.0)
        for i in range(100):
            archive.add(i, (i * 0.1, 10 - i * 0.1))
        # At most ceil(10/2)+1 boxes can coexist along the front.
        assert len(archive) <= 6

    def test_box_domination(self):
        archive = EpsilonParetoArchive(epsilon=1.0)
        archive.add("a", (0.5, 0.5))     # box (0,0)
        assert not archive.add("b", (1.5, 1.5))  # box (1,1), box-dominated

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            EpsilonParetoArchive(epsilon=0.0)


class TestKneePoint:
    def test_balanced_member_wins(self):
        archive = ParetoArchive()
        archive.add("extreme-a", (0.0, 10.0))
        archive.add("extreme-b", (10.0, 0.0))
        archive.add("knee", (3.0, 3.0))
        assert knee_point(archive) == "knee"

    def test_single_member(self):
        archive = ParetoArchive()
        archive.add("only", (1.0, 2.0))
        assert knee_point(archive) == "only"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            knee_point(ParetoArchive())

    def test_accepts_raw_sequences(self):
        entries = [("a", (0.0, 1.0)), ("b", (1.0, 0.0)), ("c", (0.4, 0.4))]
        assert knee_point(entries) == "c"


class TestMondrianDiversity:
    def test_variant_guarantees_l(self):
        from repro import DistinctLDiversity, Mondrian
        from repro.datasets import skewed_dataset, synthetic_hierarchies

        data = skewed_dataset(400, 1.5, seed=5)
        hierarchies = synthetic_hierarchies()
        model = DistinctLDiversity(4, "condition")
        plain = Mondrian(5).anonymize(data, hierarchies)
        diverse = Mondrian(
            5, l_diversity=4, sensitive_attribute="condition"
        ).anonymize(data, hierarchies)
        assert not model.satisfied_by(plain)  # the gap the variant closes
        assert model.satisfied_by(diverse)
        assert diverse.k() >= 5

    def test_diversity_costs_utility(self):
        from repro import Mondrian
        from repro.datasets import skewed_dataset, synthetic_hierarchies
        from repro.utility import general_loss

        data = skewed_dataset(400, 1.5, seed=5)
        hierarchies = synthetic_hierarchies()
        plain = Mondrian(5).anonymize(data, hierarchies)
        diverse = Mondrian(
            5, l_diversity=4, sensitive_attribute="condition"
        ).anonymize(data, hierarchies)
        assert general_loss(diverse, hierarchies) >= general_loss(
            plain, hierarchies
        )

    def test_invalid_l(self):
        from repro import Mondrian

        with pytest.raises(ValueError):
            Mondrian(5, l_diversity=0)

    def test_name_mentions_l(self):
        from repro import Mondrian

        assert "l=3" in Mondrian(5, l_diversity=3).name
