"""Tests for CSV round-trips."""

import pytest

from repro.datasets import paper_tables, read_csv, write_csv
from repro.datasets.dataset import DatasetError
from repro.hierarchy import Interval


class TestRoundTrip:
    def test_raw_table(self, table1, tmp_path):
        path = tmp_path / "t1.csv"
        write_csv(table1, path)
        restored = read_csv(path, table1.schema)
        assert restored == table1

    def test_generalized_release(self, t3a, tmp_path):
        path = tmp_path / "t3a.csv"
        write_csv(t3a.released, path)
        restored = read_csv(path, t3a.released.schema)
        assert restored.value(0, "Age") == Interval(25, 35)
        assert restored.value(0, "Zip Code") == "1305*"

    def test_suppressed_numeric_cell(self, table1, tmp_path):
        from repro.anonymize.engine import recode

        hierarchies = {
            "Zip Code": paper_tables.zip_hierarchy(),
            "Age": paper_tables.age_hierarchy(10, 5),
            "Marital Status": paper_tables.marital_hierarchy(),
        }
        anonymization = recode(
            table1,
            hierarchies,
            {"Zip Code": 1, "Age": 1, "Marital Status": 1},
            suppress=[0],
        )
        path = tmp_path / "sup.csv"
        write_csv(anonymization.released, path)
        restored = read_csv(path, anonymization.released.schema)
        assert restored.value(0, "Age") == "*"

    def test_header_mismatch_rejected(self, table1, tmp_path):
        path = tmp_path / "t1.csv"
        write_csv(table1, path)
        other_schema = table1.project(["Age", "Zip Code"]).schema
        with pytest.raises(DatasetError, match="header"):
            read_csv(path, other_schema)

    def test_empty_file_rejected(self, table1, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DatasetError, match="empty"):
            read_csv(path, table1.schema)

    def test_float_age_parsing(self, tmp_path, table1):
        path = tmp_path / "float.csv"
        path.write_text(
            "Zip Code,Age,Marital Status\n13053,28.5,CF-Spouse\n"
        )
        restored = read_csv(path, table1.schema)
        assert restored.value(0, "Age") == 28.5
