"""Tests for repro.utility.atomic — the sanctioned atomic writer.

The contract: readers racing the writer (or a process dying mid-write)
see either the complete old bytes or the complete new bytes, never a
torn file; a failed write leaves no temp debris; temp names are dotted
so directory scanners skip them.
"""

import os
from pathlib import Path

import pytest

from repro.utility import atomic_write_bytes, atomic_write_text, atomic_writer


def test_text_roundtrip(tmp_path):
    target = tmp_path / "out.txt"
    returned = atomic_write_text(target, "hello\n")
    assert returned == target
    assert target.read_text(encoding="utf-8") == "hello\n"


def test_bytes_roundtrip(tmp_path):
    target = tmp_path / "out.bin"
    atomic_write_bytes(target, b"\x00\x01payload")
    assert target.read_bytes() == b"\x00\x01payload"


def test_overwrites_existing_content(tmp_path):
    target = tmp_path / "out.txt"
    target.write_text("old")
    atomic_write_text(target, "new")
    assert target.read_text() == "new"


def test_creates_missing_parent_directories(tmp_path):
    target = tmp_path / "a" / "b" / "out.txt"
    atomic_write_text(target, "deep")
    assert target.read_text() == "deep"


def test_failure_preserves_old_bytes_and_leaves_no_debris(tmp_path):
    target = tmp_path / "out.txt"
    target.write_text("precious")
    with pytest.raises(RuntimeError):
        with atomic_writer(target, "w") as handle:
            handle.write("half-writ")
            raise RuntimeError("crash mid-write")
    assert target.read_text() == "precious"
    assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]


def test_failure_on_fresh_target_leaves_nothing(tmp_path):
    target = tmp_path / "fresh.txt"
    with pytest.raises(ValueError):
        with atomic_writer(target, "w") as handle:
            handle.write("x")
            raise ValueError("boom")
    assert list(tmp_path.iterdir()) == []


def test_temp_file_lives_in_target_directory_and_is_dotted(tmp_path):
    target = tmp_path / "out.txt"
    seen = []
    with atomic_writer(target, "w") as handle:
        handle.write("x")
        seen = [p.name for p in tmp_path.iterdir()]
    assert len(seen) == 1
    assert seen[0].startswith(".out.txt.") and seen[0].endswith(".tmp")
    # Dotted names are invisible to glob-style scanners.
    assert list(tmp_path.glob("*.tmp")) == []


def test_rejects_read_and_append_modes(tmp_path):
    for mode in ("r", "a", "r+", "w+"):
        with pytest.raises(ValueError):
            with atomic_writer(tmp_path / "out", mode):
                pass


def test_binary_mode(tmp_path):
    target = tmp_path / "out.bin"
    with atomic_writer(target, "wb") as handle:
        handle.write(b"abc")
    assert target.read_bytes() == b"abc"


def test_newline_forwarded(tmp_path):
    target = tmp_path / "out.csv"
    with atomic_writer(target, "w", newline="") as handle:
        handle.write("a\r\nb\r\n")
    assert target.read_bytes() == b"a\r\nb\r\n"


def test_fsync_path_still_replaces(tmp_path):
    target = tmp_path / "out.txt"
    atomic_write_text(target, "synced", fsync=True)
    assert target.read_text() == "synced"


def test_replace_is_same_filesystem(tmp_path, monkeypatch):
    """The tmp file must be created next to the target, not in $TMPDIR."""
    observed = {}
    real_replace = os.replace

    def spying_replace(src, dst):
        observed["src"] = Path(src)
        return real_replace(src, dst)

    monkeypatch.setattr(os, "replace", spying_replace)
    target = tmp_path / "out.txt"
    atomic_write_text(target, "x")
    assert observed["src"].parent == target.parent
