"""The workload driver and bench plane: plans, documents, ART013."""

import argparse
import json

import pytest

from repro.lint import api
from repro.serve import (
    SERVE_BENCH_SCHEMA,
    WORKLOAD_ENDPOINTS,
    anonymize_hit_rate,
    build_plan,
    summarize,
    write_bench,
)
from repro.serve.cli import configure_bench_parser, run_bench
from repro.serve.workload import percentile


def _bench_args(**overrides):
    parser = argparse.ArgumentParser()
    configure_bench_parser(parser)
    argv = ["serve", "--rows", "60", "--clients", "4"]
    for flag, value in overrides.items():
        argv.append(f"--{flag.replace('_', '-')}")
        if value is not True:
            argv.append(str(value))
    return parser.parse_args(argv)


class TestPlans:
    def test_plans_are_deterministic_per_client(self):
        assert build_plan(42, 0, 12) == build_plan(42, 0, 12)
        assert build_plan(42, 0, 12) != build_plan(42, 1, 12)
        assert build_plan(42, 0, 12) != build_plan(7, 0, 12)

    def test_full_plan_opens_with_every_endpoint(self):
        plan = build_plan(42, 3, len(WORKLOAD_ENDPOINTS))
        assert [endpoint for endpoint, _, _ in plan] == list(WORKLOAD_ENDPOINTS)

    def test_every_query_shape_is_in_the_endpoint_mix(self):
        shapes = {
            endpoint.split(":", 1)[1]
            for endpoint in WORKLOAD_ENDPOINTS
            if endpoint.startswith("query:")
        }
        assert shapes == {"point", "range", "groupby", "topk", "distinct", "join"}

    def test_join_requests_carry_a_distinct_other_cell(self):
        for index in range(4):
            for endpoint, path, body in build_plan(42, index, 30):
                if endpoint == "query:join":
                    assert path == "/query"
                    assert body["other"] != body["algorithm"]

    def test_plan_rejects_non_positive_requests(self):
        with pytest.raises(ValueError):
            build_plan(42, 0, 0)


class TestPercentile:
    def test_single_sample(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_interpolates(self):
        assert percentile([0.0, 10.0], 0.5) == 5.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 1.0) == 4.0
        assert percentile([4.0, 3.0, 1.0, 2.0], 0.0) == 1.0


class TestSummarize:
    def _raw(self):
        return {
            "clients": 4,
            "requests": 8,
            "errors": [],
            "duration_s": 2.0,
            "by_endpoint": {
                "anonymize": [5.0, 7.0, 6.0, 8.0],
                "query:point": [1.0, 2.0, 1.5, 1.2],
            },
        }

    def test_document_shape_and_percentile_order(self):
        doc = summarize(self._raw(), quick=True, anonymize_cache_hit_rate=1.0)
        assert doc["schema"] == SERVE_BENCH_SCHEMA
        assert doc["throughput_rps"] == pytest.approx(4.0)
        assert doc["anonymize_cache_hit_rate"] == 1.0
        for stats in doc["endpoints"].values():
            assert stats["p50_ms"] <= stats["p95_ms"] <= stats["p99_ms"]

    def test_document_passes_art013(self, tmp_path):
        doc = summarize(self._raw())
        path = write_bench(doc, tmp_path / "BENCH_serve.json")
        assert api.check_serve_bench_artifacts(path) == []


class TestArt013:
    def _valid(self):
        return {
            "schema": SERVE_BENCH_SCHEMA,
            "suite": "serve",
            "git_rev": "abc1234",
            "quick": False,
            "clients": 4,
            "requests": 36,
            "errors": 0,
            "duration_s": 1.0,
            "throughput_rps": 36.0,
            "endpoints": {
                "anonymize": {
                    "requests": 4, "p50_ms": 5.0, "p95_ms": 9.0, "p99_ms": 9.5
                }
            },
        }

    def _check(self, tmp_path, doc):
        path = tmp_path / "BENCH_serve.json"
        path.write_text(json.dumps(doc))
        return api.check_serve_bench_artifacts(path)

    def test_valid_document_is_clean(self, tmp_path):
        assert self._check(tmp_path, self._valid()) == []

    def test_missing_file_and_bad_json(self, tmp_path):
        assert api.check_serve_bench_artifacts(tmp_path / "nope.json")
        bad = tmp_path / "BENCH_serve.json"
        bad.write_text("{broken")
        assert api.check_serve_bench_artifacts(bad)

    def test_wrong_schema_rejected(self, tmp_path):
        doc = self._valid()
        doc["schema"] = "repro.bench/trajectory@1"
        findings = self._check(tmp_path, doc)
        assert any("schema" in f.message for f in findings)

    @pytest.mark.parametrize(
        "field,value,fragment",
        [
            ("git_rev", "", "git_rev"),
            ("clients", 0, "clients"),
            ("throughput_rps", 0, "throughput_rps"),
            ("endpoints", {}, "endpoints"),
        ],
    )
    def test_run_level_violations(self, tmp_path, field, value, fragment):
        doc = self._valid()
        doc[field] = value
        findings = self._check(tmp_path, doc)
        assert any(fragment in f.message for f in findings)
        assert all(f.rule == "ART013" for f in findings)

    def test_percentile_inversion_rejected(self, tmp_path):
        doc = self._valid()
        doc["endpoints"]["anonymize"]["p95_ms"] = 99.0
        doc["endpoints"]["anonymize"]["p99_ms"] = 9.0
        findings = self._check(tmp_path, doc)
        assert any("non-decreasing" in f.message for f in findings)

    def test_lint_cli_routes_serve_documents_to_art013(self, tmp_path):
        # The generic --runtime BENCH_*.json entry point must dispatch on
        # the schema tag, not the filename.
        from repro.lint.cli import _check_bench_file

        doc = self._valid()
        doc["throughput_rps"] = 0
        path = tmp_path / "BENCH_custom.json"
        path.write_text(json.dumps(doc))
        findings = _check_bench_file(path)
        assert findings and all(f.rule == "ART013" for f in findings)
        trajectory = tmp_path / "BENCH_other.json"
        trajectory.write_text(json.dumps({"schema": "repro.bench/trajectory@1"}))
        findings = _check_bench_file(trajectory)
        assert findings and all(f.rule == "ART012" for f in findings)


class TestBenchCommand:
    def test_cold_then_warm_expect_cached(self, tmp_path):
        # One end-to-end pass of `repro bench serve`: the cold run computes
        # and records a valid document; the warm rerun against the same
        # cache dir serves anonymize purely from cache and passes
        # --expect-cached; a cold cache under --expect-cached exits 3.
        cache_dir = tmp_path / "cache"
        bench = tmp_path / "BENCH_serve.json"
        code = run_bench(_bench_args(cache_dir=cache_dir, bench_json=bench))
        assert code == 0
        doc = json.loads(bench.read_text())
        assert doc["schema"] == SERVE_BENCH_SCHEMA
        assert doc["clients"] == 4
        assert set(doc["endpoints"]) == set(WORKLOAD_ENDPOINTS)
        assert api.check_serve_bench_artifacts(bench) == []
        assert doc["errors"] == 0
        assert 0 < doc["anonymize_cache_hit_rate"] < 1.0

        code = run_bench(
            _bench_args(
                cache_dir=cache_dir, bench_json=bench, expect_cached=True
            )
        )
        assert code == 0
        warm = json.loads(bench.read_text())
        assert warm["anonymize_cache_hit_rate"] == 1.0

        code = run_bench(
            _bench_args(
                cache_dir=tmp_path / "cold", bench_json=bench,
                expect_cached=True,
            )
        )
        assert code == 3

    def test_bench_exports_obs_artifacts(self, tmp_path):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        code = run_bench(
            _bench_args(
                no_cache=True,
                bench_json=tmp_path / "BENCH_serve.json",
                trace=trace,
                metrics=metrics,
            )
        )
        assert code == 0
        assert api.check_obs_artifacts(trace) == []
        assert api.check_obs_artifacts(metrics) == []
        counters = json.loads(metrics.read_text())["counters"]
        for endpoint in ("anonymize", "properties", "compare", "query"):
            assert counters[f"serve.request.{endpoint}"] >= 4


class TestHitRate:
    def test_hit_rate_math(self):
        snapshot = {
            "counters": {
                "serve.release.memory_hit": 6,
                "serve.release.disk_hit": 2,
                "serve.release.computed": 2,
            }
        }
        assert anonymize_hit_rate(snapshot) == pytest.approx(0.8)

    def test_no_traffic_is_none(self):
        assert anonymize_hit_rate({"counters": {}}) is None
