"""Documentation conformance: the import blocks in docs/api.md must work.

A stale API tour is worse than none; every ``from repro... import ...``
line in the docs is executed here.
"""

import re
from pathlib import Path

import pytest

DOCS = Path(__file__).resolve().parent.parent / "docs"
README = Path(__file__).resolve().parent.parent / "README.md"

IMPORT_PATTERN = re.compile(
    r"^(?:from\s+repro[\w.]*\s+import\s+\(?[^)]*?\)?|import\s+repro[\w.]*)\s*$",
    re.MULTILINE,
)


def _import_statements(text: str) -> list[str]:
    def strip_comment(line: str) -> str:
        return line.split("#", 1)[0].rstrip()

    statements = []
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        stripped = strip_comment(lines[index]).strip()
        if stripped.startswith(("from repro", "import repro")):
            statement = stripped
            while statement.count("(") > statement.count(")") and (
                index + 1 < len(lines)
            ):
                index += 1
                statement += " " + strip_comment(lines[index]).strip()
            statements.append(statement)
        index += 1
    return statements


@pytest.mark.parametrize(
    "document",
    sorted(DOCS.glob("*.md")) + [README],
    ids=lambda path: path.name,
)
def test_documented_imports_resolve(document):
    statements = _import_statements(document.read_text())
    for statement in statements:
        exec(statement, {})  # noqa: S102 — the docs are ours


def test_docs_exist():
    expected = {"api.md", "algorithms.md", "paper_mapping.md", "tutorial.md"}
    assert {path.name for path in DOCS.glob("*.md")} >= expected
