"""Property tests pinning the two kernel backends to each other.

The kernel layer's contract is *exact* observable equality: for every
operation, the numpy backend must return the same values (labels, sizes,
minima, histograms, interned codes) as the pure-python backend — not
merely isomorphic ones.  These tests drive both backends over
hypothesis-generated and adversarially constructed inputs:

* single-class partitions (constant columns),
* all-rows-suppressed recodings,
* mixed-radix packing at the int64 re-densify boundary,
* empty columns,
* codes far beyond int32,
* mixed-type columns the vectorized intern must decline rather than
  silently coerce.

The counter PRNG's scalar and vectorized paths are pinned here too, since
the generators' byte-identity rests on them.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import HAVE_NUMPY, active, backend_name, force_backend
from repro.kernels.prng import (
    CounterStream,
    bounded_int,
    categorical,
    cumulative_weights,
)

requires_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="numpy backend not installed"
)

#: Code values spanning small domains, int32 overflow and the int64 edge.
codes_strategy = st.integers(min_value=0, max_value=2**40 - 1)
column_strategy = st.lists(codes_strategy, min_size=0, max_size=40)


def on_both_backends(operation):
    """Run ``operation(kernels)`` on each available backend."""
    results = {}
    backends = ["python"] + (["numpy"] if HAVE_NUMPY else [])
    for name in backends:
        with force_backend(name):
            results[name] = operation(active())
    return results


def assert_backends_agree(operation):
    results = on_both_backends(operation)
    if len(results) == 2:
        assert results["python"] == results["numpy"]
    return results["python"]


def full_grouping(kernels, columns, radixes):
    """Pack columns mixed-radix, then group: the plane's inner loop."""
    if not columns:
        return [], [], [], 0
    combined = kernels.asarray(columns[0])
    combined, _ = kernels.densify(combined)
    for column, radix in zip(columns[1:], radixes[1:]):
        combined = kernels.pack(combined, radix, kernels.asarray(column))
    reps, labels, count = kernels.group(combined)
    sizes = kernels.bincount(labels, count)
    return (
        kernels.tolist(reps),
        kernels.tolist(labels),
        kernels.tolist(sizes),
        count,
    )


class TestGroupingEquivalence:
    @given(st.lists(column_strategy, min_size=1, max_size=3))
    @settings(max_examples=60, deadline=None)
    def test_pack_group_sizes_identical(self, columns):
        rows = min(len(column) for column in columns)
        columns = [column[:rows] for column in columns]
        radixes = [max(column, default=0) + 1 for column in columns]
        reps, labels, sizes, count = assert_backends_agree(
            lambda kernels: full_grouping(kernels, columns, radixes)
        )
        assert len(labels) == rows
        assert sum(sizes) == rows
        # Canonical labels: group g's representative row is its first
        # occurrence, and reps are strictly increasing in... no — reps are
        # ordered by packed value rank, so only validity is asserted.
        for group, representative in enumerate(reps):
            assert labels[representative] == group

    @given(st.integers(min_value=0, max_value=50), codes_strategy)
    @settings(max_examples=30, deadline=None)
    def test_single_class_partition(self, rows, value):
        column = [value] * rows
        reps, labels, sizes, count = assert_backends_agree(
            lambda kernels: full_grouping(kernels, [column], [value + 1])
        )
        if rows:
            assert count == 1 and sizes == [rows] and reps == [0]
        else:
            assert count == 0 and sizes == []

    def test_empty_columns(self):
        result = assert_backends_agree(
            lambda kernels: full_grouping(kernels, [[], []], [1, 1])
        )
        assert result == ([], [], [], 0)

    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_all_rows_suppressed(self, column):
        """Suppression scatter-fills one code over every row, then packs."""
        suppression_code = 6

        def operation(kernels):
            codes = kernels.gather(
                kernels.asarray(list(range(7))), kernels.asarray(column)
            )
            kernels.scatter_fill(
                codes, kernels.asarray(list(range(len(column)))), suppression_code
            )
            combined = kernels.pack(
                kernels.asarray([0] * len(column)), 7, codes
            )
            reps, labels, count = kernels.group(combined)
            return (
                kernels.tolist(reps),
                kernels.tolist(labels),
                count,
            )

        reps, labels, count = assert_backends_agree(operation)
        assert count == 1 and set(labels) == {0} and reps == [0]

    @given(
        st.lists(
            st.integers(min_value=0, max_value=2**40 - 1),
            min_size=1,
            max_size=30,
        ),
        st.lists(
            st.integers(min_value=0, max_value=2**40 - 1),
            min_size=1,
            max_size=30,
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_redensify_prevents_int64_overflow(self, first, second):
        """Two radix-2^40 packs overflow int64 unless each step re-densifies.

        The naive product ``c1 * 2^40 * 2^40 + ...`` exceeds 2^63; the
        contract (labels stay below ``rows * radix``) keeps every
        intermediate in range, and both backends must agree on the result.
        """
        rows = min(len(first), len(second))
        columns = [first[:rows], second[:rows]]
        radixes = [2**40, 2**40]
        reps, labels, sizes, count = assert_backends_agree(
            lambda kernels: full_grouping(kernels, columns, radixes)
        )
        assert sum(sizes) == rows

    def test_codes_beyond_int32_at_int64_edge(self):
        """A radix-2^62 pack step: products touch the int64 boundary."""
        column = [0, 1, 1, 0]
        combined = [0, 0, 1, 1]

        def operation(kernels):
            packed = kernels.pack(
                kernels.asarray(combined), 2**62, kernels.asarray(column)
            )
            return kernels.tolist(packed)

        labels = assert_backends_agree(operation)
        assert labels == [0, 1, 3, 2]

    @given(
        st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=50),
        st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_grouped_value_counts_identical(self, class_codes, value_codes):
        rows = min(len(class_codes), len(value_codes))
        class_codes = class_codes[:rows]
        value_codes = value_codes[:rows]

        def operation(kernels):
            labels, count = kernels.densify(kernels.asarray(class_codes))
            return kernels.grouped_value_counts(
                labels, count, kernels.asarray(value_codes)
            )

        histograms = assert_backends_agree(operation)
        assert sum(
            count for per_class in histograms for _, count in per_class
        ) == rows

    @given(
        st.lists(st.integers(min_value=0, max_value=8), min_size=1, max_size=40),
        st.lists(st.integers(min_value=1, max_value=7), min_size=9, max_size=9),
    )
    @settings(max_examples=40, deadline=None)
    def test_fold_reductions_identical(self, child_of_group, parent_values):
        """fold_add / fold_min drive the incremental-coarsening minima."""
        count = 9
        parent_count = len(child_of_group)

        parent_row_values = (parent_values * 40)[:parent_count]

        def operation(kernels):
            child = kernels.asarray(child_of_group)
            sizes = kernels.fold_add(
                child, kernels.asarray([1] * parent_count), count
            )
            minima = kernels.fold_min(
                child, kernels.asarray(parent_row_values), count, fill=99
            )
            return kernels.tolist(sizes), kernels.tolist(minima)

        sizes, minima = assert_backends_agree(operation)
        assert sum(sizes) == parent_count

    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=0, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_scans_identical(self, values):
        def operation(kernels):
            array = kernels.asarray(values)
            return (
                kernels.flatnonzero_less(array, 10),
                kernels.count_less(array, 10),
                kernels.sum_less(array, 10),
            )

        rows, count, total = assert_backends_agree(operation)
        assert count == len(rows)


value_strategy = st.one_of(
    st.text(max_size=6),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.booleans(),
    st.floats(allow_nan=False, allow_infinity=True),
)


def reference_intern(values):
    """The dict-loop interning contract (first occurrence order)."""
    lookup = {}
    codes = []
    for value in values:
        code = lookup.get(value)
        if code is None:
            code = len(lookup)
            lookup[value] = code
        codes.append(code)
    return codes, tuple(lookup)


class TestInternEquivalence:
    @requires_numpy
    @given(st.lists(st.text(max_size=5), max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_string_columns(self, values):
        self.assert_matches_reference(tuple(values))

    @requires_numpy
    @given(st.lists(st.integers(min_value=-(2**40), max_value=2**40), max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_int_columns(self, values):
        self.assert_matches_reference(tuple(values))

    @requires_numpy
    @given(
        st.lists(st.floats(allow_nan=False, allow_infinity=True), max_size=50)
    )
    @settings(max_examples=60, deadline=None)
    def test_float_columns(self, values):
        self.assert_matches_reference(tuple(values))

    @requires_numpy
    @given(st.lists(value_strategy, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_never_wrong_only_declined(self, values):
        """On any column: either decline (None) or match the dict loop."""
        self.assert_matches_reference(tuple(values), allow_decline=True)

    @requires_numpy
    def test_mixed_types_declined(self):
        """int 1 and str "1" must not merge (np.asarray would stringify)."""
        with force_backend("numpy"):
            assert active().intern((1, "1", 2.5)) is None

    @requires_numpy
    def test_nul_strings_declined(self):
        """Fixed-width unicode strips trailing NULs — 'a' would merge
        with 'a\\x00'; such columns must take the dict loop."""
        with force_backend("numpy"):
            assert active().intern(("a", "a\x00")) is None

    @requires_numpy
    def test_huge_ints_declined(self):
        """Beyond-int64 values cannot take the vectorized path."""
        with force_backend("numpy"):
            assert active().intern((2**70, 0)) is None

    @requires_numpy
    def test_nan_declined(self):
        """NaN breaks hash-equality interning; the fast path must decline."""
        with force_backend("numpy"):
            assert active().intern((float("nan"), 1.0)) is None

    @staticmethod
    def assert_matches_reference(values, allow_decline=False):
        with force_backend("numpy"):
            interned = active().intern(values)
            if interned is None:
                kinds = {type(value) for value in values}
                nul_strings = kinds == {str} and any(
                    "\x00" in value for value in values
                )
                if allow_decline or nul_strings:
                    return
                # Homogeneous columns must take the fast path; a decline
                # would silently lose the scale-tier speedup.
                assert kinds and kinds not in ({str}, {int}, {bool}, {float}), (
                    f"fast path declined a homogeneous column of {kinds}"
                )
                return
            codes, decode = interned
        expected_codes, expected_decode = reference_intern(values)
        assert list(codes) == expected_codes
        assert decode == expected_decode
        # Identity, not just equality: each decode entry must be the exact
        # first-occurrence object of its group (what the dict loop keeps).
        for actual, expected in zip(decode, expected_decode):
            assert actual is expected


class TestCounterPrng:
    @given(st.integers(min_value=0, max_value=2**63), st.text(max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_doubles_in_unit_interval(self, seed, name):
        stream = CounterStream(seed, name, 3)
        for row in range(20):
            for draw in range(3):
                value = stream.double(row, draw)
                assert 0.0 <= value < 1.0

    @requires_numpy
    @given(
        st.integers(min_value=0, max_value=2**63),
        st.integers(min_value=0, max_value=10**9),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=40, deadline=None)
    def test_block_matches_scalar(self, seed, row_start, row_count):
        import numpy as np

        stream = CounterStream(seed, "block", 4)
        for draw in (0, 3):
            block = stream.doubles_block(np, row_start, row_count, draw)
            scalar = [
                stream.double(row, draw)
                for row in range(row_start, row_start + row_count)
            ]
            assert block.tolist() == scalar

    @given(
        st.lists(
            st.floats(min_value=0.001, max_value=10.0), min_size=1, max_size=9
        ),
        st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
    )
    @settings(max_examples=60, deadline=None)
    def test_categorical_matches_searchsorted(self, weights, u):
        cumulative = cumulative_weights(weights)
        index = categorical(u, cumulative)
        assert 0 <= index < len(weights)
        if HAVE_NUMPY:
            import numpy as np

            vectorized = min(
                int(np.searchsorted(np.asarray(cumulative), u, side="right")),
                len(weights) - 1,
            )
            assert index == vectorized

    @given(
        st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
        st.integers(min_value=1, max_value=10**6),
    )
    @settings(max_examples=60, deadline=None)
    def test_bounded_int_in_range(self, u, n):
        assert 0 <= bounded_int(u, n) < n


class TestBackendSelection:
    def test_active_backend_reports_name(self):
        assert backend_name() in ("python", "numpy")
        assert active().name == backend_name()

    def test_force_backend_restores(self):
        before = backend_name()
        with force_backend("python"):
            assert backend_name() == "python"
            assert active().intern(("a", "b")) is None
        assert backend_name() == before

    @requires_numpy
    def test_numpy_backend_exposes_module(self):
        with force_backend("numpy"):
            assert active().numpy is not None
        with force_backend("python"):
            assert active().numpy is None
