"""Tests for per-individual preference analysis."""

import pytest

from repro.analysis import individual_preferences, preference_table
from repro.core.properties import equivalence_class_size
from repro.core.vector import PropertyVector
from repro.datasets import paper_tables


@pytest.fixture
def paper_vectors():
    return {
        name: equivalence_class_size(release)
        for name, release in paper_tables.all_generalizations().items()
    }


class TestIndividualPreferences:
    def test_section2_user_choices(self, paper_vectors):
        preferences = individual_preferences(paper_vectors)
        # User 8 (index 7) prefers T4; user 3 (index 2) prefers T3b.
        assert preferences.winners[7] == ("T4",)
        assert preferences.winners[2] == ("T3b",)

    def test_win_counts(self, paper_vectors):
        preferences = individual_preferences(paper_vectors)
        assert preferences.win_counts() == {"T3a": 0, "T3b": 7, "T4": 3}

    def test_sole_win_counts(self, paper_vectors):
        preferences = individual_preferences(paper_vectors)
        # No ties in the paper example: sole wins equal joint wins.
        assert preferences.sole_win_counts() == preferences.win_counts()

    def test_contested(self, paper_vectors):
        assert individual_preferences(paper_vectors).contested() == 10

    def test_ties_shared(self):
        vectors = {
            "a": PropertyVector([1, 5]),
            "b": PropertyVector([1, 3]),
        }
        preferences = individual_preferences(vectors)
        assert preferences.winners[0] == ("a", "b")
        assert preferences.winners[1] == ("a",)
        assert preferences.contested() == 1
        assert preferences.sole_win_counts() == {"a": 1, "b": 0}

    def test_lower_is_better_orientation(self):
        vectors = {
            "a": PropertyVector([0.1, 0.9], higher_is_better=False),
            "b": PropertyVector([0.5, 0.5], higher_is_better=False),
        }
        preferences = individual_preferences(vectors)
        assert preferences.winners[0] == ("a",)
        assert preferences.winners[1] == ("b",)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            individual_preferences({})

    def test_single_candidate_uncontested(self):
        preferences = individual_preferences({"only": PropertyVector([1, 2])})
        assert preferences.contested() == 0


class TestPreferenceTable:
    def test_rendering(self, paper_vectors):
        text = preference_table(paper_vectors)
        assert "T3b: 7" in text
        assert "contested tuples: 10/10" in text

    def test_custom_labels(self, paper_vectors):
        text = preference_table(
            paper_vectors, labels=[f"u{i}" for i in range(1, 11)]
        )
        assert "u8" in text

    def test_wrong_label_count(self, paper_vectors):
        with pytest.raises(ValueError, match="labels"):
            preference_table(paper_vectors, labels=["x"])
