"""Tests for the extended utility metrics: NCP/GCP and query error."""

import pytest

from repro.anonymize.algorithms import Datafly, Mondrian
from repro.anonymize.engine import recode
from repro.datasets import paper_tables
from repro.utility import (
    QueryError,
    RangePredicate,
    ValuePredicate,
    estimated_count,
    global_certainty_penalty,
    mean_workload_error,
    ncp_vector,
    random_range_workload,
    relative_query_error,
    true_count,
)


@pytest.fixture
def hierarchies():
    return {
        "Zip Code": paper_tables.zip_hierarchy(),
        "Age": paper_tables.age_hierarchy(10, 5),
        "Marital Status": paper_tables.marital_hierarchy(),
    }


@pytest.fixture
def raw(table1, hierarchies):
    return recode(
        table1, hierarchies, {"Zip Code": 0, "Age": 0, "Marital Status": 0}
    )


class TestCertaintyPenalty:
    def test_raw_release_zero(self, raw, hierarchies):
        assert global_certainty_penalty(raw, hierarchies) == 0.0

    def test_fully_generalized_one(self, table1, hierarchies):
        top = recode(
            table1, hierarchies, {"Zip Code": 5, "Age": 2, "Marital Status": 2}
        )
        assert global_certainty_penalty(top, hierarchies) == pytest.approx(1.0)

    def test_ncp_vector_orientation(self, t3a, hierarchies):
        vector = ncp_vector(t3a, hierarchies)
        assert not vector.higher_is_better
        assert all(0.0 <= value <= 1.0 for value in vector)

    def test_mondrian_lower_gcp_than_datafly(self, adult_small, adult_h):
        mondrian = Mondrian(5).anonymize(adult_small, adult_h)
        datafly = Datafly(5).anonymize(adult_small, adult_h)
        assert global_certainty_penalty(
            mondrian, adult_h
        ) < global_certainty_penalty(datafly, adult_h)


class TestTrueCount:
    def test_range(self, table1):
        predicate = RangePredicate("Age", 26, 31)
        assert true_count(table1, [predicate]) == 3  # ages 28, 26, 31

    def test_point(self, table1):
        predicate = ValuePredicate("Marital Status", "Separated")
        assert true_count(table1, [predicate]) == 3

    def test_conjunction(self, table1):
        predicates = [
            RangePredicate("Age", 40, 55),
            ValuePredicate("Marital Status", "Divorced"),
        ]
        assert true_count(table1, predicates) == 2

    def test_empty_range_rejected(self):
        with pytest.raises(QueryError):
            RangePredicate("Age", 10, 5)


class TestEstimatedCount:
    def test_raw_release_exact(self, raw, table1, hierarchies):
        predicate = RangePredicate("Age", 26, 31)
        assert estimated_count(raw, [predicate], hierarchies) == pytest.approx(
            true_count(table1, [predicate])
        )

    def test_uniformity_on_intervals(self, t3a, hierarchies):
        # Ages 26..31 fall in band (25,35]; a query covering half the band
        # counts half of each matching tuple.
        predicate = RangePredicate("Age", 25, 30)
        estimate = estimated_count(t3a, [predicate], hierarchies)
        assert estimate == pytest.approx(3 * 0.5)

    def test_categorical_token_split(self, t3a, hierarchies):
        # "Married" covers 2 leaves; a point query on one of them counts
        # each Married cell at 1/2.
        predicate = ValuePredicate("Marital Status", "CF-Spouse")
        estimate = estimated_count(t3a, [predicate], hierarchies)
        assert estimate == pytest.approx(3 * 0.5)

    def test_masked_zip_split(self, t3a, hierarchies):
        # 1305* covers {13053, 13052}: each of the 3 cells counts 1/2.
        predicate = ValuePredicate("Zip Code", "13053")
        estimate = estimated_count(t3a, [predicate], hierarchies)
        assert estimate == pytest.approx(1.5)

    def test_empty_query_rejected(self, t3a):
        with pytest.raises(QueryError):
            estimated_count(t3a, [])


class TestRelativeError:
    def test_raw_release_zero_error(self, raw, hierarchies):
        predicate = RangePredicate("Age", 26, 50)
        assert relative_query_error(raw, [predicate], hierarchies) == 0.0

    def test_generalization_increases_error(self, raw, t4, hierarchies):
        hierarchies_t4 = dict(hierarchies, Age=paper_tables.age_hierarchy(20, 0))
        predicate = RangePredicate("Age", 26, 31)
        assert relative_query_error(
            t4, [predicate], hierarchies_t4
        ) > relative_query_error(raw, [predicate], hierarchies)

    def test_workload(self, adult_small, adult_h):
        workload = random_range_workload(adult_small, "age", queries=20, seed=3)
        mondrian = Mondrian(5).anonymize(adult_small, adult_h)
        datafly = Datafly(5).anonymize(adult_small, adult_h)
        mondrian_error = mean_workload_error(mondrian, workload, adult_h)
        datafly_error = mean_workload_error(datafly, workload, adult_h)
        # Mondrian's headline: better query answering at the same k.
        assert mondrian_error < datafly_error

    def test_workload_deterministic(self, adult_small):
        first = random_range_workload(adult_small, "age", queries=5, seed=1)
        second = random_range_workload(adult_small, "age", queries=5, seed=1)
        assert first == second

    def test_invalid_selectivity(self, adult_small):
        with pytest.raises(QueryError):
            random_range_workload(adult_small, "age", selectivity=0.0)

    def test_empty_workload_rejected(self, t3a):
        with pytest.raises(QueryError):
            mean_workload_error(t3a, [])
