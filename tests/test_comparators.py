"""Tests for strict dominance (Table 4) and ▶-better comparators (Section 5)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.comparators import (
    CoverageBetter,
    HypervolumeBetter,
    MinBetter,
    RankBetter,
    Relation,
    SpreadBetter,
    default_comparators,
    dominance_relation,
    non_dominated,
    set_dominance_relation,
    set_non_dominated,
    set_strongly_dominates,
    set_weakly_dominates,
    strongly_dominates,
    weakly_dominates,
)
from repro.core.vector import PropertyVector, PropertyVectorError


@st.composite
def paired(draw):
    size = draw(st.integers(min_value=1, max_value=12))
    element = st.floats(min_value=0.1, max_value=50, allow_nan=False)
    a = draw(st.lists(element, min_size=size, max_size=size))
    b = draw(st.lists(element, min_size=size, max_size=size))
    return PropertyVector(a), PropertyVector(b)


S = PropertyVector((3, 3, 3, 3, 4, 4, 4, 3, 3, 4), "T3a")
T = PropertyVector((3, 7, 7, 3, 7, 7, 7, 3, 7, 7), "T3b")
T4V = PropertyVector((4, 6, 4, 4, 6, 6, 6, 4, 6, 6), "T4")


class TestDominance:
    def test_t3b_strongly_dominates_t3a(self):
        # Every tuple of T3b has class size >= its T3a counterpart.
        assert weakly_dominates(T, S)
        assert strongly_dominates(T, S)
        assert not weakly_dominates(S, T)

    def test_t3b_and_t4_incomparable(self):
        assert non_dominated(T, T4V)
        assert dominance_relation(T, T4V) is Relation.INCOMPARABLE

    def test_self_equivalence(self):
        assert weakly_dominates(S, S)
        assert not strongly_dominates(S, S)
        assert dominance_relation(S, S) is Relation.EQUIVALENT

    def test_relation_flipped(self):
        assert dominance_relation(S, T) is Relation.WORSE
        assert dominance_relation(T, S) is Relation.BETTER
        assert Relation.BETTER.flipped() is Relation.WORSE
        assert Relation.INCOMPARABLE.flipped() is Relation.INCOMPARABLE

    @given(paired())
    def test_trichotomy_of_relations(self, pair):
        a, b = pair
        relation = dominance_relation(a, b)
        assert dominance_relation(b, a) is relation.flipped()

    @given(paired())
    def test_strong_implies_weak(self, pair):
        a, b = pair
        if strongly_dominates(a, b):
            assert weakly_dominates(a, b)
            assert not weakly_dominates(b, a) or not strongly_dominates(a, b)

    @given(paired())
    def test_non_dominance_symmetric(self, pair):
        a, b = pair
        assert non_dominated(a, b) == non_dominated(b, a)

    def test_orientation_respected(self):
        low_loss = PropertyVector([0.1, 0.1], higher_is_better=False)
        high_loss = PropertyVector([0.9, 0.9], higher_is_better=False)
        assert strongly_dominates(low_loss, high_loss)


class TestSetDominance:
    def test_paired_by_property(self):
        first = (PropertyVector([2, 2]), PropertyVector([5, 5]))
        second = (PropertyVector([1, 1]), PropertyVector([5, 5]))
        assert set_weakly_dominates(first, second)
        assert set_strongly_dominates(first, second)
        assert not set_strongly_dominates(second, first)

    def test_incomparable_sets(self):
        first = (PropertyVector([2, 2]), PropertyVector([1, 1]))
        second = (PropertyVector([1, 1]), PropertyVector([2, 2]))
        assert set_non_dominated(first, second)
        assert set_dominance_relation(first, second) is Relation.INCOMPARABLE

    def test_equivalent_sets(self):
        first = (PropertyVector([2, 2]),)
        assert set_dominance_relation(first, first) is Relation.EQUIVALENT

    def test_size_mismatch_rejected(self):
        with pytest.raises(PropertyVectorError):
            set_weakly_dominates((S,), (S, T))

    def test_empty_rejected(self):
        with pytest.raises(PropertyVectorError):
            set_weakly_dominates((), ())


class TestMinBetter:
    def test_paper_min_comparator(self):
        # ▶min: T4 (min 4) beats both 3-anonymous tables.
        comparator = MinBetter()
        assert comparator.relation(T4V, S) is Relation.BETTER
        assert comparator.relation(T4V, T) is Relation.BETTER
        assert comparator.relation(S, T) is Relation.EQUIVALENT

    def test_blind_to_bias(self):
        # The aggregate comparator cannot distinguish T3a from T3b even
        # though T3b strongly dominates — the paper's core criticism.
        assert MinBetter().relation(T, S) is Relation.EQUIVALENT
        assert strongly_dominates(T, S)


class TestRankBetter:
    def test_ranks_toward_ideal(self):
        comparator = RankBetter(ideal=10.0)
        assert comparator.relation(T, S) is Relation.BETTER
        assert comparator.relation(S, T) is Relation.WORSE

    def test_epsilon_equivalence(self):
        comparator = RankBetter(ideal=10.0, epsilon=100.0)
        assert comparator.relation(T, S) is Relation.EQUIVALENT


class TestCoverageBetter:
    def test_paper_chain(self):
        # Section 5.2: T4 ▶cov T3a and T3b ▶cov T4.
        comparator = CoverageBetter()
        assert comparator.relation(T4V, S) is Relation.BETTER
        assert comparator.relation(T, T4V) is Relation.BETTER

    def test_tie(self):
        d1 = PropertyVector((2, 2, 3, 4, 5))
        d2 = PropertyVector((3, 2, 4, 2, 3))
        assert CoverageBetter().relation(d1, d2) is Relation.EQUIVALENT

    def test_strict_variant(self):
        d1 = PropertyVector((2, 2, 3, 4, 5))
        d2 = PropertyVector((3, 2, 4, 2, 3))
        assert CoverageBetter(strict=True).relation(d1, d2) is Relation.EQUIVALENT

    @given(paired())
    def test_antisymmetric(self, pair):
        a, b = pair
        comparator = CoverageBetter()
        assert comparator.relation(a, b) is comparator.relation(b, a).flipped()


class TestSpreadBetter:
    def test_breaks_coverage_tie(self):
        # Section 5.3: with P_cov tied, spread picks D1.
        d1 = PropertyVector((2, 2, 3, 4, 5))
        d2 = PropertyVector((3, 2, 4, 2, 3))
        assert SpreadBetter().relation(d1, d2) is Relation.BETTER

    @given(paired())
    def test_antisymmetric(self, pair):
        a, b = pair
        comparator = SpreadBetter()
        assert comparator.relation(a, b) is comparator.relation(b, a).flipped()


class TestHypervolumeBetter:
    def test_paper_example(self):
        s = PropertyVector((3, 3, 3, 5, 5, 5, 5, 5))
        t = PropertyVector((4,) * 8)
        assert HypervolumeBetter().relation(s, t) is Relation.BETTER

    def test_reference_point(self):
        a = PropertyVector([3, 3])
        b = PropertyVector([2, 4])
        assert HypervolumeBetter(reference=2.0).relation(a, b) is Relation.BETTER

    @given(paired())
    def test_antisymmetric(self, pair):
        a, b = pair
        comparator = HypervolumeBetter()
        assert comparator.relation(a, b) is comparator.relation(b, a).flipped()

    @given(paired())
    def test_strong_dominance_never_loses(self, pair):
        a, b = pair
        if strongly_dominates(a, b):
            assert HypervolumeBetter().relation(a, b) in (
                Relation.BETTER,
                Relation.EQUIVALENT,
            )


class TestDefaultSuite:
    def test_keys(self):
        suite = default_comparators(ideal=10.0)
        assert set(suite) == {"min", "rank", "cov", "spr", "hv"}

    def test_better_helper(self):
        assert CoverageBetter().better(T, S)
        assert not CoverageBetter().better(S, T)
