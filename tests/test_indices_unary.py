"""Tests for unary quality indices (Sections 3 and 5.1 of the paper)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.indices.unary import (
    MaximumIndex,
    MeanIndex,
    MinimumIndex,
    QuantileIndex,
    RankIndex,
)
from repro.core.vector import PropertyVector, PropertyVectorError

finite = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)
vec = st.lists(finite, min_size=2, max_size=20)


class TestMinimumIndex:
    def test_k_anonymity_of_t3a(self):
        # Paper Section 3: P_k-anon(s) = 3 for T3a.
        s = PropertyVector((3, 3, 3, 3, 4, 4, 4, 3, 3, 4))
        assert MinimumIndex()(s) == 3

    def test_l_diversity_of_t3a(self):
        # Paper Section 3: l = 1 on the sensitive count vector.
        counts = PropertyVector((2, 2, 1, 2, 2, 1, 2, 1, 2, 1))
        assert MinimumIndex()(counts) == 1

    def test_lower_is_better_orientation(self):
        losses = PropertyVector([0.5, 0.2], higher_is_better=False)
        # Oriented minimum is the worst (largest) loss, negated.
        assert MinimumIndex()(losses) == -0.5

    def test_prefers(self):
        index = MinimumIndex()
        assert index.prefers(PropertyVector([4, 4]), PropertyVector([3, 9]))
        assert not index.prefers(PropertyVector([3, 9]), PropertyVector([4, 4]))


class TestMeanIndex:
    def test_s_avg_of_t3a(self):
        # Paper Section 3: P_s-avg = 3.4 for T3a.
        s = PropertyVector((3, 3, 3, 3, 4, 4, 4, 3, 3, 4))
        assert MeanIndex()(s) == pytest.approx(3.4)


class TestMaximumAndQuantile:
    def test_maximum(self):
        assert MaximumIndex()(PropertyVector([1, 9, 3])) == 9

    def test_median(self):
        assert QuantileIndex(0.5)(PropertyVector([1, 2, 9])) == 2

    def test_invalid_quantile(self):
        with pytest.raises(PropertyVectorError):
            QuantileIndex(1.5)


class TestRankIndex:
    def test_distance_to_scalar_ideal(self):
        index = RankIndex(ideal=5.0)
        assert index(PropertyVector([5, 5, 5])) == 0.0
        assert index(PropertyVector([5, 5, 1])) == 4.0

    def test_distance_to_vector_ideal(self):
        ideal = PropertyVector([10, 10])
        index = RankIndex(ideal=ideal)
        assert index(PropertyVector([10, 7])) == 3.0

    def test_l1_norm(self):
        index = RankIndex(ideal=0.0, order=1)
        assert index(PropertyVector([3, 4])) == 7.0

    def test_prefers_lower_rank(self):
        index = RankIndex(ideal=10.0)
        near = PropertyVector([9, 9])
        far = PropertyVector([5, 5])
        assert index.prefers(near, far)
        assert not index.prefers(far, near)

    def test_epsilon_equivalence(self):
        # Paper Section 5.1: vectors within epsilon rank are equally good.
        index = RankIndex(ideal=10.0, epsilon=1.0)
        a = PropertyVector([9, 9])
        b = PropertyVector([9, 8.5])
        assert index.equivalent(a, b)
        assert not index.prefers(a, b)
        assert not index.prefers(b, a)

    def test_negative_epsilon_rejected(self):
        with pytest.raises(PropertyVectorError):
            RankIndex(ideal=0.0, epsilon=-1)

    def test_lower_is_better_vector(self):
        # For a loss vector, the ideal scalar refers to the raw scale.
        index = RankIndex(ideal=0.0)
        losses = PropertyVector([0.0, 0.0], higher_is_better=False)
        assert index(losses) == 0.0

    @given(vec)
    def test_rank_zero_iff_at_ideal(self, values):
        ideal = PropertyVector(values)
        index = RankIndex(ideal=ideal)
        assert index(PropertyVector(values)) == pytest.approx(0.0, abs=1e-9)

    @given(vec, st.floats(min_value=0.1, max_value=10, allow_nan=False))
    def test_moving_away_increases_rank(self, values, delta):
        ideal = PropertyVector([max(values) + 1] * len(values))
        index = RankIndex(ideal=ideal)
        closer = PropertyVector(values)
        farther = PropertyVector([v - delta for v in values])
        assert index(farther) > index(closer)

    def test_equi_ranked_incomparable_vectors(self):
        # Two points on the same arc around D_max (Figure 2).
        index = RankIndex(ideal=PropertyVector([10, 10]))
        a = PropertyVector([10, 6])
        b = PropertyVector([6, 10])
        assert index(a) == index(b)
        assert not index.prefers(a, b)
