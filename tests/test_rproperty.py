"""Tests for r-property anonymization profiles (Definition 2)."""

import pytest

from repro.core.properties import equivalence_class_size
from repro.core.rproperty import (
    PropertyProfile,
    privacy_profile,
    privacy_utility_profile,
)
from repro.core.vector import PropertyVectorError
from repro.datasets import paper_tables


class TestPropertyProfile:
    def test_r_and_names(self):
        profile = PropertyProfile({"size": equivalence_class_size})
        assert profile.r == 1
        assert profile.names == ("size",)

    def test_empty_rejected(self):
        with pytest.raises(PropertyVectorError):
            PropertyProfile({})

    def test_induce_returns_r_vectors(self, t3a):
        profile = privacy_profile(paper_tables.SENSITIVE_ATTRIBUTE)
        vectors = profile.induce(t3a)
        assert len(vectors) == profile.r == 2
        assert vectors[0].as_tuple() == tuple(
            map(float, paper_tables.CLASS_SIZE_T3A)
        )
        assert vectors[1].as_tuple() == tuple(
            map(float, paper_tables.SENSITIVE_COUNT_T3A)
        )

    def test_induce_all_keys_by_name(self, t3a, t3b):
        profile = privacy_profile(paper_tables.SENSITIVE_ATTRIBUTE)
        induced = profile.induce_all([t3a, t3b])
        assert set(induced) == {"T3a", "T3b"}

    def test_order_preserved(self):
        profile = PropertyProfile(
            {"b": equivalence_class_size, "a": equivalence_class_size}
        )
        assert profile.names == ("b", "a")


class TestBuiltinProfiles:
    def test_privacy_utility_profile(self, t3a):
        hierarchies = {
            "Zip Code": paper_tables.zip_hierarchy(),
            "Age": paper_tables.age_hierarchy(10, 5),
            "Marital Status": paper_tables.marital_hierarchy(),
        }
        profile = privacy_utility_profile(hierarchies)
        vectors = profile.induce(t3a)
        assert vectors[0].higher_is_better
        assert vectors[1].higher_is_better
        assert len(vectors[1]) == 10
