"""Shared fixtures: the paper's running example and a small Adult workload."""

from __future__ import annotations

import pytest

from repro.datasets import adult_dataset, adult_hierarchies
from repro.datasets import paper_tables


@pytest.fixture(scope="session")
def table1():
    return paper_tables.table1()


@pytest.fixture(scope="session")
def t3a():
    return paper_tables.t3a()


@pytest.fixture(scope="session")
def t3b():
    return paper_tables.t3b()


@pytest.fixture(scope="session")
def t4():
    return paper_tables.t4()


@pytest.fixture(scope="session")
def adult_small():
    """A 300-row deterministic Adult sample (fast enough for every test)."""
    return adult_dataset(300, seed=11)


@pytest.fixture(scope="session")
def adult_h():
    return adult_hierarchies()
