"""Scale-tier golden fixtures: streamed digests + a pinned k-sweep.

The 1M-row scale tier never materializes a full table in the benchmarks,
so its reproducibility contract is pinned on *streamed* artifacts:

* chunk digests of the counter-PRNG generators at 100k rows (all three
  workloads) and 1M rows (Adult) — chunk-size independent by
  construction, and byte-identical with and without numpy;
* a k-sweep summary of the 100k Adult table at one mid-lattice node of
  the three-attribute QI (class count, minimum class size, violation
  counts per k) — the scale tier's measurement-plane witness.

Record with::

    PYTHONPATH=src python -m tests.goldens_scale   # writes tests/golden/scale_tier.json

``tests/test_scale_tier.py`` recomputes the cheap cases on every run (and
the 1M digest when numpy is present) and compares against the committed
JSON.  Because the digests are backend-independent, regenerating under
numpy pins the pure-python path too.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.anonymize.algorithms.base import RecodingWorkspace
from repro.datasets import (
    adult_dataset,
    adult_hierarchies,
    chunk_digest,
    iter_adult_chunks,
    iter_hospital_chunks,
    iter_skewed_chunks,
)
from repro.datasets.schema import AttributeRole
from repro.kernels import backend_name

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_FILE = GOLDEN_DIR / "scale_tier.json"

#: The three-attribute QI the recode benchmark sweeps.
SWEEP_QI = ("age", "education", "marital-status")
SWEEP_NODE = (2, 1, 1)
SWEEP_KS = (2, 5, 10, 25, 50)
SWEEP_ROWS = 100_000

DIGEST_ROWS_ALWAYS = 100_000
DIGEST_ROWS_LARGE = 1_000_000


def digest_cases() -> dict[str, dict[str, Any]]:
    """The streamed-digest case table (name -> spec, digest recomputable)."""
    return {
        "adult_100k": {
            "generator": "adult",
            "rows": DIGEST_ROWS_ALWAYS,
            "seed": 42,
        },
        "adult_1m": {
            "generator": "adult",
            "rows": DIGEST_ROWS_LARGE,
            "seed": 42,
        },
        "skewed_100k": {
            "generator": "skewed",
            "rows": DIGEST_ROWS_ALWAYS,
            "skew": 1.5,
            "seed": 0,
        },
        "hospital_100k": {
            "generator": "hospital",
            "rows": DIGEST_ROWS_ALWAYS,
            "seed": 0,
        },
    }


def compute_digest(spec: dict[str, Any], chunk_rows: int = 65536) -> str:
    """Streamed digest of one case (chunk size must not matter)."""
    if spec["generator"] == "adult":
        chunks = iter_adult_chunks(spec["rows"], spec["seed"], chunk_rows)
    elif spec["generator"] == "skewed":
        chunks = iter_skewed_chunks(
            spec["rows"], spec["skew"], spec["seed"], chunk_rows
        )
    elif spec["generator"] == "hospital":
        chunks = iter_hospital_chunks(spec["rows"], spec["seed"], chunk_rows)
    else:  # pragma: no cover - spec table is closed
        raise ValueError(f"unknown generator {spec['generator']!r}")
    return chunk_digest(chunks)


def sweep_workspace(rows: int = SWEEP_ROWS) -> RecodingWorkspace:
    """The scale-tier measurement workspace: Adult restricted to SWEEP_QI."""
    data = adult_dataset(rows, seed=7)
    roles = {
        name: AttributeRole.INSENSITIVE
        for name in data.schema.quasi_identifier_names
        if name not in SWEEP_QI
    }
    return RecodingWorkspace(data.with_roles(roles), adult_hierarchies())


def compute_ksweep(rows: int = SWEEP_ROWS) -> dict[str, Any]:
    """Class structure + per-k violation counts at the pinned node."""
    workspace = sweep_workspace(rows)
    sizes = workspace.group_sizes(SWEEP_NODE)
    return {
        "rows": rows,
        "node": list(SWEEP_NODE),
        "classes": len(sizes),
        "min_class_size": min(sizes.values()),
        "max_class_size": max(sizes.values()),
        "violations": {
            str(k): workspace.violation_count(SWEEP_NODE, k) for k in SWEEP_KS
        },
    }


def write_goldens(path: Path = GOLDEN_FILE) -> dict[str, Any]:
    """Record every scale-tier case and write the fixture file."""
    digests = {}
    for name, spec in digest_cases().items():
        digests[name] = dict(spec, digest=compute_digest(spec))
    payload = {
        "_comment": (
            "Scale-tier goldens: streamed generator digests and a pinned "
            "k-sweep. Regenerate with "
            "`PYTHONPATH=src python -m tests.goldens_scale`."
        ),
        "recorded_with_backend": backend_name(),
        "digests": digests,
        "ksweep": compute_ksweep(),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return payload


def load_goldens(path: Path = GOLDEN_FILE) -> dict[str, Any]:
    return json.loads(path.read_text())


if __name__ == "__main__":
    written = write_goldens()
    print(
        f"wrote {len(written['digests'])} digest case(s) + k-sweep to "
        f"{GOLDEN_FILE}"
    )
