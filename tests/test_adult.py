"""Tests for the synthetic Adult generator and its hierarchies."""

import pytest

from repro.datasets import adult_dataset, adult_hierarchies, adult_schema
from repro.datasets.adult import AGE_BOUNDS


class TestGenerator:
    def test_deterministic(self):
        assert adult_dataset(50, seed=3).rows == adult_dataset(50, seed=3).rows

    def test_seed_changes_data(self):
        assert adult_dataset(50, seed=3).rows != adult_dataset(50, seed=4).rows

    def test_size(self):
        assert len(adult_dataset(123, seed=0)) == 123

    def test_empty(self):
        assert len(adult_dataset(0, seed=0)) == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            adult_dataset(-1)

    def test_schema_roles(self):
        schema = adult_schema()
        assert schema.sensitive_names == ("occupation",)
        assert len(schema.quasi_identifier_names) == 7
        assert "salary-class" not in schema.quasi_identifier_names

    def test_ages_within_bounds(self, adult_small):
        low, high = AGE_BOUNDS
        assert all(low <= age <= high for age in adult_small.column("age"))

    def test_marginals_roughly_census_like(self):
        data = adult_dataset(2000, seed=5)
        workclasses = data.column("workclass")
        private_share = workclasses.count("Private") / len(workclasses)
        assert 0.55 < private_share < 0.85
        countries = data.column("native-country")
        us_share = countries.count("United-States") / len(countries)
        assert us_share > 0.8

    def test_age_marital_correlation(self):
        data = adult_dataset(2000, seed=5)
        young_never = [
            row
            for row in data
            if row[0] < 26 and row[3] == "Never-married"
        ]
        young = [row for row in data if row[0] < 26]
        assert young and len(young_never) / len(young) > 0.5


class TestHierarchies:
    def test_every_qi_covered(self, adult_small, adult_h):
        assert set(adult_small.schema.quasi_identifier_names) <= set(adult_h)

    def test_every_value_generalizable(self, adult_small, adult_h):
        for name, hierarchy in adult_h.items():
            for value in adult_small.distinct(name):
                for level in range(hierarchy.height + 1):
                    hierarchy.generalize(value, level)  # must not raise

    def test_heights(self, adult_h):
        assert adult_h["age"].height == 5
        assert adult_h["sex"].height == 1
        assert adult_h["education"].height == 3

    def test_lattice_size_tractable(self, adult_small, adult_h):
        from repro.hierarchy import Lattice

        lattice = Lattice(
            [adult_h[name] for name in adult_small.schema.quasi_identifier_names]
        )
        assert 1000 < len(lattice) < 10000
