"""Tests for composition attacks and the classification metric."""

import pytest

from repro.attack import (
    AttackError,
    composition_k,
    composition_risks,
    intersection_match_set,
    prosecutor_risks,
)
from repro.datasets import paper_tables
from repro.utility import (
    classification_metric,
    cm_vector,
    tuple_classification_penalties,
)

SENSITIVE = paper_tables.SENSITIVE_ATTRIBUTE
PAPER_H = {SENSITIVE: paper_tables.marital_hierarchy()}


class TestIntersection:
    def test_intersection_never_larger(self, t3a, t3b, table1):
        qi = table1.schema.quasi_identifier_indices
        for row_index in range(len(table1)):
            record = [table1[row_index][p] for p in qi]
            joint = intersection_match_set([t3a, t3b], record, PAPER_H)
            single = prosecutor_risks(t3a, hierarchies=PAPER_H)
            assert len(joint) <= round(1 / single[row_index])
            assert row_index in joint

    def test_needs_two_releases(self, t3a, table1):
        record = list(table1[0])
        with pytest.raises(AttackError, match="two releases"):
            intersection_match_set([t3a], record, PAPER_H)

    def test_mismatched_originals_rejected(self, t3a, table1):
        from repro.datasets import paper_tables as pt

        other = pt.t3a(table1.head(5).replace_rows(table1.rows[:5]))
        with pytest.raises(AttackError, match="same original"):
            intersection_match_set([t3a, other], list(table1[0]), PAPER_H)


class TestCompositionRisks:
    def test_pair_dominates_singles(self, t3a, t3b):
        joint = composition_risks([t3a, t3b], hierarchies=PAPER_H)
        for release in (t3a, t3b):
            single = prosecutor_risks(release, hierarchies=PAPER_H)
            # Joint risk is at least each single-release risk (lower-is-
            # better vectors: joint values >= single values).
            assert all(j >= s - 1e-12 for j, s in zip(joint, single))

    def test_t3b_t4_composition_breaks_k(self, t3b, t4):
        # Each release alone is >=3-anonymous; together they isolate an
        # individual completely.
        assert t3b.k() == 3 and t4.k() == 4
        assert composition_k([t3b, t4], PAPER_H) == 1

    def test_t3a_t3b_composition_keeps_k(self, t3a, t3b):
        # T3a's classes refine T3b's, so the intersection adds nothing.
        assert composition_k([t3a, t3b], PAPER_H) == 3

    def test_orientation(self, t3a, t3b):
        assert not composition_risks(
            [t3a, t3b], hierarchies=PAPER_H
        ).higher_is_better


class TestClassificationMetric:
    def test_t3a_penalties(self, t3a):
        # Classes (marital as label): {1,4,8} majority CF-Spouse -> tuple 8
        # damaged; {2,3,9} majority Separated -> tuple 3 damaged;
        # {5,6,7,10} majority Divorced -> tuples 6, 10 damaged.
        penalties = tuple_classification_penalties(t3a, SENSITIVE)
        assert penalties == [0, 0, 1, 0, 0, 1, 0, 1, 0, 1]
        assert classification_metric(t3a, SENSITIVE) == pytest.approx(0.4)

    def test_suppressed_rows_damaged(self, table1):
        from repro.anonymize.engine import recode

        hierarchies = {
            "Zip Code": paper_tables.zip_hierarchy(),
            "Age": paper_tables.age_hierarchy(10, 5),
            SENSITIVE: paper_tables.marital_hierarchy(),
        }
        release = recode(
            table1,
            hierarchies,
            {"Zip Code": 1, "Age": 1, SENSITIVE: 1},
            suppress=[0],
        )
        assert tuple_classification_penalties(release, SENSITIVE)[0] == 1

    def test_vector_orientation(self, t3a):
        vector = cm_vector(t3a, SENSITIVE)
        assert not vector.higher_is_better
        assert set(vector.as_tuple()) <= {0.0, 1.0}

    def test_homogeneous_classes_undamaged(self, table1):
        from repro.anonymize.engine import recode

        hierarchies = {
            "Zip Code": paper_tables.zip_hierarchy(),
            "Age": paper_tables.age_hierarchy(10, 5),
            SENSITIVE: paper_tables.marital_hierarchy(),
        }
        raw = recode(
            table1, hierarchies, {"Zip Code": 0, "Age": 0, SENSITIVE: 0}
        )
        # Singleton classes: every tuple is its own majority.
        assert classification_metric(raw, SENSITIVE) == 0.0

    def test_cm_monotone_under_coarsening_on_example(self, t3a, t4):
        # Coarser grouping can only merge boundaries: CM(T4) >= ... not a
        # theorem in general, but holds on the running example.
        assert classification_metric(t4, SENSITIVE) >= classification_metric(
            t3a, SENSITIVE
        ) - 1e-12
