"""Tests for the full-domain generalization lattice."""

import pytest

from repro.hierarchy import (
    Banding,
    HierarchyError,
    IntervalHierarchy,
    Lattice,
    TaxonomyHierarchy,
)


@pytest.fixture
def lattice():
    age = IntervalHierarchy("age", [Banding(10), Banding(20)], bounds=(0, 100))
    sex = TaxonomyHierarchy("sex", {"M": (), "F": ()})
    work = TaxonomyHierarchy(
        "work", {"Fed": ("Gov",), "State": ("Gov",), "Inc": ("Priv",)}
    )
    return Lattice([age, sex, work])  # heights (3, 1, 2)


class TestStructure:
    def test_heights(self, lattice):
        assert lattice.heights == (3, 1, 2)
        assert lattice.dimensions == 3

    def test_bottom_top(self, lattice):
        assert lattice.bottom == (0, 0, 0)
        assert lattice.top == (3, 1, 2)
        assert lattice.max_height == 6

    def test_size(self, lattice):
        assert len(lattice) == 4 * 2 * 3

    def test_contains(self, lattice):
        assert (0, 0, 0) in lattice
        assert (3, 1, 2) in lattice
        assert (4, 0, 0) not in lattice
        assert (0, 0) not in lattice
        assert "x" not in lattice

    def test_empty_rejected(self):
        with pytest.raises(HierarchyError):
            Lattice([])

    def test_nodes_enumeration(self, lattice):
        nodes = list(lattice.nodes())
        assert len(nodes) == len(lattice)
        assert len(set(nodes)) == len(nodes)

    def test_nodes_at_height(self, lattice):
        at_zero = list(lattice.nodes_at_height(0))
        assert at_zero == [(0, 0, 0)]
        at_one = set(lattice.nodes_at_height(1))
        assert at_one == {(1, 0, 0), (0, 1, 0), (0, 0, 1)}
        # Every node appears in exactly one stratum.
        total = sum(
            len(list(lattice.nodes_at_height(h)))
            for h in range(lattice.max_height + 1)
        )
        assert total == len(lattice)

    def test_nodes_at_invalid_height(self, lattice):
        assert list(lattice.nodes_at_height(-1)) == []
        assert list(lattice.nodes_at_height(99)) == []


class TestOrder:
    def test_successors(self, lattice):
        assert set(lattice.successors((0, 0, 0))) == {
            (1, 0, 0),
            (0, 1, 0),
            (0, 0, 1),
        }
        assert list(lattice.successors(lattice.top)) == []

    def test_predecessors(self, lattice):
        assert set(lattice.predecessors((1, 1, 0))) == {(0, 1, 0), (1, 0, 0)}
        assert list(lattice.predecessors(lattice.bottom)) == []

    def test_successor_predecessor_duality(self, lattice):
        for node in lattice.nodes():
            for successor in lattice.successors(node):
                assert node in set(lattice.predecessors(successor))

    def test_dominates(self, lattice):
        assert lattice.dominates((2, 1, 1), (1, 0, 1))
        assert not lattice.dominates((1, 0, 1), (2, 1, 1))
        assert lattice.dominates((1, 0, 1), (1, 0, 1))

    def test_height(self, lattice):
        assert lattice.height((2, 1, 1)) == 4

    def test_invalid_node_rejected(self, lattice):
        with pytest.raises(HierarchyError):
            lattice.height((9, 9, 9))

    def test_ancestors(self, lattice):
        ancestors = set(lattice.ancestors((2, 1, 1)))
        assert (3, 1, 2) in ancestors
        assert (2, 1, 1) not in ancestors
        assert all(lattice.dominates(a, (2, 1, 1)) for a in ancestors)

    def test_minimal_nodes(self, lattice):
        nodes = [(1, 0, 0), (2, 0, 0), (0, 1, 0), (1, 1, 0)]
        minimal = lattice.minimal_nodes(nodes)
        assert set(minimal) == {(1, 0, 0), (0, 1, 0)}

    def test_minimal_nodes_deduplicates(self, lattice):
        assert lattice.minimal_nodes([(1, 0, 0), (1, 0, 0)]) == [(1, 0, 0)]

    def test_minimal_nodes_incomparable_all_kept(self, lattice):
        nodes = [(1, 0, 0), (0, 1, 0), (0, 0, 1)]
        assert set(lattice.minimal_nodes(nodes)) == set(nodes)
