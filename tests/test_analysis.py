"""Tests for the analysis layer: bias summaries, matrices, tournaments,
reports."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    benefit_counts,
    bias_summary,
    comparison_report,
    copeland_ranking,
    format_relation_matrix,
    gini_coefficient,
    hypervolume_ranking,
    index_matrix,
    property_report,
    relation_matrix,
    win_counts,
)
from repro.core.comparators import CoverageBetter, Relation
from repro.core.indices.binary import coverage
from repro.core.properties import equivalence_class_size
from repro.core.rproperty import privacy_profile
from repro.core.vector import PropertyVector
from repro.datasets import paper_tables

S = PropertyVector((3, 3, 3, 3, 4, 4, 4, 3, 3, 4), "T3a")
T = PropertyVector((3, 7, 7, 3, 7, 7, 7, 3, 7, 7), "T3b")
T4V = PropertyVector((4, 6, 4, 4, 6, 6, 6, 4, 6, 6), "T4")


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient([5.0] * 10) == pytest.approx(0.0)

    def test_concentrated_is_high(self):
        assert gini_coefficient([0.0] * 9 + [100.0]) > 0.8

    def test_all_zero(self):
        assert gini_coefficient([0.0] * 5) == 0.0

    @given(
        st.lists(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            min_size=2,
            max_size=30,
        )
    )
    def test_bounded(self, values):
        g = gini_coefficient(values)
        assert -1e-9 <= g <= 1.0


class TestBiasSummary:
    def test_t3a_summary(self):
        summary = bias_summary(S)
        assert summary.minimum == 3
        assert summary.maximum == 4
        assert summary.mean == pytest.approx(3.4)
        assert summary.fraction_at_minimum == pytest.approx(0.6)
        assert summary.spread == 1
        assert summary.size == 10

    def test_describe_mentions_stats(self):
        text = bias_summary(S).describe()
        assert "min=3" in text
        assert "gini=" in text

    def test_lower_is_better_oriented(self):
        losses = PropertyVector([0.1, 0.9], higher_is_better=False)
        summary = bias_summary(losses)
        # Oriented: minimum is the worst tuple = -0.9.
        assert summary.minimum == pytest.approx(-0.9)


class TestBenefitCounts:
    def test_section2_per_individual_view(self):
        # T3b vs T4: different individuals favored by each (Figure 1).
        t3b_wins, t4_wins, ties = benefit_counts(T, T4V)
        assert t3b_wins == 7
        assert t4_wins == 3
        assert ties == 0

    def test_symmetry(self):
        a_wins, b_wins, ties = benefit_counts(S, T)
        b_wins2, a_wins2, ties2 = benefit_counts(T, S)
        assert (a_wins, b_wins, ties) == (a_wins2, b_wins2, ties2)


class TestMatrices:
    @pytest.fixture
    def vectors(self):
        return {"T3a": S, "T3b": T, "T4": T4V}

    def test_dominance_matrix(self, vectors):
        matrix = relation_matrix(vectors)
        assert matrix[("T3b", "T3a")] is Relation.BETTER
        assert matrix[("T3a", "T3b")] is Relation.WORSE
        assert matrix[("T3b", "T4")] is Relation.INCOMPARABLE
        assert matrix[("T3a", "T3a")] is Relation.EQUIVALENT

    def test_comparator_matrix(self, vectors):
        matrix = relation_matrix(vectors, CoverageBetter())
        assert matrix[("T3b", "T4")] is Relation.BETTER
        assert matrix[("T4", "T3a")] is Relation.BETTER

    def test_index_matrix(self, vectors):
        values = index_matrix(vectors, coverage)
        assert values[("T3b", "T3a")] == pytest.approx(1.0)
        assert ("T3a", "T3a") not in values

    def test_win_counts(self, vectors):
        counts = win_counts(relation_matrix(vectors, CoverageBetter()))
        assert counts == {"T3b": 2, "T4": 1, "T3a": 0}

    def test_format_matrix(self, vectors):
        text = format_relation_matrix(relation_matrix(vectors), ["T3a", "T3b", "T4"])
        assert "T3a" in text
        assert "||" in text  # the incomparable pair shows up


class TestTournaments:
    @pytest.fixture
    def vectors(self):
        return {"T3a": S, "T3b": T, "T4": T4V}

    def test_hypervolume_ranking(self, vectors):
        ranking = hypervolume_ranking(vectors)
        assert [name for name, _ in ranking] == ["T3b", "T4", "T3a"]

    def test_copeland_ranking(self, vectors):
        ranking = copeland_ranking(vectors, CoverageBetter())
        assert ranking[0] == ("T3b", 2)
        assert ranking[-1] == ("T3a", 0)


class TestReports:
    def test_property_report_sections(self):
        text = property_report({"T3a": S, "T3b": T})
        assert "Bias summaries" in text
        assert "P_cov" in text
        assert "P_spr" in text

    def test_comparison_report_end_to_end(self, t3a, t3b, t4):
        profile = privacy_profile(paper_tables.SENSITIVE_ATTRIBUTE)
        text = comparison_report([t3a, t3b, t4], profile)
        assert "Subjects: T3a, T3b, T4" in text
        assert "equivalence-class-size" in text
        assert "sensitive-value-count" in text
