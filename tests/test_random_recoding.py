"""Tests for the random satisfying recoding baseline."""

import pytest

from repro.anonymize.algorithms import AlgorithmError, RandomRecoding


def non_suppressed_k(release):
    classes = release.equivalence_classes
    return min(
        classes.size_of(i)
        for i in range(len(release))
        if i not in release.suppressed
    )


class TestRandomRecoding:
    def test_satisfies_k(self, adult_small, adult_h):
        release = RandomRecoding(5, seed=3).anonymize(adult_small, adult_h)
        assert non_suppressed_k(release) >= 5
        assert release.suppression_fraction() <= 0.02 + 1e-9

    def test_deterministic_per_seed(self, adult_small, adult_h):
        first = RandomRecoding(5, seed=9).anonymize(adult_small, adult_h)
        second = RandomRecoding(5, seed=9).anonymize(adult_small, adult_h)
        assert first.levels == second.levels

    def test_seeds_explore_different_nodes(self, adult_small, adult_h):
        nodes = {
            tuple(
                RandomRecoding(5, seed=seed)
                .anonymize(adult_small, adult_h)
                .levels.items()
            )
            for seed in range(6)
        }
        assert len(nodes) > 1

    def test_exhaustive_fallback(self, table1):
        from repro.datasets import paper_tables

        hierarchies = {
            "Zip Code": paper_tables.zip_hierarchy(),
            "Age": paper_tables.age_hierarchy(10, 5),
            "Marital Status": paper_tables.marital_hierarchy(),
        }
        # attempts=1 will almost surely miss; the fallback must still
        # return a valid release.
        release = RandomRecoding(
            3, suppression_limit=0.0, seed=0, attempts=1
        ).anonymize(table1, hierarchies)
        assert non_suppressed_k(release) >= 3

    def test_unsatisfiable_raises(self, table1):
        from repro.datasets import paper_tables

        hierarchies = {
            "Zip Code": paper_tables.zip_hierarchy(),
            "Age": paper_tables.age_hierarchy(10, 5),
            "Marital Status": paper_tables.marital_hierarchy(),
        }
        with pytest.raises(AlgorithmError):
            RandomRecoding(11, suppression_limit=0.0, attempts=1).anonymize(
                table1, hierarchies
            )

    def test_invalid_attempts(self):
        with pytest.raises(AlgorithmError):
            RandomRecoding(5, attempts=0)

    def test_worse_or_equal_utility_than_search(self, adult_small, adult_h):
        from repro.anonymize.algorithms import OptimalLattice
        from repro.utility import general_loss

        optimal = OptimalLattice(5, suppression_limit=0.0).anonymize(
            adult_small, adult_h
        )
        random_release = RandomRecoding(
            5, suppression_limit=0.0, seed=4
        ).anonymize(adult_small, adult_h)
        assert general_loss(optimal, adult_h) <= general_loss(
            random_release, adult_h
        ) + 1e-12
