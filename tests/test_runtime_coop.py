"""Cooperative multi-executor execution and fault injection.

Covers the lease protocol (:mod:`repro.runtime.leases`), two executors
sharing one :class:`~repro.runtime.cache.ResultCache` cold and warm,
steal-back of leases left by a dead coordinator, and a SIGKILL'd socket
worker mid-task — the run must finish with the right value, no lost and
no doubly-stored cache objects.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from pathlib import Path

import pytest

import tests.socket_ops  # noqa: F401 — registers sock.* for local + socket runs

from repro.runtime.cache import ResultCache
from repro.runtime.certify import OpCertificates
from repro.runtime.events import RunLog, merge_run_dir, read_events, read_manifest
from repro.runtime.executor import StudyExecutor
from repro.runtime.leases import LEASES_DIRNAME, LeaseBoard
from repro.runtime.task import CacheKey, TaskGraph, TaskSpec, register_op
from repro.runtime.transports import SocketTransport

REPO_ROOT = Path(__file__).resolve().parent.parent

#: task ids executed in-process, appended under _EXECUTED_LOCK by coop.touch.
_EXECUTED: list[str] = []
_EXECUTED_LOCK = threading.Lock()


@register_op("coop.touch")
def _op_coop_touch(params, deps, seed):
    """Record the execution and return the task's value (slowly)."""
    time.sleep(params.get("delay", 0.0))
    with _EXECUTED_LOCK:
        _EXECUTED.append(params["name"])
    return params["value"]


def touch_graph(count: int, dataset: str, delay: float = 0.0) -> TaskGraph:
    graph = TaskGraph()
    for i in range(count):
        name = f"t{i}"
        graph.add(
            TaskSpec(
                task_id=name,
                op="coop.touch",
                params={"name": name, "value": i * 10, "delay": delay},
                key=CacheKey(dataset=dataset, algorithm=name),
            )
        )
    return graph


class TestLeaseBoard:
    def test_claim_release_cycle(self, tmp_path):
        board = LeaseBoard(tmp_path)
        digest = "d" * 64
        assert board.claim(digest) == "acquired"
        assert board.outstanding() == [digest]
        holder = board.holder(digest)
        assert holder["owner"] == board.owner
        assert holder["expires_at"] > time.time()
        board.release(digest)
        assert board.outstanding() == []

    def test_live_peer_lease_defers(self, tmp_path):
        first = LeaseBoard(tmp_path, ttl=60)
        second = LeaseBoard(tmp_path, ttl=60)
        assert first.owner != second.owner
        digest = "a" * 64
        assert first.claim(digest) == "acquired"
        assert second.claim(digest) is None

    def test_expired_lease_is_stolen(self, tmp_path):
        stale = LeaseBoard(tmp_path, ttl=0.01)
        fresh = LeaseBoard(tmp_path, ttl=60)
        digest = "b" * 64
        assert stale.claim(digest) == "acquired"
        time.sleep(0.05)
        assert fresh.claim(digest) == "stolen"
        assert fresh.holder(digest)["owner"] == fresh.owner

    def test_corrupt_lease_is_stolen(self, tmp_path):
        board = LeaseBoard(tmp_path)
        digest = "c" * 64
        board.dir.mkdir(parents=True, exist_ok=True)
        (board.dir / f"{digest}.lock").write_text("{torn write")
        assert board.claim(digest) == "stolen"

    def test_refresh_extends_only_own_leases(self, tmp_path):
        ours = LeaseBoard(tmp_path, ttl=60)
        theirs = LeaseBoard(tmp_path, ttl=60)
        mine, peers = "e" * 64, "f" * 64
        assert ours.claim(mine) == "acquired"
        assert theirs.claim(peers) == "acquired"
        before_mine = ours.holder(mine)["expires_at"]
        before_peers = ours.holder(peers)["expires_at"]
        time.sleep(0.05)
        ours.refresh([mine, peers])
        assert ours.holder(mine)["expires_at"] > before_mine
        assert ours.holder(peers)["expires_at"] == before_peers

    def test_release_keeps_peer_lease(self, tmp_path):
        ours = LeaseBoard(tmp_path, ttl=60)
        theirs = LeaseBoard(tmp_path, ttl=60)
        digest = "9" * 64
        assert theirs.claim(digest) == "acquired"
        ours.release(digest)
        assert ours.outstanding() == [digest]

    def test_ttl_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            LeaseBoard(tmp_path, ttl=0)

    def test_cooperate_requires_cache(self):
        with pytest.raises(ValueError, match="requires a ResultCache"):
            StudyExecutor(cooperate=True).run(TaskGraph())


class TestCooperativeExecution:
    def test_two_executors_split_one_study(self, tmp_path):
        """Cold cooperative run: every task executes exactly once."""
        cache = ResultCache(tmp_path / "cache")
        run_dir = tmp_path / "run"
        count = 8
        with _EXECUTED_LOCK:
            _EXECUTED.clear()

        reports = {}

        def drive(writer: str) -> None:
            executor = StudyExecutor(
                cache=cache,
                log=RunLog(run_dir, writer_id=writer),
                cooperate=True,
                lease_ttl=60.0,
            )
            reports[writer] = executor.run(
                touch_graph(count, dataset="coop-cold", delay=0.02)
            )

        threads = [
            threading.Thread(target=drive, args=(writer,))
            for writer in ("left", "right")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # The lease-race bound: each task executed at most (and here
        # exactly) once across both executors.
        assert sorted(_EXECUTED) == sorted(f"t{i}" for i in range(count))
        assert reports["left"].executed + reports["right"].executed == count
        for report in reports.values():
            report.raise_on_failure()
            assert report.completed == count
            assert {t: o.value for t, o in report.outcomes.items()} == {
                f"t{i}": i * 10 for i in range(count)
            }
        assert len(cache) == count
        assert (tmp_path / "cache" / LEASES_DIRNAME).exists()
        assert list((tmp_path / "cache" / LEASES_DIRNAME).glob("*.lock")) == []

        # The merged run view satisfies the ART009 contract.
        merge_run_dir(run_dir)
        manifest = read_manifest(run_dir)
        assert manifest["status"] == "completed"
        assert manifest["writers"] == ["left", "right"]
        assert manifest["executed"] == count
        assert manifest["completed"] == count
        assert manifest["cache_hits"] == 0

        # Warm rerun: a fresh executor resumes entirely from cache.
        with _EXECUTED_LOCK:
            _EXECUTED.clear()
        warm = StudyExecutor(cache=cache, cooperate=True).run(
            touch_graph(count, dataset="coop-cold")
        )
        assert warm.cache_hits == count
        assert warm.executed == 0
        assert _EXECUTED == []

    def test_steal_back_from_dead_coordinator(self, tmp_path):
        """Expired leases of a killed peer are stolen, cache prefix reused.

        This is the killed-coordinator scenario: the dead executor left
        (a) results for its completed prefix in the cache and (b) stale
        lease files for the tasks it was holding when it died.  A fresh
        cooperative executor must serve the prefix from cache (zero
        recomputation) and steal the stale leases to run the remainder.
        """
        cache = ResultCache(tmp_path / "cache")
        run_dir = tmp_path / "run"
        count, prefix = 6, 3
        graph = touch_graph(count, dataset="steal")
        specs = {spec.task_id: spec for spec in graph}
        for i in range(prefix):
            cache.put(specs[f"t{i}"].key, i * 10)
        board_dir = tmp_path / "cache" / LEASES_DIRNAME
        board_dir.mkdir(parents=True, exist_ok=True)
        long_ago = time.time() - 1000.0
        for i in range(prefix, count):
            digest = specs[f"t{i}"].key.digest()
            (board_dir / f"{digest}.lock").write_text(
                json.dumps(
                    {
                        "owner": "dead-executor",
                        "pid": 0,
                        "acquired_at": long_ago,
                        "expires_at": long_ago + 30.0,
                    }
                )
            )

        with _EXECUTED_LOCK:
            _EXECUTED.clear()
        log = RunLog(run_dir)
        report = StudyExecutor(cache=cache, log=log, cooperate=True).run(
            touch_graph(count, dataset="steal")
        )
        report.raise_on_failure()
        assert report.cache_hits == prefix
        assert report.executed == count - prefix
        assert sorted(_EXECUTED) == [f"t{i}" for i in range(prefix, count)]
        steals = [
            e for e in read_events(log.events_path) if e["event"] == "lease-steal"
        ]
        assert len(steals) == count - prefix
        assert list(board_dir.glob("*.lock")) == []

    def test_live_peer_lease_defers_then_settles_from_cache(self, tmp_path):
        """A task leased by a live peer is awaited, never recomputed."""
        cache = ResultCache(tmp_path / "cache")
        graph = touch_graph(1, dataset="defer")
        spec = next(iter(graph))
        peer = LeaseBoard(cache.root, ttl=60.0)
        assert peer.claim(spec.key.digest()) == "acquired"

        log = RunLog(tmp_path / "run")
        executor = StudyExecutor(cache=cache, log=log, cooperate=True)
        result = {}

        def drive() -> None:
            result["report"] = executor.run(touch_graph(1, dataset="defer"))

        with _EXECUTED_LOCK:
            _EXECUTED.clear()
        thread = threading.Thread(target=drive)
        thread.start()
        time.sleep(0.2)  # executor is polling: lease held, result pending
        assert not result
        cache.put(spec.key, 0)  # the "peer" lands its result...
        peer.release(spec.key.digest())  # ...and drops its lease
        thread.join(timeout=30)
        assert not thread.is_alive()
        report = result["report"]
        assert report.cache_hits == 1
        assert report.executed == 0
        assert _EXECUTED == []
        events = read_events(log.events_path)
        assert any(e["event"] == "lease-wait" for e in events)


class TestFaultInjection:
    def worker_env(self) -> dict[str, str]:
        env = dict(os.environ)
        extra = [str(REPO_ROOT / "src"), str(REPO_ROOT)]
        current = env.get("PYTHONPATH")
        if current:
            extra.append(current)
        env["PYTHONPATH"] = os.pathsep.join(extra)
        return env

    def test_sigkilled_socket_worker_steals_back_and_retries(self, tmp_path):
        """SIGKILL a socket worker mid-task; the retry must converge.

        After the dust settles: the task's value is correct, exactly two
        attempts were consumed, the cache holds exactly one object for
        the key (no lost and no doubly-stored results), and no lease
        file is left behind.
        """
        cache = ResultCache(tmp_path / "cache")
        pidfile = tmp_path / "pids.txt"
        release = tmp_path / "release"
        key = CacheKey(dataset="sigkill", algorithm="victim")

        def build_graph() -> TaskGraph:
            graph = TaskGraph()
            graph.add(
                TaskSpec(
                    task_id="victim",
                    op="sock.pidwait",
                    params={
                        "pidfile": str(pidfile),
                        "release": str(release),
                        "value": 42,
                        "patience": 60.0,
                    },
                    key=key,
                    retries=1,
                )
            )
            return graph

        transport = SocketTransport(
            workers=2,
            certificates=OpCertificates({"sock.pidwait": "certified"}),
            worker_imports=("tests.socket_ops",),
            env=self.worker_env(),
        )
        executor = StudyExecutor(
            cache=cache, cooperate=True, lease_ttl=120.0, transport=transport
        )
        result = {}

        def drive() -> None:
            result["report"] = executor.run(build_graph())

        thread = threading.Thread(target=drive)
        thread.start()
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if pidfile.exists() and pidfile.read_text().strip():
                    break
                time.sleep(0.02)
            first_pid = int(pidfile.read_text().split()[0])
            os.kill(first_pid, signal.SIGKILL)
            release.touch()
        finally:
            thread.join(timeout=120)
        assert not thread.is_alive()

        report = result["report"]
        report.raise_on_failure()
        outcome = report.outcomes["victim"]
        assert outcome.value == 42
        assert outcome.attempts == 2
        assert report.retries == 1
        # The retry ran in a different (surviving or respawned) process.
        pids = [int(line) for line in pidfile.read_text().split()]
        assert len(pids) == 2 and pids[0] != pids[1]
        # Exactly one stored object for the key; nothing lost, nothing
        # duplicated, and the content address verifies.
        assert cache.get(key) == 42
        assert len(cache) == 1
        objects = list((tmp_path / "cache").glob("objects/*/*.pkl"))
        assert len(objects) == 1
        assert list((tmp_path / "cache" / LEASES_DIRNAME).glob("*.lock")) == []

    def test_fresh_executor_resumes_killed_run_without_recompute(self, tmp_path):
        """Cache-backed resume: a successor run never re-executes work."""
        cache = ResultCache(tmp_path / "cache")
        with _EXECUTED_LOCK:
            _EXECUTED.clear()
        first = StudyExecutor(cache=cache).run(touch_graph(4, dataset="resume"))
        assert first.executed == 4
        with _EXECUTED_LOCK:
            _EXECUTED.clear()
        second = StudyExecutor(cache=cache, cooperate=True).run(
            touch_graph(4, dataset="resume")
        )
        assert second.cache_hits == 4
        assert second.executed == 0
        assert _EXECUTED == []
