"""Transport layer: certificates, wire protocol, parity across transports.

The acceptance bar for the scheduler/transport split: ``inline``,
``pool`` and ``socket`` runs of the same graph produce bit-identical
values, and the socket transport refuses ops the lint certificates have
not certified for distributed execution.
"""

from __future__ import annotations

import os
import socket
import sys
from pathlib import Path

import pytest

import tests.socket_ops  # noqa: F401 — registers the sock.* ops locally

from repro.runtime.certify import (
    CertificateError,
    OpCertificates,
    ensure_transport_allowed,
)
from repro.runtime.events import RunLog, merge_run_dir, read_events, read_manifest
from repro.runtime.executor import StudyExecutor
from repro.runtime.cache import ResultCache
from repro.runtime.task import CacheKey, TaskGraph, TaskSpec
from repro.runtime.transports import (
    InlineTransport,
    PoolTransport,
    SocketTransport,
    TransportRefused,
    create_transport,
)
from repro.runtime.worker import (
    extract_frames,
    parse_address,
    recv_frame,
    send_frame,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Certificates for the tests' own ops — the committed certificate file
#: only knows the real study ops.
SOCK_CERTIFICATES = OpCertificates(
    {
        "sock.echo": "certified",
        "sock.pid": "certified",
        "sock.seeded": "certified",
        "sock.fail": "certified",
        "sock.pidwait": "certified",
    },
    source="tests",
)


def worker_env() -> dict[str, str]:
    """Environment for spawned workers: repro + the tests package."""
    env = dict(os.environ)
    extra = [str(REPO_ROOT / "src"), str(REPO_ROOT)]
    current = env.get("PYTHONPATH")
    if current:
        extra.append(current)
    env["PYTHONPATH"] = os.pathsep.join(extra)
    return env


def socket_transport(workers: int = 2, **overrides) -> SocketTransport:
    options = {
        "workers": workers,
        "certificates": SOCK_CERTIFICATES,
        "worker_imports": ("tests.socket_ops",),
        "env": worker_env(),
    }
    options.update(overrides)
    return SocketTransport(**options)


def sock_task(task_id, value, deps=(), key=None, retries=0, op="sock.echo"):
    params = {"value": value}
    return TaskSpec(
        task_id=task_id, op=op, params=params, deps=tuple(deps),
        key=key, retries=retries,
    )


def diamond_graph() -> TaskGraph:
    graph = TaskGraph()
    graph.add(sock_task("a", 1))
    graph.add(sock_task("b", 10))
    graph.add(sock_task("c", 100, deps=["a", "b"]))
    graph.add(sock_task("seeded", 0, op="sock.seeded"))
    graph.add(sock_task("final", 1000, deps=["c", "seeded"]))
    return graph


class TestCertificates:
    def test_inline_always_allowed(self):
        table = OpCertificates({})
        assert table.transport_allowed("anything", "inline")

    def test_remote_requires_certified_verdict(self):
        table = OpCertificates({"good": "certified", "bad": "inline-only"})
        assert table.transport_allowed("good", "socket")
        assert table.transport_allowed("good", "pool")
        assert not table.transport_allowed("bad", "socket")
        assert not table.transport_allowed("unknown", "socket")

    def test_load_missing_file_degrades_with_warning(self, tmp_path):
        with pytest.warns(RuntimeWarning, match="inline-only"):
            table = OpCertificates.load(tmp_path / "nope.json")
        assert table.transport_allowed("anonymize", "inline")
        assert not table.transport_allowed("anonymize", "socket")

    def test_load_corrupt_file_degrades_with_warning(self, tmp_path):
        bad = tmp_path / "certs.json"
        bad.write_text("{not json")
        with pytest.warns(RuntimeWarning, match="unreadable"):
            table = OpCertificates.load(bad)
        assert not table.transport_allowed("anonymize", "pool")

    def test_load_committed_repo_certificates(self):
        table = OpCertificates.load(REPO_ROOT / "lint" / "op_certificates.json")
        assert table.transport_allowed("anonymize", "socket")
        assert table.transport_allowed("measure", "socket")
        assert table.transport_allowed("compare", "socket")
        # sweep cells carry callables in their params: inline-only.
        assert not table.transport_allowed("analysis.sweep-cell", "socket")

    def test_ensure_transport_allowed_lists_refused_ops(self):
        table = OpCertificates({"ok": "certified"})
        ensure_transport_allowed(["ok"], "socket", table)
        with pytest.raises(CertificateError, match="nope"):
            ensure_transport_allowed(["ok", "nope"], "socket", table)

    def test_create_transport_names(self):
        assert create_transport("inline", 1).name == "inline"
        assert create_transport("pool", 2).name == "pool"
        assert create_transport("socket", 2).name == "socket"
        with pytest.raises(ValueError):
            create_transport("carrier-pigeon", 1)


class TestFrameProtocol:
    def test_send_recv_roundtrip(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, {"type": "hello", "pid": 42})
            message = recv_frame(right)
        finally:
            left.close()
            right.close()
        assert message == {"type": "hello", "pid": 42}

    def test_recv_none_on_clean_close(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert recv_frame(right) is None
        finally:
            right.close()

    def test_extract_frames_handles_partial_buffers(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, {"n": 1})
            send_frame(left, {"n": 2})
            raw = right.recv(1 << 16)
        finally:
            left.close()
            right.close()
        buffer = bytearray()
        buffer.extend(raw[:5])  # partial header
        assert extract_frames(buffer) == []
        buffer.extend(raw[5:])
        assert extract_frames(buffer) == [{"n": 1}, {"n": 2}]
        assert not buffer

    def test_parse_address(self):
        assert parse_address("127.0.0.1:9000") == ("127.0.0.1", 9000)
        assert parse_address(":9000") == ("127.0.0.1", 9000)
        with pytest.raises(ValueError):
            parse_address("no-port")


class TestTransportParity:
    def run_with(self, transport, retries=0):
        executor = StudyExecutor(transport=transport, default_retries=retries)
        report = executor.run(diamond_graph())
        report.raise_on_failure()
        return {t: o.value for t, o in report.outcomes.items()}

    def test_inline_pool_socket_values_identical(self):
        inline = self.run_with(InlineTransport())
        pool = self.run_with(PoolTransport(processes=2))
        sock = self.run_with(socket_transport(workers=2))
        assert inline == pool == sock
        assert inline["final"] == 1000 + (100 + 1 + 10) + inline["seeded"]

    def test_socket_tasks_run_in_other_processes(self):
        graph = TaskGraph()
        graph.add(sock_task("pid", 0, op="sock.pid"))
        executor = StudyExecutor(transport=socket_transport(workers=1))
        report = executor.run(graph)
        report.raise_on_failure()
        assert report.outcomes["pid"].value != os.getpid()

    def test_socket_failure_isolation_and_retry_budget(self):
        graph = TaskGraph()
        graph.add(sock_task("boom", 0, op="sock.fail", retries=1))
        graph.add(sock_task("child", 5, deps=["boom"]))
        graph.add(sock_task("independent", 7))
        executor = StudyExecutor(transport=socket_transport(workers=1))
        report = executor.run(graph)
        assert report.outcomes["boom"].status == "failed"
        assert report.outcomes["boom"].attempts == 2
        assert "socket boom" in report.outcomes["boom"].error
        assert report.outcomes["child"].status == "blocked"
        assert report.outcomes["independent"].value == 7


class TestSocketRefusal:
    def test_submit_refuses_uncertified_op(self):
        transport = socket_transport(
            workers=1, certificates=OpCertificates({}), spawn_workers=False
        )
        transport.start()
        try:
            assert not transport.allows("sock.echo")
            from repro.runtime.transports import TaskPayload

            with pytest.raises(TransportRefused, match="sock.echo"):
                transport.submit(TaskPayload("t", "sock.echo", {}, {}, 0, False))
        finally:
            transport.stop()

    def test_scheduler_falls_back_inline_for_refused_ops(self, tmp_path):
        log = RunLog(tmp_path / "run")
        transport = socket_transport(
            workers=1, certificates=OpCertificates({}), spawn_workers=False
        )
        executor = StudyExecutor(transport=transport, log=log)
        report = executor.run(diamond_graph())
        report.raise_on_failure()
        events = read_events(log.events_path)
        fallbacks = [e for e in events if e["event"] == "inline-fallback"]
        assert len(fallbacks) == len(diamond_graph())
        assert all(e["reason"] == "uncertified" for e in fallbacks)


class TestStudyParityAcrossTransports:
    """The smoke-study acceptance criterion: bit-identical results."""

    @staticmethod
    def run_study_with(tmp_path, name, **kwargs):
        from repro.runtime.study import AlgorithmSpec, DatasetSpec, StudySpec, run_study

        spec = StudySpec(
            dataset=DatasetSpec.of("adult", rows=24, seed=7),
            algorithms=(
                AlgorithmSpec.of("datafly", k=2),
                AlgorithmSpec.of("mondrian", k=2),
            ),
            scalar_measures=("k_achieved", "lm"),
            vector_properties=("equivalence-class-size",),
            compare=True,
            seed=7,
        )
        cache = ResultCache(tmp_path / f"cache-{name}")
        return run_study(spec, cache=cache, **kwargs)

    def test_inline_pool_socket_bit_identical(self, tmp_path):
        inline = self.run_study_with(tmp_path, "inline", transport="inline")
        pool = self.run_study_with(tmp_path, "pool", jobs=2, transport="pool")
        sock = self.run_study_with(
            tmp_path, "sock", jobs=2,
            transport=SocketTransport(workers=2, env=worker_env()),
        )
        assert inline.scalars == pool.scalars == sock.scalars
        assert inline.vectors == pool.vectors == sock.vectors
        assert inline.comparisons == pool.comparisons == sock.comparisons

    def test_socket_strict_ops_accepts_certified_study(self, tmp_path):
        result = self.run_study_with(
            tmp_path, "strict", jobs=2,
            transport=SocketTransport(workers=2, env=worker_env()),
            strict_ops=True,
        )
        assert result.report.failed == 0

    def test_strict_ops_rejects_uncertified_graph(self, tmp_path):
        with pytest.raises(CertificateError):
            self.run_study_with(
                tmp_path, "reject", transport="socket",
                strict_ops=True, certificates=OpCertificates({}),
            )


class TestMultiWriterRunLog:
    def test_per_writer_files_and_sequence(self, tmp_path):
        run_dir = tmp_path / "run"
        left = RunLog(run_dir, writer_id="left")
        right = RunLog(run_dir, writer_id="right")
        left.event("run-start", tasks=1)
        right.event("run-start", tasks=1)
        left.event("finished", task_id="t1")
        assert left.events_path.name == "events.left.jsonl"
        assert right.events_path.name == "events.right.jsonl"
        records = read_events(left.events_path)
        assert [r["seq"] for r in records] == [0, 1]
        assert all(r["writer"] == "left" for r in records)

    def test_writer_id_validation(self, tmp_path):
        with pytest.raises(ValueError):
            RunLog(tmp_path, writer_id="../evil")

    def test_artifact_path_suffixing(self, tmp_path):
        log = RunLog(tmp_path / "run", writer_id="w1")
        assert log.artifact_path("trace.json").name == "trace.w1.json"
        plain = RunLog(tmp_path / "plain")
        assert plain.artifact_path("trace.json").name == "trace.json"

    def test_merge_is_stable_and_complete(self, tmp_path):
        run_dir = tmp_path / "run"
        a = RunLog(run_dir, writer_id="a")
        b = RunLog(run_dir, writer_id="b")
        a.write_manifest({"status": "completed", "tasks": 2,
                          "task_ids": ["t1", "t2"], "wall_seconds": 1.0,
                          "started_at": 5.0, "finished_at": 6.0})
        b.write_manifest({"status": "completed", "tasks": 2,
                          "task_ids": ["t1", "t2"], "wall_seconds": 2.0,
                          "started_at": 5.5, "finished_at": 7.0})
        a.event("run-start", tasks=2)
        b.event("run-start", tasks=2)
        a.event("submitted", task_id="t1", attempt=1)
        a.event("finished", task_id="t1")
        b.event("cache-hit", task_id="t1")
        b.event("submitted", task_id="t2", attempt=1)
        b.event("finished", task_id="t2")
        a.event("run-finish")
        b.event("run-finish")
        merged_path = a.finish()
        assert merged_path == run_dir / "events.jsonl"
        events = read_events(merged_path)
        assert len(events) == 9
        timestamps = [e["ts"] for e in events]
        assert timestamps == sorted(timestamps)
        # per-writer sequences stay monotonic in the merged stream
        for writer in ("a", "b"):
            seqs = [e["seq"] for e in events if e["writer"] == writer]
            assert seqs == sorted(seqs)
        manifest = read_manifest(run_dir)
        assert manifest["status"] == "completed"
        assert manifest["writers"] == ["a", "b"]
        # t1 executed by a (b's settle was a cache hit), t2 executed by b
        assert manifest["completed"] == 2
        assert manifest["executed"] == 2
        assert manifest["cache_hits"] == 0
        assert manifest["cache_hit_events"] == 1
        assert manifest["wall_seconds"] == 2.0
        assert manifest["started_at"] == 5.0
        assert manifest["finished_at"] == 7.0

    def test_merged_run_dir_is_art009_clean(self, tmp_path):
        from repro.lint.artifacts import check_run_artifacts

        run_dir = tmp_path / "run"
        cache = ResultCache(tmp_path / "cache")
        graph1, graph2 = TaskGraph(), TaskGraph()
        for graph in (graph1, graph2):
            graph.add(sock_task("t1", 1, key=CacheKey(dataset="mw", algorithm="t1")))
            graph.add(sock_task("t2", 2, key=CacheKey(dataset="mw", algorithm="t2")))
        StudyExecutor(cache=cache, log=RunLog(run_dir, writer_id="a")).run(graph1)
        StudyExecutor(cache=cache, log=RunLog(run_dir, writer_id="b")).run(graph2)
        merge_run_dir(run_dir)
        findings = check_run_artifacts(run_dir)
        errors = [f for f in findings if f.severity.value == "error"]
        assert errors == []
        manifest = read_manifest(run_dir)
        assert manifest["executed"] == 2
        assert manifest["cache_hits"] == 0
        assert manifest["cache_hit_events"] == 2  # writer b hit both


class TestWorkerCli:
    def test_worker_connects_executes_and_shuts_down(self):
        import subprocess

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen()
        host, port = listener.getsockname()[:2]
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "worker",
             "--connect", f"{host}:{port}", "--import", "tests.socket_ops"],
            env=worker_env(),
        )
        try:
            listener.settimeout(30)
            conn, _ = listener.accept()
            conn.settimeout(30)
            hello = recv_frame(conn)
            assert hello["type"] == "hello"
            assert hello["pid"] == proc.pid
            send_frame(conn, {
                "type": "task", "task_id": "t", "op": "sock.echo",
                "params": {"value": 5}, "deps": {"d": 2}, "seed": 0,
                "observe": False,
            })
            result = recv_frame(conn)
            assert result["type"] == "result"
            payload = result["payload"]
            assert payload[0] == "t" and payload[1] is True and payload[2] == 7
            send_frame(conn, {"type": "shutdown"})
            assert proc.wait(timeout=30) == 0
            conn.close()
        finally:
            listener.close()
            if proc.poll() is None:
                proc.kill()
                proc.wait()
