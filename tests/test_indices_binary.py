"""Tests for binary quality indices (Sections 3, 5.2-5.4), including the
paper's exact worked examples and hypothesis invariants."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.comparators import strongly_dominates, weakly_dominates
from repro.core.indices.binary import (
    binary_count,
    compare_hypervolume,
    coverage,
    hypervolume,
    log_dominated_hypervolume,
    spread,
)
from repro.core.vector import PropertyVector, PropertyVectorError

positive = st.floats(min_value=0.01, max_value=100, allow_nan=False)


@st.composite
def paired_vectors(draw, min_value=0.01, max_value=100.0):
    size = draw(st.integers(min_value=1, max_value=15))
    element = st.floats(min_value=min_value, max_value=max_value, allow_nan=False)
    a = draw(st.lists(element, min_size=size, max_size=size))
    b = draw(st.lists(element, min_size=size, max_size=size))
    return PropertyVector(a), PropertyVector(b)


# Paper Section 3: T3a vs T3b class-size vectors.
S = PropertyVector((3, 3, 3, 3, 4, 4, 4, 3, 3, 4), "T3a")
T = PropertyVector((3, 7, 7, 3, 7, 7, 7, 3, 7, 7), "T3b")


class TestBinaryCount:
    def test_paper_section3_example(self):
        assert binary_count(S, T) == 0
        assert binary_count(T, S) == 7

    def test_lower_is_better(self):
        a = PropertyVector([0.1, 0.9], higher_is_better=False)
        b = PropertyVector([0.5, 0.5], higher_is_better=False)
        assert binary_count(a, b) == 1  # 0.1 is better than 0.5
        assert binary_count(b, a) == 1

    @given(paired_vectors())
    def test_counts_disjoint(self, pair):
        a, b = pair
        assert binary_count(a, b) + binary_count(b, a) <= len(a)


class TestCoverage:
    def test_paper_section52_values(self):
        assert coverage(S, T) == pytest.approx(0.3)
        assert coverage(T, S) == pytest.approx(1.0)

    def test_paper_section53_tie_example(self):
        d1 = PropertyVector((2, 2, 3, 4, 5))
        d2 = PropertyVector((3, 2, 4, 2, 3))
        assert coverage(d1, d2) == pytest.approx(3 / 5)
        assert coverage(d2, d1) == pytest.approx(3 / 5)

    def test_strict_variant_excludes_ties(self):
        d1 = PropertyVector((2, 2, 3, 4, 5))
        d2 = PropertyVector((3, 2, 4, 2, 3))
        assert coverage(d1, d2, strict=True) == pytest.approx(2 / 5)
        assert coverage(d2, d1, strict=True) == pytest.approx(2 / 5)

    def test_full_coverage_iff_strong_dominance(self):
        # Paper: P_cov(D1,D2)=1 and P_cov(D2,D1)=0 implies D1 strictly better.
        d1 = PropertyVector([5, 6])
        d2 = PropertyVector([4, 5])
        assert coverage(d1, d2) == 1.0
        assert coverage(d2, d1) == 0.0
        assert strongly_dominates(d1, d2)

    @given(paired_vectors())
    def test_coverage_bounds_and_completeness(self, pair):
        a, b = pair
        forward, backward = coverage(a, b), coverage(b, a)
        assert 0.0 <= forward <= 1.0
        # Ties count for both, so the two coverages cover everything.
        assert forward + backward >= 1.0 - 1e-12

    @given(paired_vectors())
    def test_weak_dominance_implies_full_coverage(self, pair):
        a, b = pair
        if weakly_dominates(a, b):
            assert coverage(a, b) == 1.0


class TestSpread:
    def test_paper_section53_example(self):
        d1 = PropertyVector((2, 2, 3, 4, 5))
        d2 = PropertyVector((3, 2, 4, 2, 3))
        assert spread(d1, d2) == pytest.approx(4.0)
        assert spread(d2, d1) == pytest.approx(2.0)

    def test_paper_2anon_vs_3anon_example(self):
        # Section 5.3: the 2-anonymous generalization wins on spread 8 vs 2.
        three = PropertyVector((3, 3, 3, 5, 5, 5, 5, 5, 3, 3, 3, 4, 4, 4, 4))
        two = PropertyVector((2, 2, 6, 6, 6, 6, 6, 6, 3, 3, 3, 4, 4, 4, 4))
        assert spread(three, two) == pytest.approx(2.0)
        assert spread(two, three) == pytest.approx(8.0)
        # And P_cov points the same way.
        assert coverage(two, three) > coverage(three, two)

    @given(paired_vectors())
    def test_spread_zero_iff_weakly_dominated(self, pair):
        a, b = pair
        # Paper: P_spr(D1, D2) = 0 iff D2 weakly dominates D1.
        assert (spread(a, b) == 0.0) == weakly_dominates(b, a)

    @given(paired_vectors())
    def test_spread_nonnegative(self, pair):
        a, b = pair
        assert spread(a, b) >= 0.0

    @given(paired_vectors())
    def test_spread_difference_is_mean_difference(self, pair):
        a, b = pair
        # spread(a,b) - spread(b,a) == sum(a) - sum(b) (telescoping max).
        assert spread(a, b) - spread(b, a) == pytest.approx(
            float(a.oriented.sum() - b.oriented.sum()), rel=1e-9, abs=1e-6
        )


class TestHypervolume:
    def test_paper_section54_example(self):
        s = PropertyVector((3, 3, 3, 5, 5, 5, 5, 5))
        t = PropertyVector((4, 4, 4, 4, 4, 4, 4, 4))
        assert hypervolume(s, t) == pytest.approx(3**3 * 5**5 - 3**3 * 4**5)
        assert hypervolume(t, s) == pytest.approx(4**8 - 3**3 * 4**5)
        assert hypervolume(s, t) > hypervolume(t, s)
        assert compare_hypervolume(s, t) == 1
        assert compare_hypervolume(t, s) == -1

    def test_zero_iff_dominated(self):
        a = PropertyVector([2, 2])
        b = PropertyVector([3, 3])
        assert hypervolume(a, b) == 0.0
        assert hypervolume(b, a) == pytest.approx(9 - 4)

    def test_negative_values_rejected(self):
        with pytest.raises(PropertyVectorError, match="reference"):
            hypervolume(PropertyVector([-1, 2]), PropertyVector([1, 1]))

    def test_reference_shift(self):
        a = PropertyVector([3, 3])
        b = PropertyVector([2, 4])
        # With reference 2, a's volume is 1, b's is 0 (degenerate).
        assert hypervolume(a, b, reference=2.0) == pytest.approx(1.0)

    def test_log_form_matches_for_small_vectors(self):
        a = PropertyVector([3, 5, 7])
        assert log_dominated_hypervolume(a) == pytest.approx(math.log(105))

    def test_log_form_degenerate(self):
        assert log_dominated_hypervolume(
            PropertyVector([0.0, 3.0])
        ) == float("-inf")

    def test_log_comparison_safe_for_large_vectors(self):
        # 2000 tuples with sizes ~ 50: the raw product overflows, the log
        # comparison must still order correctly.
        big = PropertyVector([50.0] * 2000)
        slightly_smaller = PropertyVector([50.0] * 1999 + [49.0])
        assert compare_hypervolume(big, slightly_smaller) == 1
        assert compare_hypervolume(slightly_smaller, big) == -1
        assert compare_hypervolume(big, big) == 0

    @given(paired_vectors(min_value=0.5, max_value=10))
    def test_hypervolume_nonnegative(self, pair):
        a, b = pair
        assert hypervolume(a, b) >= -1e-9

    @given(paired_vectors(min_value=0.5, max_value=10))
    def test_log_comparison_matches_raw(self, pair):
        a, b = pair
        raw = hypervolume(a, b) - hypervolume(b, a)
        sign = compare_hypervolume(a, b)
        if abs(raw) > 1e-6:
            assert math.copysign(1, raw) == sign


class TestEpsilonIndicator:
    def test_nonpositive_iff_weak_dominance(self):
        from repro.core.indices.binary import epsilon_indicator

        assert epsilon_indicator(T, S) <= 0  # T3b dominates T3a
        assert epsilon_indicator(S, T) > 0

    def test_exact_shift(self):
        from repro.core.indices.binary import epsilon_indicator

        a = PropertyVector([3, 5])
        b = PropertyVector([4, 4])
        # a needs +1 on tuple 1 to dominate b.
        assert epsilon_indicator(a, b) == 1.0
        assert epsilon_indicator(b, a) == 1.0

    def test_self_is_zero(self):
        from repro.core.indices.binary import epsilon_indicator

        assert epsilon_indicator(S, S) == 0.0

    def test_orientation(self):
        from repro.core.indices.binary import epsilon_indicator

        low = PropertyVector([0.1, 0.1], higher_is_better=False)
        high = PropertyVector([0.9, 0.9], higher_is_better=False)
        assert epsilon_indicator(low, high) <= 0  # low loss dominates

    @given(paired_vectors())
    def test_dominance_characterization(self, pair):
        from repro.core.indices.binary import epsilon_indicator

        a, b = pair
        assert (epsilon_indicator(a, b) <= 0) == weakly_dominates(a, b)

    @given(paired_vectors())
    def test_triangle_inequality(self, pair):
        from repro.core.indices.binary import epsilon_indicator

        a, b = pair
        c = PropertyVector([1.0] * len(a))
        assert epsilon_indicator(a, b) <= (
            epsilon_indicator(a, c) + epsilon_indicator(c, b) + 1e-9
        )
