"""Tests for privacy models: k-anonymity, l-diversity, t-closeness,
p-sensitive k-anonymity, personalized privacy."""

import math

import pytest

from repro.datasets import paper_tables
from repro.privacy import (
    DistinctLDiversity,
    EntropyLDiversity,
    KAnonymity,
    PersonalizedPrivacy,
    PrivacyModelError,
    PSensitiveKAnonymity,
    RecursiveCLDiversity,
    TCloseness,
    equal_distance_emd,
    ordered_distance_emd,
)

SENSITIVE = paper_tables.SENSITIVE_ATTRIBUTE


class TestKAnonymity:
    def test_measures(self, t3a, t3b, t4):
        assert KAnonymity(3).measure(t3a) == 3
        assert KAnonymity(3).measure(t3b) == 3
        assert KAnonymity(4).measure(t4) == 4

    def test_satisfaction(self, t3a, t4):
        assert KAnonymity(3).satisfied_by(t3a)
        assert not KAnonymity(4).satisfied_by(t3a)
        assert KAnonymity(4).satisfied_by(t4)

    def test_property_vector(self, t3a):
        vector = KAnonymity(3).property_vector(t3a)
        assert vector.as_tuple() == tuple(map(float, paper_tables.CLASS_SIZE_T3A))

    def test_invalid_k(self):
        with pytest.raises(PrivacyModelError):
            KAnonymity(0)


class TestDistinctLDiversity:
    def test_t3a_is_2_diverse(self, t3a):
        model = DistinctLDiversity(2, SENSITIVE)
        assert model.measure(t3a) == 2
        assert model.satisfied_by(t3a)
        assert not DistinctLDiversity(3, SENSITIVE).satisfied_by(t3a)

    def test_property_vector(self, t3a):
        vector = DistinctLDiversity(2, SENSITIVE).property_vector(t3a)
        assert vector[0] == 2  # class {1,4,8}
        assert vector[4] == 3  # class {5,6,7,10}

    def test_invalid_l(self):
        with pytest.raises(PrivacyModelError):
            DistinctLDiversity(0)


class TestEntropyLDiversity:
    def test_uniform_class_reaches_distinct_count(self, t3b):
        model = EntropyLDiversity(1.5, SENSITIVE)
        measured = model.measure(t3b)
        # Entropy-l is at most the distinct count of the weakest class.
        distinct = DistinctLDiversity(1, SENSITIVE).measure(t3b)
        assert 1.0 <= measured <= distinct + 1e-9

    def test_single_value_class_gives_one(self, table1):
        from repro.anonymize.engine import recode

        hierarchies = {
            "Zip Code": paper_tables.zip_hierarchy(),
            "Age": paper_tables.age_hierarchy(10, 5),
            SENSITIVE: paper_tables.marital_hierarchy(),
        }
        # No generalization: every class is a single row -> entropy 0, l=1.
        raw = recode(
            table1, hierarchies, {"Zip Code": 0, "Age": 0, SENSITIVE: 0}
        )
        assert EntropyLDiversity(1.0, SENSITIVE).measure(raw) == pytest.approx(1.0)

    def test_property_vector_constant_within_class(self, t3a):
        model = EntropyLDiversity(1.0, SENSITIVE)
        vector = model.property_vector(t3a)
        classes = t3a.equivalence_classes
        for class_members in classes:
            values = {round(vector[i], 9) for i in class_members}
            assert len(values) == 1

    def test_invalid_l(self):
        with pytest.raises(PrivacyModelError):
            EntropyLDiversity(0.5)


class TestRecursiveCLDiversity:
    def test_margin_computation(self, t3a):
        model = RecursiveCLDiversity(2.0, 2, SENSITIVE)
        # Weakest class {1,4,8}: counts (2,1); margin = 2*1/2 = 1.0 -> fails.
        assert model.measure(t3a) == pytest.approx(1.0)
        assert not model.satisfied_by(t3a)

    def test_larger_c_satisfies(self, t3a):
        model = RecursiveCLDiversity(3.0, 2, SENSITIVE)
        assert model.measure(t3a) == pytest.approx(1.5)
        assert model.satisfied_by(t3a)

    def test_too_few_distinct_values(self, t3a):
        model = RecursiveCLDiversity(10.0, 4, SENSITIVE)
        assert model.measure(t3a) == 0.0
        assert not model.satisfied_by(t3a)

    def test_property_vector_orientation(self, t3a):
        vector = RecursiveCLDiversity(2.0, 2, SENSITIVE).property_vector(t3a)
        assert vector.higher_is_better

    def test_invalid_parameters(self):
        with pytest.raises(PrivacyModelError):
            RecursiveCLDiversity(0, 2)
        with pytest.raises(PrivacyModelError):
            RecursiveCLDiversity(1.0, 0)


class TestEmd:
    def test_equal_distance_total_variation(self):
        assert equal_distance_emd([1, 0], [0, 1]) == 1.0
        assert equal_distance_emd([0.5, 0.5], [0.5, 0.5]) == 0.0
        assert equal_distance_emd([0.7, 0.3], [0.3, 0.7]) == pytest.approx(0.4)

    def test_ordered_distance(self):
        # Mass moved across the whole ordered support costs the most.
        far = ordered_distance_emd([1, 0, 0], [0, 0, 1])
        near = ordered_distance_emd([1, 0, 0], [0, 1, 0])
        assert far == pytest.approx(1.0)
        assert near == pytest.approx(0.5)

    def test_single_support(self):
        assert ordered_distance_emd([1.0], [1.0]) == 0.0

    def test_mismatched_supports_rejected(self):
        with pytest.raises(PrivacyModelError):
            equal_distance_emd([1.0], [0.5, 0.5])
        with pytest.raises(PrivacyModelError):
            ordered_distance_emd([1.0], [0.5, 0.5])


class TestTCloseness:
    def test_fully_generalized_is_0_close(self, table1):
        from repro.anonymize.engine import recode

        hierarchies = {
            "Zip Code": paper_tables.zip_hierarchy(),
            "Age": paper_tables.age_hierarchy(10, 5),
            SENSITIVE: paper_tables.marital_hierarchy(),
        }
        top = recode(table1, hierarchies, {"Zip Code": 5, "Age": 2, SENSITIVE: 2})
        model = TCloseness(0.0, SENSITIVE)
        assert model.measure(top) == pytest.approx(1.0)
        assert model.satisfied_by(top)

    def test_t3a_distance_positive(self, t3a):
        model = TCloseness(0.1, SENSITIVE)
        distances = model.class_distances(t3a)
        assert all(distance >= 0 for distance in distances)
        assert max(distances) > 0.1
        assert not model.satisfied_by(t3a)

    def test_loose_t_satisfied(self, t3a):
        assert TCloseness(1.0, SENSITIVE).satisfied_by(t3a)

    def test_property_vector_orientation(self, t3a):
        vector = TCloseness(0.5, SENSITIVE).property_vector(t3a)
        assert not vector.higher_is_better
        assert len(vector) == 10

    def test_ordered_variant_on_numeric(self, t3a):
        model = TCloseness(0.5, "Age", ordered=True)
        distances = model.class_distances(t3a)
        assert all(0 <= distance <= 1 for distance in distances)

    def test_invalid_t(self):
        with pytest.raises(PrivacyModelError):
            TCloseness(1.5)


class TestPSensitive:
    def test_t3a_is_2_sensitive_3_anonymous(self, t3a):
        model = PSensitiveKAnonymity(2, 3, SENSITIVE)
        assert model.measure(t3a) == pytest.approx(1.0)
        assert model.satisfied_by(t3a)

    def test_fails_on_higher_p(self, t3a):
        assert not PSensitiveKAnonymity(3, 3, SENSITIVE).satisfied_by(t3a)

    def test_property_vector_margin(self, t3a):
        vector = PSensitiveKAnonymity(2, 3, SENSITIVE).property_vector(t3a)
        # Class {5,6,7,10}: size 4, 3 distinct -> min(4/3, 3/2) = 4/3.
        assert vector[4] == pytest.approx(4 / 3)

    def test_invalid_p(self):
        with pytest.raises(PrivacyModelError):
            PSensitiveKAnonymity(0, 3)


class TestPersonalized:
    @pytest.fixture
    def taxonomy(self):
        return paper_tables.marital_hierarchy()

    def test_leaf_guarding_nodes(self, t3a, taxonomy, table1):
        # Everyone guards their exact marital status.
        nodes = list(table1.column(SENSITIVE))
        model = PersonalizedPrivacy(taxonomy, nodes, bound=0.7, sensitive_attribute=SENSITIVE)
        probabilities = model.breach_probabilities(t3a)
        # Tuple 1 (CF-Spouse in class {1,4,8} with 2 CF-Spouse): 2/3.
        assert probabilities[0] == pytest.approx(2 / 3)
        assert model.satisfied_by(t3a)

    def test_internal_guarding_node(self, t3a, taxonomy):
        # Tuple 1 guards the whole "Married" subtree: its class {1,4,8} is
        # all Married, so breach probability is 1.
        nodes = ["Married"] + ["*"] * 9
        model = PersonalizedPrivacy(taxonomy, nodes, bound=0.9, sensitive_attribute=SENSITIVE)
        probabilities = model.breach_probabilities(t3a)
        assert probabilities[0] == pytest.approx(1.0)
        assert probabilities[1] == 0.0  # root guarding node: no requirement
        assert not model.satisfied_by(t3a)

    def test_bias_visible_in_property_vector(self, t3b, taxonomy, table1):
        # Section 2: personalized privacy still biases — equal guarding
        # nodes, unequal probabilities.
        nodes = list(table1.column(SENSITIVE))
        model = PersonalizedPrivacy(taxonomy, nodes, bound=1.0, sensitive_attribute=SENSITIVE)
        vector = model.property_vector(t3b)
        assert not vector.higher_is_better
        assert len(set(vector.as_tuple())) > 1

    def test_unknown_guarding_node_rejected(self, t3a, taxonomy):
        model = PersonalizedPrivacy(
            taxonomy, ["Nonsense"] + ["*"] * 9, bound=0.5, sensitive_attribute=SENSITIVE
        )
        with pytest.raises(PrivacyModelError, match="guarding node"):
            model.breach_probabilities(t3a)

    def test_wrong_node_count_rejected(self, t3a, taxonomy):
        model = PersonalizedPrivacy(taxonomy, ["*"], bound=0.5, sensitive_attribute=SENSITIVE)
        with pytest.raises(PrivacyModelError, match="guarding nodes"):
            model.breach_probabilities(t3a)

    def test_invalid_bound(self, taxonomy):
        with pytest.raises(PrivacyModelError):
            PersonalizedPrivacy(taxonomy, ["*"], bound=0.0)


class TestHierarchicalEmd:
    @pytest.fixture
    def taxonomy(self):
        return paper_tables.marital_hierarchy()

    def test_identical_distributions_zero(self, taxonomy):
        from repro.privacy import hierarchical_distance_emd

        p = {"CF-Spouse": 0.5, "Divorced": 0.5}
        assert hierarchical_distance_emd(p, dict(p), taxonomy) == pytest.approx(0.0)

    def test_sibling_move_costs_one_level(self, taxonomy):
        from repro.privacy import hierarchical_distance_emd

        # CF-Spouse and Spouse Present share the "Married" parent at level
        # 1 of height 2: moving all mass costs 1/2.
        d = hierarchical_distance_emd(
            {"CF-Spouse": 1.0}, {"Spouse Present": 1.0}, taxonomy
        )
        assert d == pytest.approx(0.5)

    def test_cross_subtree_move_costs_full_height(self, taxonomy):
        from repro.privacy import hierarchical_distance_emd

        d = hierarchical_distance_emd(
            {"CF-Spouse": 1.0}, {"Divorced": 1.0}, taxonomy
        )
        assert d == pytest.approx(1.0)

    def test_symmetry(self, taxonomy):
        from repro.privacy import hierarchical_distance_emd

        p = {"CF-Spouse": 0.7, "Separated": 0.3}
        q = {"Divorced": 0.4, "Spouse Present": 0.6}
        assert hierarchical_distance_emd(p, q, taxonomy) == pytest.approx(
            hierarchical_distance_emd(q, p, taxonomy)
        )

    def test_at_most_equal_distance_scaled(self, taxonomy):
        from repro.privacy import (
            equal_distance_emd,
            hierarchical_distance_emd,
        )

        # Hierarchical cost per unit mass is <= 1, like equal distance; for
        # mass staying inside a subtree it is strictly cheaper.
        p = {"CF-Spouse": 1.0}
        q = {"Spouse Present": 1.0}
        hierarchical = hierarchical_distance_emd(p, q, taxonomy)
        support = ["CF-Spouse", "Spouse Present"]
        equal = equal_distance_emd([1.0, 0.0], [0.0, 1.0])
        assert hierarchical < equal

    def test_model_with_taxonomy(self, t3a, taxonomy):
        model = TCloseness(0.8, SENSITIVE, taxonomy=taxonomy)
        distances = model.class_distances(t3a)
        assert all(0.0 <= d <= 1.0 for d in distances)
        assert model.satisfied_by(t3a)
        assert not TCloseness(0.3, SENSITIVE, taxonomy=taxonomy).satisfied_by(t3a)

    def test_ordered_and_taxonomy_mutually_exclusive(self, taxonomy):
        with pytest.raises(PrivacyModelError):
            TCloseness(0.5, SENSITIVE, ordered=True, taxonomy=taxonomy)
