"""Tests for Layer 2 of repro.lint: the AST rules (REP001-REP005), the
engine, the reporters and the ``repro lint`` CLI."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import api
from repro.lint import engine as lint_engine
from repro.lint.diagnostics import (
    Diagnostic,
    Severity,
    has_blocking,
    sort_diagnostics,
    worst_severity,
)
from repro.lint.engine import (
    LintContext,
    Rule,
    RuleVisitor,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    register,
    registered_rules,
)
from repro.lint.report import render, render_json, render_text, summarize

REPO_SRC = Path(__file__).resolve().parent.parent / "src"

#: A path inside the comparator scope of REP002.
CORE = "src/repro/core/example.py"
#: A path outside every scoped rule.
PLAIN = "src/repro/io/example.py"


def rule_ids(findings):
    return sorted({d.rule for d in findings})


class TestRep001UnseededRandom:
    def test_global_random_call_is_flagged(self):
        source = "import random\n\ndef f(items):\n    random.shuffle(items)\n"
        findings = lint_source(source, path=PLAIN)
        assert rule_ids(findings) == ["REP001"]
        assert findings[0].line == 4

    def test_legacy_numpy_global_is_flagged(self):
        source = "import numpy as np\n\nx = np.random.rand(3)\n"
        assert rule_ids(lint_source(source, path=PLAIN)) == ["REP001"]

    def test_unseeded_default_rng_is_flagged(self):
        source = "import numpy as np\n\nrng = np.random.default_rng()\n"
        assert rule_ids(lint_source(source, path=PLAIN)) == ["REP001"]

    def test_from_import_default_rng_is_flagged(self):
        source = (
            "from numpy.random import default_rng\n\nrng = default_rng()\n"
        )
        assert rule_ids(lint_source(source, path=PLAIN)) == ["REP001"]

    def test_none_seed_counts_as_unseeded(self):
        source = "import numpy as np\n\nrng = np.random.default_rng(None)\n"
        assert rule_ids(lint_source(source, path=PLAIN)) == ["REP001"]

    def test_seeded_generators_are_clean(self):
        source = (
            "import random\n"
            "import numpy as np\n\n"
            "rng = np.random.default_rng(42)\n"
            "gen = np.random.Generator(np.random.PCG64(1))\n"
            "local = random.Random(7)\n"
        )
        assert lint_source(source, path=PLAIN) == []

    def test_synthetic_module_is_exempt(self):
        source = "import random\n\nrandom.shuffle([1, 2])\n"
        path = "src/repro/datasets/synthetic.py"
        assert lint_source(source, path=path) == []


class TestRep002FloatEquality:
    VIOLATION = (
        "def rel(a, b):\n"
        "    x = float(a)\n"
        "    if x == float(b):\n"
        "        return 1\n"
        "    return 0\n"
    )

    def test_float_equality_in_core_is_flagged(self):
        findings = lint_source(self.VIOLATION, path=CORE)
        assert rule_ids(findings) == ["REP002"]
        assert len(findings) == 1  # one violation, one finding — no dupes
        assert findings[0].line == 3

    def test_float_literal_comparand_is_flagged(self):
        source = "def f(x):\n    return x == 0.5\n"
        assert rule_ids(lint_source(source, path=CORE)) == ["REP002"]

    def test_moo_paths_are_in_scope(self):
        assert rule_ids(
            lint_source(self.VIOLATION, path="src/repro/moo/pareto.py")
        ) == ["REP002"]

    def test_rule_is_scoped_to_comparator_code(self):
        assert lint_source(self.VIOLATION, path=PLAIN) == []

    def test_integer_equality_is_clean(self):
        source = "def f(a, b):\n    return len(a) == len(b)\n"
        assert lint_source(source, path=CORE) == []

    def test_isclose_is_clean(self):
        source = (
            "import math\n\n"
            "def f(a, b):\n"
            "    return math.isclose(float(a), float(b))\n"
        )
        assert lint_source(source, path=CORE) == []

    def test_nested_scope_bindings_do_not_leak(self):
        source = (
            "def outer():\n"
            "    def inner():\n"
            "        x = 0.5\n"
            "        return x\n"
            "    x = 1\n"
            "    return x == 1\n"
        )
        assert lint_source(source, path=CORE) == []


class TestRep003MutableDefault:
    def test_list_default_is_flagged(self):
        source = "def f(x, acc=[]):\n    acc.append(x)\n    return acc\n"
        findings = lint_source(source, path=PLAIN)
        assert rule_ids(findings) == ["REP003"]
        assert "'f'" in findings[0].message

    def test_keyword_only_dict_default_is_flagged(self):
        source = "def f(x, *, cache={}):\n    return cache\n"
        assert rule_ids(lint_source(source, path=PLAIN)) == ["REP003"]

    def test_constructor_default_is_flagged(self):
        source = "def f(x, seen=set()):\n    return seen\n"
        assert rule_ids(lint_source(source, path=PLAIN)) == ["REP003"]

    def test_none_and_tuple_defaults_are_clean(self):
        source = "def f(x, acc=None, pair=()):\n    return acc or list(pair)\n"
        assert lint_source(source, path=PLAIN) == []


class TestRep004UnorderedIteration:
    def test_for_loop_over_set_is_flagged(self):
        source = (
            "def f(values):\n"
            "    seen = set(values)\n"
            "    for v in seen:\n"
            "        print(v)\n"
        )
        findings = lint_source(source, path=PLAIN)
        assert rule_ids(findings) == ["REP004"]
        assert len(findings) == 1
        assert all(d.severity is Severity.WARNING for d in findings)

    def test_comprehension_over_set_literal_is_flagged(self):
        source = "rows = [v for v in {1, 2, 3}]\n"
        assert rule_ids(lint_source(source, path=PLAIN)) == ["REP004"]

    def test_list_materialization_is_flagged(self):
        source = "def f(values):\n    return list(set(values))\n"
        assert rule_ids(lint_source(source, path=PLAIN)) == ["REP004"]

    def test_sorted_iteration_is_clean(self):
        source = (
            "def f(values):\n"
            "    seen = set(values)\n"
            "    return sorted(seen)\n"
        )
        assert lint_source(source, path=PLAIN) == []

    def test_set_comprehension_is_clean(self):
        # Building another set: no iteration order can escape.
        source = "def f(seen):\n    other = {v for v in set(seen)}\n    return other\n"
        assert lint_source(source, path=PLAIN) == []


class TestRep005AnonymizerContract:
    def test_missing_anonymize_is_flagged(self):
        source = (
            "class Broken(Anonymizer):\n"
            "    def describe(self):\n"
            "        return 'broken'\n"
        )
        findings = lint_source(source, path=PLAIN)
        assert rule_ids(findings) == ["REP005"]
        assert "'Broken'" in findings[0].message

    def test_wrong_arity_is_flagged(self):
        source = (
            "class Bad(Anonymizer):\n"
            "    def anonymize(self, dataset):\n"
            "        return dataset\n"
        )
        findings = lint_source(source, path=PLAIN)
        assert rule_ids(findings) == ["REP005"]
        assert "(self, dataset, hierarchies)" in findings[0].message

    def test_qualified_base_is_recognized(self):
        source = (
            "class Bad(base.Anonymizer):\n"
            "    pass\n"
        )
        assert rule_ids(lint_source(source, path=PLAIN)) == ["REP005"]

    def test_conforming_subclass_is_clean(self):
        source = (
            "class Fine(Anonymizer):\n"
            "    def anonymize(self, dataset, hierarchies):\n"
            "        return dataset\n"
        )
        assert lint_source(source, path=PLAIN) == []

    def test_abstract_subclass_is_exempt(self):
        source = (
            "import abc\n\n"
            "class Partial(Anonymizer):\n"
            "    @abc.abstractmethod\n"
            "    def budget(self):\n"
            "        ...\n"
        )
        assert lint_source(source, path=PLAIN) == []

    def test_unrelated_class_is_ignored(self):
        source = "class Widget(Base):\n    pass\n"
        assert lint_source(source, path=PLAIN) == []


class TestRep008RowwiseGeneralization:
    def test_for_loop_over_dataset_is_flagged(self):
        source = (
            "def decode(dataset, hierarchy, level):\n"
            "    out = []\n"
            "    for row in dataset:\n"
            "        out.append(hierarchy.generalize(row[0], level))\n"
            "    return out\n"
        )
        findings = lint_source(source, path=PLAIN)
        assert rule_ids(findings) == ["REP008"]

    def test_comprehension_over_column_is_flagged(self):
        source = (
            "def decode(dataset, hierarchy, level):\n"
            "    return [hierarchy.generalize(v, level)"
            " for v in dataset.column('age')]\n"
        )
        assert rule_ids(lint_source(source, path=PLAIN)) == ["REP008"]

    def test_enumerate_wrapped_rows_are_flagged(self):
        source = (
            "def decode(table, hierarchy):\n"
            "    for i, row in enumerate(table.rows):\n"
            "        yield hierarchy.generalize(row[0], 1)\n"
        )
        assert rule_ids(lint_source(source, path=PLAIN)) == ["REP008"]

    def test_domain_loops_are_clean(self):
        # Looping a hierarchy's (tiny) leaf domain is the sanctioned idiom.
        source = (
            "def parents(taxonomy, level):\n"
            "    return [taxonomy.generalize(leaf, level)"
            " for leaf in taxonomy.leaves]\n"
        )
        assert lint_source(source, path=PLAIN) == []

    def test_row_loop_without_generalize_is_clean(self):
        source = (
            "def widths(dataset):\n"
            "    return [len(row) for row in dataset]\n"
        )
        assert lint_source(source, path=PLAIN) == []

    def test_engine_reference_plane_is_exempt(self):
        source = (
            "def recode_rowwise(dataset, hierarchy, level):\n"
            "    return [hierarchy.generalize(row[0], level)"
            " for row in dataset]\n"
        )
        path = "src/repro/anonymize/engine.py"
        assert lint_source(source, path=path) == []

    def test_level_table_builder_is_exempt(self):
        source = (
            "def build(raw, hierarchy, level):\n"
            "    return [hierarchy.generalize(value, level) for value in raw]\n"
        )
        path = "src/repro/hierarchy/codes.py"
        assert lint_source(source, path=path) == []


class TestEngine:
    def test_syntax_error_becomes_rep000(self):
        findings = lint_source("def broken(:\n", path=PLAIN)
        assert rule_ids(findings) == ["REP000"]
        assert findings[0].severity is Severity.ERROR

    def test_all_five_rules_are_registered(self):
        assert set(registered_rules()) >= {
            "REP001", "REP002", "REP003", "REP004", "REP005",
        }

    def test_select_runs_only_named_rules(self):
        source = (
            "import random\n\n"
            "def f(x, acc=[]):\n"
            "    random.shuffle(acc)\n"
            "    return acc\n"
        )
        assert rule_ids(lint_source(source, path=PLAIN)) == ["REP001", "REP003"]
        selected = lint_source(source, path=PLAIN, select=["REP003"])
        assert rule_ids(selected) == ["REP003"]

    def test_unknown_rule_id_raises(self):
        with pytest.raises(ValueError, match="REP999"):
            lint_source("x = 1\n", path=PLAIN, select=["REP999"])

    def test_lint_paths_walks_directories(self, tmp_path):
        core = tmp_path / "core"
        core.mkdir()
        (core / "compare.py").write_text(
            "def f(x):\n    return x == 0.5\n", encoding="utf-8"
        )
        (tmp_path / "util.py").write_text("VALUE = 1\n", encoding="utf-8")
        findings = lint_paths([tmp_path])
        assert rule_ids(findings) == ["REP002"]
        assert findings[0].path.endswith("compare.py")

    def test_hidden_and_cache_dirs_are_skipped(self, tmp_path):
        (tmp_path / ".venv").mkdir()
        (tmp_path / ".venv" / "bad.py").write_text(
            "def f(x, acc=[]):\n    return acc\n", encoding="utf-8"
        )
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "bad.py").write_text(
            "def f(x, acc=[]):\n    return acc\n", encoding="utf-8"
        )
        (tmp_path / "good.py").write_text("VALUE = 1\n", encoding="utf-8")
        assert [p.name for p in iter_python_files([tmp_path])] == ["good.py"]
        assert lint_paths([tmp_path]) == []

    def test_lint_file_reads_from_disk(self, tmp_path):
        target = tmp_path / "module.py"
        target.write_text("def f(x, acc=[]):\n    return acc\n", encoding="utf-8")
        findings = lint_file(target)
        assert rule_ids(findings) == ["REP003"]

    def test_custom_rule_via_visitor(self):
        class _PrintVisitor(RuleVisitor):
            """Reports every call to print()."""

            def visit_Call(self, node):
                """Flag print() calls."""
                func = node.func
                if getattr(func, "id", "") == "print":
                    self.report(node, "print() in library code")
                self.generic_visit(node)

        @register
        class PrintRule(Rule):
            """Test-only rule built on RuleVisitor dispatch."""

            id = "REP901"
            title = "no print in library code"
            severity = Severity.WARNING

            def check(self, context):
                """Run the visitor over the module."""
                yield from _PrintVisitor(self, context).run(context.tree)

        try:
            findings = lint_source("print('hi')\n", path=PLAIN)
            assert rule_ids(findings) == ["REP901"]
            with pytest.raises(ValueError, match="duplicate"):
                register(PrintRule)
        finally:
            lint_engine._REGISTRY.pop("REP901", None)

    def test_context_parts_are_posix(self):
        import ast

        context = LintContext(path=CORE, tree=ast.parse(""), source="")
        assert "core" in context.parts


class TestDiagnosticsAndReport:
    def test_format_includes_location_and_hint(self):
        diagnostic = Diagnostic(
            "REP003", "bad default", Severity.ERROR,
            path="a.py", line=3, column=9, hint="use None",
        )
        assert diagnostic.format() == (
            "a.py:3:9: REP003 [error] bad default (hint: use None)"
        )

    def test_artifact_findings_format_without_line(self):
        diagnostic = Diagnostic("ART001", "broken chain", path="hierarchy:age")
        assert diagnostic.format() == (
            "hierarchy:age: ART001 [error] broken chain"
        )

    def test_sort_is_by_path_then_line(self):
        early = Diagnostic("REP001", "m", path="a.py", line=1)
        late = Diagnostic("REP001", "m", path="a.py", line=9)
        other = Diagnostic("REP001", "m", path="b.py", line=1)
        assert sort_diagnostics([other, late, early]) == [early, late, other]

    def test_worst_severity_and_blocking_policy(self):
        warning = Diagnostic("REP004", "w", Severity.WARNING)
        info = Diagnostic("ART004", "i", Severity.INFO)
        assert worst_severity([]) is None
        assert worst_severity([info, warning]) is Severity.WARNING
        assert not has_blocking([info, warning])
        assert has_blocking([info, warning], strict=True)
        assert not has_blocking([info], strict=True)

    def test_render_text_summary_line(self):
        text = render_text([Diagnostic("REP003", "bad default", path="a.py")])
        assert text.endswith("1 finding(s): 1 error(s), 0 warning(s), 0 info")

    def test_render_json_is_parseable(self):
        document = json.loads(
            render_json([Diagnostic("REP003", "bad default", path="a.py")])
        )
        assert document["summary"] == {"error": 1, "warning": 0, "info": 0}
        assert document["diagnostics"][0]["rule"] == "REP003"

    def test_render_rejects_unknown_format(self):
        with pytest.raises(ValueError, match="unknown report format"):
            render([], format="xml")

    def test_summarize_counts_all_severities(self):
        counts = summarize([Diagnostic("X", "m", Severity.INFO)])
        assert counts == {"error": 0, "warning": 0, "info": 1}


class TestLintCli:
    def test_violations_exit_1(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "def f(x, acc=[]):\n    return acc\n", encoding="utf-8"
        )
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "REP003" in out

    def test_clean_tree_exits_0(self, tmp_path, capsys):
        (tmp_path / "good.py").write_text("VALUE = 1\n", encoding="utf-8")
        assert main(["lint", str(tmp_path)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_warnings_block_only_under_strict(self, tmp_path, capsys):
        (tmp_path / "warn.py").write_text(
            "def f(values):\n"
            "    seen = set(values)\n"
            "    for v in seen:\n"
            "        print(v)\n",
            encoding="utf-8",
        )
        assert main(["lint", str(tmp_path)]) == 0
        assert main(["lint", str(tmp_path), "--strict"]) == 1
        assert "REP004" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "def f(x, acc=[]):\n    return acc\n", encoding="utf-8"
        )
        assert main(["lint", str(tmp_path), "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["error"] == 1

    def test_select_filters_rules(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "import random\n\n"
            "def f(x, acc=[]):\n"
            "    random.shuffle(acc)\n"
            "    return acc\n",
            encoding="utf-8",
        )
        assert main(["lint", str(tmp_path), "--select", "REP001"]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out and "REP003" not in out

    def test_unknown_rule_exits_2(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path), "--select", "NOPE"]) == 2
        assert "NOPE" in capsys.readouterr().out

    def test_nonexistent_path_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "no-such-dir"
        assert main(["lint", str(missing)]) == 2
        assert "does not exist" in capsys.readouterr().out

    def test_artifacts_only_run_is_clean(self, capsys):
        assert main(["lint", "--no-code", "--artifacts"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_repo_source_tree_is_strict_clean(self, capsys):
        assert main(["lint", str(REPO_SRC), "--strict"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out


class TestApiSurface:
    def test_summarize_rules_covers_every_rep_rule(self):
        summary = api.summarize_rules()
        for rule_id in ("REP001", "REP002", "REP003", "REP004", "REP005"):
            assert summary[rule_id]["title"]
            assert summary[rule_id]["severity"] in {"error", "warning", "info"}

    def test_select_artifact_errors_filters(self):
        error = Diagnostic("ART001", "e", Severity.ERROR)
        warning = Diagnostic("ART002", "w", Severity.WARNING)
        assert api.select_artifact_errors([warning, error]) == [error]
