"""Smoke tests: every example script runs to completion.

Examples are user-facing documentation; a broken example is a broken
promise.  Each runs in a subprocess with small workload arguments where
the script supports them.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

#: script -> argv (small workloads keep the suite fast).
CASES = {
    "quickstart.py": [],
    "compare_algorithms.py": ["150", "5"],
    "personalized_privacy.py": [],
    "bias_audit.py": ["150", "5"],
    "linkage_attack.py": [],
    "paper_figures.py": [],
    "multiobjective_frontier.py": ["120"],
    "custom_data_workflow.py": [],
    "full_study.py": ["150", "5"],
    "hospital_discharge.py": ["100", "5"],
}


def run_example(script: str, argv: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *argv],
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_every_example_has_a_case():
    scripts = {path.name for path in EXAMPLES.glob("*.py")}
    assert scripts == set(CASES), (
        "examples and smoke-test cases out of sync: "
        f"{scripts.symmetric_difference(set(CASES))}"
    )


@pytest.mark.parametrize("script", sorted(CASES))
def test_example_runs(script):
    result = run_example(script, CASES[script])
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), f"{script} produced no output"


def test_quickstart_reproduces_paper_numbers():
    result = run_example("quickstart.py", [])
    assert "P_binary(s, t) = 0" in result.stdout
    assert "P_binary(t, s) = 7" in result.stdout
    assert "P_s-avg(T3a)  = 3.4" in result.stdout
