"""Hypothesis property tests over randomized datasets and recodings.

These test the *engine-level* invariants the framework rests on:

* equivalence classes partition the rows;
* k-anonymity is monotone along the generalization lattice;
* per-tuple LM loss is monotone along the lattice;
* property vectors from any recoding are index-aligned with the data;
* coverage/dominance laws hold on extracted (not synthetic) vectors.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.anonymize.algorithms.base import RecodingWorkspace
from repro.anonymize.engine import recode_node
from repro.core.comparators import weakly_dominates
from repro.core.indices.binary import coverage, spread
from repro.core.properties import equivalence_class_size, tuple_loss
from repro.datasets.dataset import Dataset
from repro.datasets.schema import AttributeKind, Schema, quasi_identifier, sensitive
from repro.hierarchy.categorical import TaxonomyHierarchy
from repro.hierarchy.numeric import Banding, IntervalHierarchy

SCHEMA = Schema.of(
    quasi_identifier("num", AttributeKind.NUMERIC),
    quasi_identifier("cat", AttributeKind.CATEGORICAL),
    sensitive("sens", AttributeKind.CATEGORICAL),
)

CATEGORIES = ["a", "b", "c", "d", "e", "f"]
HIERARCHIES = {
    "num": IntervalHierarchy("num", [Banding(5), Banding(20)], (0, 100)),
    "cat": TaxonomyHierarchy(
        "cat",
        {
            "a": ("left",), "b": ("left",), "c": ("left",),
            "d": ("right",), "e": ("right",), "f": ("right",),
        },
    ),
}


@st.composite
def datasets(draw):
    size = draw(st.integers(min_value=1, max_value=40))
    rows = []
    for _ in range(size):
        rows.append((
            draw(st.integers(min_value=0, max_value=100)),
            draw(st.sampled_from(CATEGORIES)),
            draw(st.sampled_from(["s1", "s2", "s3"])),
        ))
    return Dataset(SCHEMA, rows)


@st.composite
def dataset_and_node(draw):
    data = draw(datasets())
    node = (
        draw(st.integers(min_value=0, max_value=3)),
        draw(st.integers(min_value=0, max_value=2)),
    )
    return data, node


common = settings(
    max_examples=40, suppress_health_check=[HealthCheck.too_slow], deadline=None
)


class TestPartitionInvariants:
    @common
    @given(dataset_and_node())
    def test_classes_partition_rows(self, case):
        data, node = case
        release = recode_node(data, HIERARCHIES, node)
        classes = release.equivalence_classes
        seen = sorted(row for members in classes for row in members)
        assert seen == list(range(len(data)))

    @common
    @given(dataset_and_node())
    def test_class_sizes_sum_to_n(self, case):
        data, node = case
        release = recode_node(data, HIERARCHIES, node)
        assert sum(release.equivalence_classes.class_sizes()) == len(data)

    @common
    @given(dataset_and_node())
    def test_property_vectors_index_aligned(self, case):
        data, node = case
        release = recode_node(data, HIERARCHIES, node)
        sizes = equivalence_class_size(release)
        classes = release.equivalence_classes
        for row in range(len(data)):
            assert sizes[row] == classes.size_of(row)


class TestLatticeMonotonicity:
    @common
    @given(datasets())
    def test_k_monotone_upward(self, data):
        workspace = RecodingWorkspace(data, HIERARCHIES)
        lattice = workspace.lattice
        for node in lattice.nodes():
            k_here = min(workspace.group_sizes(node).values())
            for successor in lattice.successors(node):
                k_up = min(workspace.group_sizes(successor).values())
                assert k_up >= k_here

    @common
    @given(datasets())
    def test_loss_monotone_upward(self, data):
        workspace = RecodingWorkspace(data, HIERARCHIES)
        lattice = workspace.lattice
        for node in lattice.nodes():
            loss_here = workspace.node_loss(node)
            for successor in lattice.successors(node):
                assert workspace.node_loss(successor) >= loss_here - 1e-12

    @common
    @given(datasets())
    def test_class_size_vector_dominance_along_lattice(self, data):
        # Generalizing can only merge classes: the class-size property
        # vector of an ancestor weakly dominates the descendant's.
        lower = recode_node(data, HIERARCHIES, (0, 0))
        upper = recode_node(data, HIERARCHIES, (3, 2))
        assert weakly_dominates(
            equivalence_class_size(upper), equivalence_class_size(lower)
        )

    @common
    @given(datasets())
    def test_loss_vector_dominance_along_lattice(self, data):
        lower = recode_node(data, HIERARCHIES, (0, 0))
        upper = recode_node(data, HIERARCHIES, (3, 2))
        assert weakly_dominates(
            tuple_loss(lower, HIERARCHIES), tuple_loss(upper, HIERARCHIES)
        )


class TestIndexLawsOnExtractedVectors:
    @common
    @given(dataset_and_node(), dataset_and_node())
    def test_coverage_laws(self, first_case, second_case):
        data, first_node = first_case
        _, second_node = second_case
        a = equivalence_class_size(recode_node(data, HIERARCHIES, first_node))
        b = equivalence_class_size(recode_node(data, HIERARCHIES, second_node))
        assert coverage(a, b) + coverage(b, a) >= 1.0 - 1e-12
        assert (spread(a, b) == 0.0) == weakly_dominates(b, a)

    @common
    @given(datasets())
    def test_full_generalization_single_class(self, data):
        release = recode_node(data, HIERARCHIES, (3, 2))
        assert release.k() == len(data)
        assert len(release.equivalence_classes) == 1


class TestUtilityMetricInvariants:
    @common
    @given(dataset_and_node())
    def test_general_loss_in_unit_interval(self, case):
        from repro.utility import general_loss

        data, node = case
        release = recode_node(data, HIERARCHIES, node)
        assert 0.0 <= general_loss(release, HIERARCHIES) <= 1.0 + 1e-12

    @common
    @given(dataset_and_node())
    def test_precision_in_unit_interval(self, case):
        from repro.utility import precision

        data, node = case
        release = recode_node(data, HIERARCHIES, node)
        assert 0.0 <= precision(release, HIERARCHIES) <= 1.0 + 1e-12

    @common
    @given(dataset_and_node())
    def test_discernibility_bounds(self, case):
        from repro.utility import discernibility

        data, node = case
        release = recode_node(data, HIERARCHIES, node)
        n = len(data)
        # DM is at least N (all singletons) and at most N^2 (one class).
        assert n <= discernibility(release) <= n * n

    @common
    @given(dataset_and_node())
    def test_gcp_matches_normalized_lm(self, case):
        from repro.utility import general_loss, global_certainty_penalty

        data, node = case
        release = recode_node(data, HIERARCHIES, node)
        assert global_certainty_penalty(release, HIERARCHIES) == pytest.approx(
            general_loss(release, HIERARCHIES)
        )

    @common
    @given(dataset_and_node())
    def test_marginal_divergence_bounds(self, case):
        import math

        from repro.utility import total_marginal_divergence

        data, node = case
        release = recode_node(data, HIERARCHIES, node)
        divergence = total_marginal_divergence(release, HIERARCHIES)
        assert 0.0 <= divergence <= math.log(2) + 1e-9
