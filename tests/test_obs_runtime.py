"""Observability threaded through the study runtime.

The contracts under test:

* **tracing equivalence** — a traced study produces the same results as an
  untraced one, serial and parallel runs produce identical result values,
  and their span forests are structurally equal (same names/parents/
  categories; timings differ);
* **disabled path** — without an observation the run directory gains no
  trace/metrics files and results match the traced run;
* **per-run reset semantics** — two sequential studies on one executor
  report independent cache/metric deltas in their manifests (no
  cross-study leakage), and :meth:`RecodingWorkspace.reset_stats` zeroes
  the partition counters;
* **CLI surface** — ``repro study --trace/--metrics`` emits ART011-clean
  artifacts and ``repro obs summarize`` renders them.
"""

from __future__ import annotations

import json

import pytest

from repro.anonymize.algorithms.base import RecodingWorkspace
from repro.cli import main
from repro.datasets import adult_dataset, adult_hierarchies
from repro.lint.api import check_obs_artifacts
from repro.lint.diagnostics import Severity
from repro.obs import NULL_OBSERVATION, FakeClock, Observation, current, span_tree
from repro.obs.trace import TASK_CATEGORY
from repro.runtime.cache import ResultCache
from repro.runtime.events import (
    METRICS_FILENAME,
    TRACE_FILENAME,
    RunLog,
    read_manifest,
)
from repro.runtime.study import AlgorithmSpec, DatasetSpec, StudySpec, run_study

GRID = StudySpec(
    dataset=DatasetSpec.of("adult", rows=48, seed=7),
    algorithms=(
        AlgorithmSpec.of("datafly", k=2),
        AlgorithmSpec.of("mondrian", k=2),
    ),
    scalar_measures=("k_achieved", "suppressed"),
    vector_properties=("equivalence-class-size",),
    seed=7,
)


def _errors(findings):
    return [f for f in findings if f.severity is Severity.ERROR]


def _result_digest(result):
    """A canonical value fingerprint of a study's observable outputs."""
    vectors = {
        prop: {label: tuple(vec.values) for label, vec in by_label.items()}
        for prop, by_label in result.vectors.items()
    }
    return json.dumps(
        {
            "scalars": result.scalars,
            "vectors": vectors,
            "wins": {
                prop: comparison["wins"]
                for prop, comparison in result.comparisons.items()
            },
        },
        sort_keys=True,
        default=repr,
    )


class TestTracingEquivalence:
    def test_traced_serial_matches_parallel(self):
        serial_obs = Observation()
        parallel_obs = Observation()
        serial = run_study(GRID, jobs=1, obs=serial_obs)
        parallel = run_study(GRID, jobs=3, obs=parallel_obs)
        assert _result_digest(serial) == _result_digest(parallel)
        assert span_tree(serial_obs.trace.spans) == span_tree(parallel_obs.trace.spans)

    def test_traced_matches_untraced(self):
        traced = run_study(GRID, jobs=1, obs=Observation())
        untraced = run_study(GRID, jobs=1)
        assert _result_digest(traced) == _result_digest(untraced)

    def test_task_spans_cover_the_graph(self):
        observation = Observation()
        result = run_study(GRID, jobs=1, obs=observation)
        task_spans = {
            span.name
            for span in observation.trace.spans
            if span.category == TASK_CATEGORY
        }
        assert task_spans == set(result.report.outcomes)

    def test_worker_spans_nest_under_run(self):
        observation = Observation()
        run_study(GRID, jobs=3, obs=observation)
        spans = {span.span_id: span for span in observation.trace.spans}
        roots = [span for span in spans.values() if span.parent_id is None]
        assert [span.name for span in roots] == ["run"]
        for span in spans.values():
            if span.parent_id is not None:
                assert span.parent_id in spans

    def test_observation_not_left_installed(self):
        run_study(GRID, jobs=1, obs=Observation())
        assert current() is NULL_OBSERVATION

    def test_worker_metrics_ship_back(self):
        observation = Observation()
        run_study(GRID, jobs=3, obs=observation)
        snapshot = observation.metrics.snapshot()
        assert snapshot["counters"]["engine.recode.calls"] >= 1
        assert snapshot["counters"]["executor.tasks.executed"] > 0
        assert "task.exec_seconds" in snapshot["histograms"]
        assert "task.queue_seconds" in snapshot["histograms"]


class TestDisabledPath:
    def test_untraced_run_writes_no_obs_files(self, tmp_path):
        log = RunLog(tmp_path / "run")
        run_study(GRID, jobs=1, log=log)
        assert (log.run_dir / "manifest.json").exists()
        assert not (log.run_dir / TRACE_FILENAME).exists()
        assert not (log.run_dir / METRICS_FILENAME).exists()

    def test_traced_run_writes_obs_files(self, tmp_path):
        log = RunLog(tmp_path / "run")
        run_study(GRID, jobs=1, log=log, obs=Observation())
        trace_path = log.run_dir / TRACE_FILENAME
        metrics_path = log.run_dir / METRICS_FILENAME
        assert not _errors(check_obs_artifacts(trace_path))
        assert not _errors(check_obs_artifacts(metrics_path))

    def test_untraced_manifest_has_no_obs_section(self, tmp_path):
        log = RunLog(tmp_path / "run")
        run_study(GRID, jobs=1, log=log)
        assert "obs" not in read_manifest(log.run_dir)


class TestPerRunResetSemantics:
    def test_sequential_studies_report_independent_cache_deltas(self, tmp_path):
        cache = ResultCache(tmp_path / "store")
        first_log = RunLog(tmp_path / "run1")
        second_log = RunLog(tmp_path / "run2")
        run_study(GRID, jobs=1, cache=cache, log=first_log)
        run_study(GRID, jobs=1, cache=cache, log=second_log)
        first = read_manifest(first_log.run_dir)["cache"]
        second = read_manifest(second_log.run_dir)["cache"]
        tasks = read_manifest(first_log.run_dir)["tasks"]
        # Cold run: all writes, no hits.  Warm run: all hits, no writes.
        # Cumulative counters would double-count the cold run's writes here.
        assert first["writes"] == tasks and first["hits"] == 0
        assert second["hits"] == tasks and second["writes"] == 0

    def test_sequential_studies_report_independent_metric_deltas(self, tmp_path):
        observation = Observation()
        first_log = RunLog(tmp_path / "run1")
        second_log = RunLog(tmp_path / "run2")
        run_study(GRID, jobs=1, log=first_log, obs=observation)
        run_study(GRID, jobs=1, log=second_log, obs=observation)
        first = read_manifest(first_log.run_dir)["obs"]["counters"]
        second = read_manifest(second_log.run_dir)["obs"]["counters"]
        assert first["executor.tasks.executed"] == second["executor.tasks.executed"]
        # The live registry holds both runs; each manifest holds one.
        total = observation.metrics.counter("executor.tasks.executed")
        assert total == first["executor.tasks.executed"] * 2

    def test_exported_trace_covers_only_its_run(self, tmp_path):
        observation = Observation()
        first_log = RunLog(tmp_path / "run1")
        second_log = RunLog(tmp_path / "run2")
        run_study(GRID, jobs=1, log=first_log, obs=observation)
        run_study(GRID, jobs=1, log=second_log, obs=observation)
        first_trace = json.loads((first_log.run_dir / TRACE_FILENAME).read_text())
        second_trace = json.loads((second_log.run_dir / TRACE_FILENAME).read_text())
        first_events = [e for e in first_trace["traceEvents"] if e["ph"] == "X"]
        second_events = [e for e in second_trace["traceEvents"] if e["ph"] == "X"]
        assert len(first_events) == len(second_events)
        assert sum(e["name"] == "run" for e in first_events) == 1
        assert sum(e["name"] == "run" for e in second_events) == 1

    def test_workspace_reset_stats(self):
        dataset = adult_dataset(30, seed=1)
        workspace = RecodingWorkspace(dataset, adult_hierarchies())
        bottom = workspace.lattice.bottom
        workspace.partition(bottom)
        for node in workspace.lattice.successors(bottom):
            workspace.partition(node)
        assert workspace.partition_stats["fresh"] >= 1
        workspace.reset_stats()
        assert workspace.partition_stats == {
            "fresh": 0,
            "derived": 0,
            "hits": 0,
            "evictions": 0,
        }
        # Counters restart from zero; the partition cache itself survives,
        # so re-asking for a cached node counts as a hit of the new epoch.
        workspace.partition(bottom)
        assert workspace.partition_stats["hits"] == 1
        assert workspace.partition_stats["fresh"] == 0


class TestObsCli:
    def _study_args(self, tmp_path, *extra):
        return [
            "study",
            "--algorithms",
            "datafly",
            "mondrian",
            "--ks",
            "2",
            "--rows",
            "40",
            "--no-cache",
            "--run-dir",
            str(tmp_path / "run"),
            *extra,
        ]

    def test_trace_and_metrics_flags_emit_clean_artifacts(self, tmp_path, capsys):
        trace_file = tmp_path / "trace.json"
        metrics_file = tmp_path / "metrics.json"
        code = main(
            self._study_args(
                tmp_path,
                "--trace",
                str(trace_file),
                "--metrics",
                str(metrics_file),
            )
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace:" in out and "metrics:" in out
        assert not _errors(check_obs_artifacts(trace_file))
        assert not _errors(check_obs_artifacts(metrics_file))

    def test_measures_flag_selects_scalars(self, tmp_path, capsys):
        code = main(self._study_args(tmp_path, "--measures", "k_achieved"))
        assert code == 0
        header = capsys.readouterr().out
        assert "k_achieved" in header and "lm" not in header

    def test_lint_select_art011_on_emitted_artifacts(self, tmp_path, capsys):
        trace_file = tmp_path / "trace.json"
        metrics_file = tmp_path / "metrics.json"
        assert (
            main(
                self._study_args(
                    tmp_path, "--trace", str(trace_file), "--metrics", str(metrics_file)
                )
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            [
                "lint",
                "--runtime",
                str(trace_file),
                str(metrics_file),
                "--select",
                "ART011",
                "--strict",
            ]
        )
        assert code == 0

    def test_obs_summarize_renders_report(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert (
            main(
                self._study_args(
                    tmp_path,
                    "--trace",
                    str(run_dir / "trace.json"),
                    "--metrics",
                    str(run_dir / "metrics.json"),
                )
            )
            == 0
        )
        capsys.readouterr()
        assert main(["obs", "summarize", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "slowest tasks" in out
        assert "cache hit-rate by algorithm" in out
        assert "datafly" in out

    def test_obs_summarize_rejects_non_run_dir(self, tmp_path, capsys):
        assert main(["obs", "summarize", str(tmp_path / "nowhere")]) == 2
        assert "not" in capsys.readouterr().out.lower()


class TestGoldenObsFixture:
    """The pinned trace/metrics schema fixture (fake clock, stable keys)."""

    def test_fixture_matches_current_schemas(self):
        from tests.goldens_obs import compute_fixture, load_fixture

        pinned = load_fixture()
        current_payload = compute_fixture()
        assert current_payload == pinned, (
            "observability schema drift: regenerate with "
            "`PYTHONPATH=src python -m tests.goldens_obs` and review the diff"
        )

    def test_fixture_is_art011_clean(self, tmp_path):
        from tests.goldens_obs import load_fixture

        pinned = load_fixture()
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        trace_path.write_text(json.dumps(pinned["trace"]))
        metrics_path.write_text(json.dumps(pinned["metrics"]))
        assert not _errors(check_obs_artifacts(trace_path))
        assert not _errors(check_obs_artifacts(metrics_path))

    def test_fixture_timestamps_monotone(self):
        from tests.goldens_obs import load_fixture

        events = [
            event
            for event in load_fixture()["trace"]["traceEvents"]
            if event["ph"] == "X"
        ]
        timestamps = [event["ts"] for event in events]
        assert timestamps == sorted(timestamps)
        assert all(event["dur"] >= 0 for event in events)
