"""Hypothesis property tests for the columnar measurement plane.

Two equivalences the plane must uphold on *arbitrary* inputs, not just the
pinned golden cases:

* plane equivalence — :func:`repro.anonymize.engine.recode` (columnar)
  and :func:`~repro.anonymize.engine.recode_rowwise` (the reference row
  plane) produce identical releases: same released rows, same partition,
  same class keys/sizes, same k, same property vectors;
* incremental-vs-fresh — walking a random ascending lattice path through
  one :class:`~repro.anonymize.algorithms.base.RecodingWorkspace` (whose
  partitions derive incrementally from cached finer nodes) yields exactly
  the partition a cold workspace computes fresh at each node.
"""

from __future__ import annotations

from repro.kernels.array import xp as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.anonymize.algorithms.base import RecodingWorkspace
from repro.anonymize.engine import recode, recode_rowwise
from repro.core.properties import equivalence_class_size
from repro.datasets.dataset import Dataset
from repro.datasets.schema import AttributeKind, Schema, quasi_identifier, sensitive
from repro.hierarchy.categorical import TaxonomyHierarchy
from repro.hierarchy.numeric import Banding, IntervalHierarchy

SCHEMA = Schema.of(
    quasi_identifier("num", AttributeKind.NUMERIC),
    quasi_identifier("cat", AttributeKind.CATEGORICAL),
    sensitive("sens", AttributeKind.CATEGORICAL),
)

CATEGORIES = ["a", "b", "c", "d", "e", "f"]
HIERARCHIES = {
    "num": IntervalHierarchy("num", [Banding(5), Banding(20)], (0, 100)),
    "cat": TaxonomyHierarchy(
        "cat",
        {
            "a": ("left",), "b": ("left",), "c": ("left",),
            "d": ("right",), "e": ("right",), "f": ("right",),
        },
    ),
}
HEIGHTS = {"num": 3, "cat": 2}


@st.composite
def datasets(draw):
    size = draw(st.integers(min_value=1, max_value=40))
    rows = []
    for _ in range(size):
        rows.append((
            draw(st.integers(min_value=0, max_value=100)),
            draw(st.sampled_from(CATEGORIES)),
            draw(st.sampled_from(["s1", "s2", "s3"])),
        ))
    return Dataset(SCHEMA, rows)


@st.composite
def recoding_cases(draw):
    data = draw(datasets())
    levels = {
        "num": draw(st.integers(min_value=0, max_value=HEIGHTS["num"])),
        "cat": draw(st.integers(min_value=0, max_value=HEIGHTS["cat"])),
    }
    suppress = draw(
        st.lists(
            st.integers(min_value=0, max_value=len(data) - 1),
            max_size=min(len(data), 5),
            unique=True,
        )
    )
    return data, levels, suppress


@st.composite
def lattice_paths(draw):
    """A dataset plus a random ascending node path from the lattice bottom."""
    data = draw(datasets())
    node = [0, 0]
    heights = [HEIGHTS["num"], HEIGHTS["cat"]]
    path = [tuple(node)]
    while node != heights:
        candidates = [i for i in range(2) if node[i] < heights[i]]
        step = draw(st.sampled_from(candidates))
        node[step] += 1
        path.append(tuple(node))
    return data, path


common = settings(
    max_examples=40, suppress_health_check=[HealthCheck.too_slow], deadline=None
)


class TestPlaneEquivalence:
    @common
    @given(recoding_cases())
    def test_released_rows_identical(self, case):
        data, levels, suppress = case
        columnar = recode(data, HIERARCHIES, levels, suppress=suppress)
        rowwise = recode_rowwise(data, HIERARCHIES, levels, suppress=suppress)
        assert columnar.released.rows == rowwise.released.rows
        assert columnar.suppressed == rowwise.suppressed
        assert columnar.levels == rowwise.levels
        assert columnar.name == rowwise.name

    @common
    @given(recoding_cases())
    def test_partitions_identical(self, case):
        data, levels, suppress = case
        columnar = recode(data, HIERARCHIES, levels, suppress=suppress)
        rowwise = recode_rowwise(data, HIERARCHIES, levels, suppress=suppress)
        left = columnar.equivalence_classes
        right = rowwise.equivalence_classes
        assert tuple(left) == tuple(right)
        assert left.class_sizes() == right.class_sizes()
        assert left.sizes() == right.sizes()
        assert [
            left.key_of_class(i) for i in range(len(left))
        ] == [right.key_of_class(i) for i in range(len(right))]
        assert columnar.k() == rowwise.k()

    @common
    @given(recoding_cases())
    def test_property_vectors_identical(self, case):
        data, levels, suppress = case
        columnar = recode(data, HIERARCHIES, levels, suppress=suppress)
        rowwise = recode_rowwise(data, HIERARCHIES, levels, suppress=suppress)
        assert np.array_equal(
            equivalence_class_size(columnar).values,
            equivalence_class_size(rowwise).values,
        )


class TestIncrementalPartitions:
    @common
    @given(lattice_paths())
    def test_incremental_equals_fresh_along_path(self, case):
        data, path = case
        walking = RecodingWorkspace(data, HIERARCHIES)
        for node in path:
            incremental = walking.partition(node)
            fresh = RecodingWorkspace(data, HIERARCHIES).partition(node)
            assert np.array_equal(incremental.labels, fresh.labels), node
            assert np.array_equal(incremental.sizes, fresh.sizes), node
            assert np.array_equal(incremental.reps, fresh.reps), node

    @common
    @given(lattice_paths())
    def test_walk_uses_the_incremental_path(self, case):
        data, path = case
        walking = RecodingWorkspace(data, HIERARCHIES)
        for node in path:
            walking.partition(node)
        stats = walking.partition_stats
        # Every non-bottom node of the path ascends from a cached finer
        # node over nested level tables, so only the bottom is fresh.
        assert stats["fresh"] == 1
        assert stats["derived"] == len(path) - 1

    @common
    @given(lattice_paths())
    def test_violation_counts_match_fresh(self, case):
        data, path = case
        walking = RecodingWorkspace(data, HIERARCHIES)
        for node in path:
            fresh = RecodingWorkspace(data, HIERARCHIES)
            assert walking.violation_count(node, 3) == fresh.violation_count(
                node, 3
            )
            assert walking.group_sizes(node) == fresh.group_sizes(node)
