"""Auditing one release for anonymization bias across privacy models.

Given a single anonymized release, measures every per-tuple privacy
property this library knows — class size, breach probability, sensitive
value fraction, distinct diversity, t-closeness EMD — and reports where
the distribution is skewed: which individuals the anonymization favors.

Run:  python examples/bias_audit.py [rows] [k]
"""

import sys

from repro import (
    Datafly,
    DistinctLDiversity,
    EntropyLDiversity,
    KAnonymity,
    TCloseness,
    adult_dataset,
    adult_hierarchies,
    bias_summary,
)
from repro.core.properties import (
    breach_probability,
    equivalence_class_size,
    sensitive_value_fraction,
)


def main(rows: int = 500, k: int = 10) -> None:
    data = adult_dataset(rows, seed=21)
    hierarchies = adult_hierarchies()
    release = Datafly(k).anonymize(data, hierarchies)
    print(f"Release: {release.name} on {rows} synthetic Adult rows")
    print(f"Scalar story: k achieved = {release.k()}, "
          f"suppressed = {len(release.suppressed)}\n")

    print("Model requirements (scalar view):")
    models = [
        KAnonymity(k),
        DistinctLDiversity(3, "occupation"),
        EntropyLDiversity(2.0, "occupation"),
        TCloseness(0.3, "occupation"),
    ]
    for model in models:
        verdict = "satisfied" if model.satisfied_by(release) else "violated"
        print(f"  {model.name:>28}: measure={model.measure(release):8.3f}  "
              f"threshold={model.threshold():8.3f}  -> {verdict}")

    print("\nPer-tuple property distributions (the bias audit):")
    audits = {
        "class size": equivalence_class_size(release),
        "breach probability": breach_probability(release),
        "sensitive fraction": sensitive_value_fraction(release, "occupation"),
        "distinct l": DistinctLDiversity(3, "occupation").property_vector(release),
        "class EMD": TCloseness(0.3, "occupation").property_vector(release),
    }
    for label, vector in audits.items():
        print(f"  {label:>20}: {bias_summary(vector).describe()}")

    sizes = audits["class size"]
    minimum = sizes.min()
    at_minimum = [i for i in range(len(sizes)) if sizes[i] == minimum]
    print(f"\n{len(at_minimum)} of {rows} tuples sit in the smallest class "
          f"(size {minimum:g}) — the individuals the scalar k is about.")
    largest = sizes.max()
    print(f"The luckiest tuples enjoy classes of size {largest:g}: "
          f"{largest / minimum:.1f}x the nominal protection.")


if __name__ == "__main__":
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 500
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 10
    main(rows, k)
