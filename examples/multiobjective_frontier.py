"""Privacy as an objective, not a constraint (Section 7 of the paper).

Runs the NSGA-II search over the full-domain lattice of a census-like
workload with two objectives derived from property vectors — distance of
the class-size vector from the ideal (privacy) and total general loss
(utility) — and contrasts the resulting Pareto front with the classical
weighted-sum scalarization at several weights.

Run:  python examples/multiobjective_frontier.py [rows]
"""

import sys

from repro import adult_dataset, adult_hierarchies
from repro.anonymize.algorithms.base import RecodingWorkspace
from repro.moo import (
    Nsga2Search,
    hypervolume_2d,
    weighted_sum_search,
)


def main(rows: int = 300) -> None:
    data = adult_dataset(rows, seed=13)
    hierarchies = adult_hierarchies()
    workspace = RecodingWorkspace(data, hierarchies)

    print(f"Workload: synthetic Adult, {rows} rows; "
          f"lattice of {len(workspace.lattice)} full-domain recodings\n")

    search = Nsga2Search(population_size=32, generations=25, seed=1)
    result = search.search(data, hierarchies)

    print(f"NSGA-II Pareto front: {len(result)} non-dominated recodings")
    print(f"{'node':>24}  {'privacy-dist':>12}  {'total-loss':>10}  k")
    for node, (privacy, loss) in zip(result.nodes, result.objectives):
        counts = workspace.group_sizes(node)
        k = min(counts.values())
        print(f"{str(node):>24}  {privacy:12.1f}  {loss:10.2f}  {k}")

    reference = (
        max(objectives[0] for objectives in result.objectives) * 1.1 + 1,
        max(objectives[1] for objectives in result.objectives) * 1.1 + 1,
    )
    volume = hypervolume_2d(result.objectives, reference)
    print(f"\nFront hypervolume (ref {reference[0]:.0f},{reference[1]:.0f}): "
          f"{volume:.3g}")

    print("\nWeighted-sum baseline (the single-objective framework the paper "
          "says must change):")
    print(f"{'weight':>7}  {'node':>24}  {'privacy-dist':>12}  {'total-loss':>10}")
    for weight in (0.0, 0.25, 0.5, 0.75, 1.0):
        node, objectives = weighted_sum_search(data, hierarchies, weight)
        print(f"{weight:7.2f}  {str(node):>24}  {objectives[0]:12.1f}  "
              f"{objectives[1]:10.2f}")

    print("\nEvery weighted-sum optimum sits on (or at) the front, but the "
          "front exposes the whole trade-off at once,")
    print("including knee points no single weight would have surfaced.")


if __name__ == "__main__":
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    main(rows)
