"""Grounding breach probabilities in an explicit linkage adversary.

Section 1 of the paper reads per-tuple privacy as "probability of privacy
breach" (1/3 for everyone in T3a vs 1/7 for most tuples in T3b).  This
example mounts the actual attack: an adversary holding the victims' raw
quasi-identifiers links them against each release, and we compare the
analytic risks, the structural 1/|EC| property vector, and a Monte Carlo
simulation — then repeat at workload scale and test attribute-disclosure
attacks (homogeneity, background knowledge).

Run:  python examples/linkage_attack.py
"""

from repro import Datafly, Mondrian, adult_dataset, adult_hierarchies
from repro.attack import (
    background_knowledge_risks,
    homogeneity_risks,
    homogeneous_classes,
    linkage_report,
    prosecutor_risks,
    simulate_linkage,
)
from repro.core.properties import breach_probability
from repro.datasets import paper_tables

PAPER_H = {paper_tables.SENSITIVE_ATTRIBUTE: paper_tables.marital_hierarchy()}


def main() -> None:
    print("Part 1 — the paper's running example\n")
    for name, release in paper_tables.all_generalizations().items():
        analytic = prosecutor_risks(release, hierarchies=PAPER_H)
        structural = breach_probability(release)
        agree = analytic.as_tuple() == structural.as_tuple()
        empirical = simulate_linkage(
            release, trials=3000, seed=3, hierarchies=PAPER_H
        )
        report = linkage_report(release, hierarchies=PAPER_H)
        print(f"{name}: attack risks == structural 1/|EC|: {agree}")
        print(f"     per-tuple risks: {tuple(round(r, 3) for r in analytic)}")
        print(f"     {report.describe()}")
        print(f"     Monte Carlo bulk rate: {empirical:.4f} "
              f"(analytic {report.marketer_risk:.4f})\n")

    print("Part 2 — workload scale (300 Adult rows, k=5)\n")
    data = adult_dataset(300, seed=19)
    hierarchies = adult_hierarchies()
    for algorithm in (Datafly(5), Mondrian(5)):
        release = algorithm.anonymize(data, hierarchies)
        report = linkage_report(release, hierarchies=hierarchies)
        print(f"{algorithm.name:>20}: {report.describe()}")

    print("\nPart 3 — attribute disclosure (occupation)\n")
    release = Mondrian(5).anonymize(data, hierarchies)
    homogeneity = homogeneity_risks(release, "occupation")
    print(f"homogeneity risk: max={homogeneity.max():.2f} "
          f"mean={homogeneity.mean():.3f}")
    exposed = homogeneous_classes(release, "occupation")
    print(f"fully homogeneous classes: {len(exposed)}")
    for ruled_out in (0, 2, 5):
        risks = background_knowledge_risks(release, ruled_out, "occupation")
        print(f"background knowledge m={ruled_out}: "
              f"max risk={risks.max():.2f} mean={risks.mean():.3f}")
    print("\nIdentity disclosure bounded by k does not bound attribute "
          "disclosure — the l-diversity motivation, measured per tuple.")


if __name__ == "__main__":
    main()
