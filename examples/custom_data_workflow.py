"""Bring-your-own-data workflow: CSV in, audited release out.

Shows the full adoption path for a downstream user with their own table:

1. write/read the microdata as CSV;
2. infer generalization hierarchies from the data (and persist them as
   JSON for review and versioning);
3. sweep k across an algorithm and inspect privacy/bias/utility trade-offs;
4. pick a configuration, anonymize, and write the release.

Run:  python examples/custom_data_workflow.py
"""

import tempfile
from pathlib import Path

from repro import Mondrian, TaxonomyHierarchy  # noqa: F401 (public API tour)
from repro.analysis import format_sweep, k_sweep
from repro.anonymize.algorithms import TopDownSpecialization
from repro.datasets import read_csv, skewed_dataset, synthetic_schema, write_csv
from repro.hierarchy import infer_hierarchies, load_hierarchies, save_hierarchies
from repro.utility import general_loss


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-workflow-"))
    print(f"working directory: {workdir}\n")

    # 1. The user's data arrives as CSV (here: a skewed synthetic stand-in).
    source_path = workdir / "microdata.csv"
    write_csv(skewed_dataset(600, skew=1.0, seed=31), source_path)
    data = read_csv(source_path, synthetic_schema())
    print(f"loaded {len(data)} rows, "
          f"QIs = {data.schema.quasi_identifier_names}")

    # 2. Infer hierarchies and persist them for review.
    hierarchies = infer_hierarchies(data)
    hierarchy_path = workdir / "hierarchies.json"
    save_hierarchies(hierarchies, hierarchy_path)
    hierarchies = load_hierarchies(hierarchy_path)
    for name, hierarchy in hierarchies.items():
        print(f"  inferred {name}: {hierarchy!r}")

    # 3. Sweep k and inspect the trade-offs.
    print("\nMondrian k-sweep (privacy / bias / utility):")
    rows = k_sweep(lambda k: Mondrian(k), data, hierarchies, ks=[2, 5, 10, 25])
    print(format_sweep(rows))

    # 4. Anonymize with the chosen configuration and write the release.
    chosen_k = 10
    release = TopDownSpecialization(chosen_k).anonymize(data, hierarchies)
    release_path = workdir / "release.csv"
    write_csv(release.released, release_path)
    print(f"\nchose TDS at k={chosen_k}: achieved k={release.k()}, "
          f"LM={general_loss(release, hierarchies):.3f}")
    print(f"release written to {release_path}")


if __name__ == "__main__":
    main()
