"""The complete comparative study, end to end.

Runs the full methodology the paper argues for, on one workload:

1. anonymize with eight algorithms at the same k (plus the random
   baseline);
2. report the identical scalar story and the divergent per-tuple
   distributions (bias summaries);
3. compare with dominance and every ▶-better comparator, including the
   multi-property ▶WTD over (privacy, utility) Υ sets;
4. validate privacy numbers against a linkage adversary, including the
   composition of two releases;
5. pick a balanced release from a Pareto archive of all candidates.

Run:  python examples/full_study.py [rows] [k]   (defaults 400, 5)
"""

import sys

from repro import (
    BottomUpGeneralization,
    CoverageBetter,
    Datafly,
    LeastBiasedBetter,
    Mondrian,
    MuArgus,
    OptimalLattice,
    Samarati,
    TopDownSpecialization,
    adult_dataset,
    adult_hierarchies,
    bias_summary,
    copeland_ranking,
    linkage_report,
    privacy_utility_profile,
)
from repro.anonymize.algorithms import RandomRecoding
from repro.attack import composition_k
from repro.core import WeightedBetter
from repro.core.properties import equivalence_class_size
from repro.moo import ParetoArchive, knee_point
from repro.utility import general_loss


def main(rows: int = 400, k: int = 5) -> None:
    data = adult_dataset(rows, seed=29)
    hierarchies = adult_hierarchies()
    algorithms = [
        Datafly(k),
        Samarati(k),
        Mondrian(k),
        Mondrian(k, l_diversity=3, sensitive_attribute="occupation"),
        OptimalLattice(k),
        TopDownSpecialization(k),
        BottomUpGeneralization(k),
        MuArgus(k),
        RandomRecoding(k, seed=1),
    ]

    # 1. Anonymize.
    print(f"Workload: synthetic Adult, {rows} rows, k={k}")
    print(f"\n{'algorithm':>26}  {'k':>4}  {'sup':>4}  {'LM':>6}")
    releases = {}
    for algorithm in algorithms:
        release = algorithm.anonymize(data, hierarchies)
        releases[algorithm.name] = release
        print(f"{algorithm.name:>26}  {release.k():>4}  "
              f"{len(release.suppressed):>4}  "
              f"{general_loss(release, hierarchies):6.3f}")

    # 2. The bias behind the identical scalar story.
    privacy = {name: equivalence_class_size(r) for name, r in releases.items()}
    print("\nPer-tuple privacy distributions:")
    for name, vector in privacy.items():
        print(f"  {name:>26}: {bias_summary(vector).describe()}")

    # 3. Comparator verdicts.
    print("\nTournament rankings on the privacy property:")
    for label, comparator in (
        ("▶cov", CoverageBetter()),
        ("▶bias", LeastBiasedBetter()),
    ):
        ranking = copeland_ranking(privacy, comparator)
        print(f"  {label}: " + " > ".join(name for name, _ in ranking[:4]) + " ...")

    profile = privacy_utility_profile(hierarchies)
    weighted = WeightedBetter([0.5, 0.5])
    names = list(releases)
    first, second = names[0], names[2]
    verdict = weighted.relation(
        profile.induce(releases[first]), profile.induce(releases[second])
    )
    print(f"\n▶WTD (privacy+utility, equal weights): {first} vs {second} "
          f"-> {verdict.value}")

    # 4. Adversary validation + composition.
    print("\nLinkage adversary:")
    for name in (names[0], names[2]):
        report = linkage_report(releases[name], hierarchies=hierarchies)
        print(f"  {name:>26}: {report.describe()}")
    joint_k = composition_k(
        [releases[names[0]], releases[names[2]]], hierarchies
    )
    print(f"  composition of both releases: effective k = {joint_k}")

    # 5. Pareto pick.
    archive = ParetoArchive()
    for name, release in releases.items():
        privacy_floor = equivalence_class_size(release).min()
        archive.add(
            name,
            (-privacy_floor, general_loss(release, hierarchies)),
        )
    chosen = knee_point(archive)
    print(f"\nPareto archive holds {len(archive)} non-dominated releases; "
          f"knee point: {chosen}")


if __name__ == "__main__":
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    main(rows, k)
