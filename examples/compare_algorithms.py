"""Comparing real disclosure control algorithms with the vector framework.

Anonymizes a census-like workload with five algorithms at the same k, then
shows that the scalar "k achieved" story is identical while the per-tuple
privacy and utility distributions differ — and ranks the algorithms with
the paper's comparators.

Run:  python examples/compare_algorithms.py [rows] [k]
"""

import sys

from repro import (
    CoverageBetter,
    Datafly,
    HypervolumeBetter,
    Mondrian,
    MuArgus,
    OptimalLattice,
    Samarati,
    SpreadBetter,
    adult_dataset,
    adult_hierarchies,
    bias_summary,
    copeland_ranking,
    hypervolume_ranking,
)
from repro.analysis import format_relation_matrix, relation_matrix
from repro.core.properties import equivalence_class_size, tuple_utility
from repro.utility import discernibility, general_loss


def main(rows: int = 500, k: int = 5) -> None:
    data = adult_dataset(rows, seed=7)
    hierarchies = adult_hierarchies()
    algorithms = [
        Datafly(k),
        Samarati(k),
        Mondrian(k),
        OptimalLattice(k),
        MuArgus(k),
    ]

    print(f"Workload: synthetic Adult, {rows} rows, k={k}\n")
    releases = {}
    for algorithm in algorithms:
        release = algorithm.anonymize(data, hierarchies)
        releases[algorithm.name] = release
        print(
            f"{algorithm.name:>18}: k achieved={release.k():>3}  "
            f"suppressed={len(release.suppressed):>3}  "
            f"LM={general_loss(release, hierarchies):.3f}  "
            f"DM={discernibility(release):>8}"
        )

    privacy = {name: equivalence_class_size(r) for name, r in releases.items()}
    utility = {
        name: tuple_utility(r, hierarchies) for name, r in releases.items()
    }

    print("\nPer-tuple privacy bias (equivalence class size):")
    for name, vector in privacy.items():
        print(f"  {name:>18}: {bias_summary(vector).describe()}")

    print("\n▶cov-better relations on privacy (row vs column):")
    print(format_relation_matrix(relation_matrix(privacy, CoverageBetter()),
                                 list(privacy)))

    print("\n▶spr-better relations on utility (row vs column):")
    print(format_relation_matrix(relation_matrix(utility, SpreadBetter()),
                                 list(utility)))

    print("\nTournament rankings on privacy:")
    print("  by hypervolume:", [name for name, _ in hypervolume_ranking(privacy)])
    print("  by ▶cov wins:  ",
          [f"{name}({wins})" for name, wins in
           copeland_ranking(privacy, CoverageBetter())])
    print("  by ▶hv wins:   ",
          [f"{name}({wins})" for name, wins in
           copeland_ranking(privacy, HypervolumeBetter())])


if __name__ == "__main__":
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 500
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    main(rows, k)
