"""Hospital discharge release: a second domain-specific scenario.

The classic motivating story (Sweeney's governor re-identification): a
hospital wants to publish discharge records — zip, age, sex plus a
sensitive diagnosis.  This example walks the domain-specific concerns:

* k-member clustering vs Mondrian vs Datafly at the same k;
* attribute disclosure on the *diagnosis*, measured with hierarchical
  t-closeness over the ICD-chapter taxonomy (a circulatory-only class
  leaks less than a schizophrenia-only class of the same size);
* personalized privacy where mental-health patients guard their whole
  chapter while others guard only the exact diagnosis.

Run:  python examples/hospital_discharge.py [rows] [k]
"""

import sys

from repro import (
    Datafly,
    Mondrian,
    PersonalizedPrivacy,
    TCloseness,
    bias_summary,
)
from repro.anonymize.algorithms import KMemberClustering
from repro.attack import homogeneity_risks
from repro.core.properties import equivalence_class_size
from repro.datasets import (
    diagnosis_taxonomy,
    hospital_dataset,
    hospital_hierarchies,
)
from repro.utility import general_loss


def main(rows: int = 150, k: int = 5) -> None:
    data = hospital_dataset(rows, seed=41)
    hierarchies = hospital_hierarchies()
    taxonomy = diagnosis_taxonomy()
    print(f"Workload: synthetic hospital discharges, {rows} rows, k={k}\n")

    releases = {}
    for algorithm in (
        Datafly(k),
        Mondrian(k),
        KMemberClustering(k),
    ):
        release = algorithm.anonymize(data, hierarchies)
        releases[algorithm.name] = release
        print(f"{algorithm.name:>22}: k={release.k():>3}  "
              f"LM={general_loss(release, hierarchies):.3f}  "
              f"{bias_summary(equivalence_class_size(release)).describe()}")

    print("\nAttribute disclosure on the diagnosis:")
    closeness = TCloseness(0.5, "diagnosis", taxonomy=taxonomy)
    for name, release in releases.items():
        distances = closeness.class_distances(release)
        homogeneity = homogeneity_risks(release, "diagnosis")
        print(f"  {name:>22}: max chapter-EMD={max(distances):.3f}  "
              f"max homogeneity={homogeneity.max():.2f}")

    print("\nPersonalized privacy (mental-health patients guard their "
          "chapter):")
    guarding = []
    for row in data:
        chapter = taxonomy.generalize(row[3], 1)
        guarding.append(chapter if chapter == "Mental" else row[3])
    model = PersonalizedPrivacy(
        taxonomy, guarding, bound=0.5, sensitive_attribute="diagnosis"
    )
    for name, release in releases.items():
        probabilities = model.breach_probabilities(release)
        verdict = "satisfied" if model.satisfied_by(release) else "VIOLATED"
        print(f"  {name:>22}: max breach={max(probabilities):.2f}  "
              f"bound=0.50 -> {verdict}")

    print("\nSame k, three different stories: the release a hospital should "
          "pick depends on the property vector, not the scalar.")


if __name__ == "__main__":
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    main(rows, k)
