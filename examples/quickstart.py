"""Quickstart: the paper's running example, end to end.

Builds Table 1, produces the two 3-anonymous generalizations of Table 2 and
the 4-anonymous generalization of Table 3 with the real generalization
engine, then walks through every comparison the paper makes: scalar indices,
the dominance relations of Table 4, and the ▶-better comparators of
Section 5.

Run:  python examples/quickstart.py
"""

from repro.analysis import benefit_counts, bias_summary
from repro.core.comparators import (
    CoverageBetter,
    MinBetter,
    Relation,
    dominance_relation,
)
from repro.core.indices.binary import binary_count, coverage, hypervolume, spread
from repro.core.indices.unary import MeanIndex, MinimumIndex
from repro.core.properties import equivalence_class_size, sensitive_value_count
from repro.datasets import paper_tables


def main() -> None:
    table = paper_tables.table1()
    print("Table 1 — the microdata:")
    print(table.to_text())

    t3a = paper_tables.t3a()
    t3b = paper_tables.t3b()
    t4 = paper_tables.t4()

    print("\nTable 2 (left) — T3a, a 3-anonymous generalization:")
    print(t3a.released.to_text())
    print("\nTable 2 (right) — T3b, another 3-anonymous generalization:")
    print(t3b.released.to_text())
    print("\nTable 3 — T4, a 4-anonymous generalization:")
    print(t4.released.to_text())

    # Property vectors (Definition 1): per-tuple equivalence class sizes.
    s = equivalence_class_size(t3a)
    t = equivalence_class_size(t3b)
    u = equivalence_class_size(t4)
    print("\nEquivalence class size property vectors (Figure 1):")
    print(f"  T3a: {s.as_tuple()}")
    print(f"  T3b: {t.as_tuple()}")
    print(f"  T4 : {u.as_tuple()}")

    # Scalar (unary) indices — what classical models report.
    print("\nUnary quality indices (Section 3):")
    print(f"  P_k-anon(T3a) = {MinimumIndex()(s):g}   (the k of k-anonymity)")
    print(f"  P_s-avg(T3a)  = {MeanIndex()(s):g}")
    counts = sensitive_value_count(t3a, paper_tables.SENSITIVE_ATTRIBUTE)
    print(f"  l-diversity index of T3a = {MinimumIndex()(counts):g} "
          f"on vector {counts.as_tuple()}")

    # The bias the scalar hides.
    print("\nSame k, different privacy (the anonymization bias):")
    print(f"  {bias_summary(s).describe()}")
    print(f"  {bias_summary(t).describe()}")
    wins_t3b, wins_t3a, ties = benefit_counts(t, s)
    print(f"  tuples better off under T3b: {wins_t3b}, under T3a: {wins_t3a}, "
          f"tied: {ties}")

    # Binary index of Section 3.
    print("\nBinary index P_binary (Section 3):")
    print(f"  P_binary(s, t) = {binary_count(s, t)}")
    print(f"  P_binary(t, s) = {binary_count(t, s)}")

    # Strict comparisons (Table 4).
    print("\nStrict dominance relations (Table 4):")
    for name, (first, second) in {
        "T3b vs T3a": (t, s),
        "T3b vs T4 ": (t, u),
        "T4  vs T3a": (u, s),
    }.items():
        print(f"  {name}: {dominance_relation(first, second).value}")

    # ▶-better comparators (Section 5).
    print("\n▶-better comparators (Section 5):")
    print(f"  P_cov(T3b, T4) = {coverage(t, u):.2f}, "
          f"P_cov(T4, T3b) = {coverage(u, t):.2f}  -> "
          f"{CoverageBetter().relation(t, u).value} for T3b")
    print(f"  P_spr(T3b, T4) = {spread(t, u):.1f}, "
          f"P_spr(T4, T3b) = {spread(u, t):.1f}")
    print(f"  P_hv (T3b, T4) = {hypervolume(t, u):.3g}, "
          f"P_hv (T4, T3b) = {hypervolume(u, t):.3g}")

    # The scalar story vs the vector story.
    min_says = MinBetter().relation(u, t)
    cov_says = CoverageBetter().relation(t, u)
    assert min_says is Relation.BETTER and cov_says is Relation.BETTER
    print("\nConclusion (Section 2): ▶min calls T4 better than T3b, yet "
          "▶cov calls T3b better than T4 —")
    print("different anonymizations are better for different individuals; "
          "scalar summaries hide this.")


if __name__ == "__main__":
    main()
