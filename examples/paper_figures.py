"""Terminal renderings of the paper's figures.

Regenerates Figure 1 as a grouped bar chart (per-tuple class sizes under
T3a / T3b / T4), Figure 2's rank geometry as a scatter of 2-D property
vectors against their distance arcs, and the Section 7 Pareto front as a
scatter plot — all as plain text, no plotting dependency.

Run:  python examples/paper_figures.py
"""

from repro.analysis import bar_chart, preference_table, scatter_plot
from repro.core.indices.unary import RankIndex
from repro.core.properties import equivalence_class_size
from repro.core.vector import PropertyVector
from repro.datasets import paper_tables
from repro.moo import Nsga2Search


def figure1() -> None:
    print("=" * 64)
    print("Figure 1 — equivalence class size per tuple")
    print("=" * 64)
    vectors = {
        name: equivalence_class_size(release)
        for name, release in paper_tables.all_generalizations().items()
    }
    print(bar_chart(vectors, width=28))
    print()
    print(preference_table(vectors))


def figure2() -> None:
    print("\n" + "=" * 64)
    print("Figure 2 — rank comparator: distance to D_max on 2-tuple vectors")
    print("=" * 64)
    ideal = PropertyVector([10.0, 10.0])
    index = RankIndex(ideal=ideal)
    points = [
        (2.0, 9.0), (4.0, 8.0), (6.0, 6.0), (8.0, 4.0), (9.0, 2.0),
        (5.0, 9.5), (9.5, 5.0), (7.5, 7.5),
    ]
    print(scatter_plot(points, width=40, height=12,
                       x_label="property value, tuple 1",
                       y_label="property value, tuple 2"))
    print("\nranks (smaller = closer to D_max = (10,10)):")
    for x, y in sorted(points, key=lambda p: index(PropertyVector([p[0], p[1]]))):
        rank = index(PropertyVector([x, y]))
        print(f"  ({x:4.1f}, {y:4.1f})  rank = {rank:5.2f}")


def pareto_front() -> None:
    print("\n" + "=" * 64)
    print("Section 7 — privacy/utility Pareto front on Table 1's lattice")
    print("=" * 64)
    hierarchies = {
        "Zip Code": paper_tables.zip_hierarchy(),
        "Age": paper_tables.age_hierarchy(10, 5),
        paper_tables.SENSITIVE_ATTRIBUTE: paper_tables.marital_hierarchy(),
    }
    result = Nsga2Search(population_size=24, generations=20, seed=0).search(
        paper_tables.table1(), hierarchies
    )
    print(scatter_plot(result.objectives, width=48, height=14,
                       x_label="privacy distance (lower=better)",
                       y_label="total loss (lower=better)"))
    print(f"{len(result)} non-dominated recodings")


def main() -> None:
    figure1()
    figure2()
    pareto_front()


if __name__ == "__main__":
    main()
