"""Anonymization bias in personalized privacy (Section 2 of the paper).

Xiao and Tao's model bounds each individual's breach probability by a
personal guarding node, but the *achieved* probabilities still differ
between individuals — the bias is present even in a personalized setting.
This example assigns guarding nodes on the marital-status taxonomy of the
paper's running example and measures the per-tuple breach probabilities
under the three generalizations.

Run:  python examples/personalized_privacy.py
"""

from repro.analysis import bias_summary
from repro.core.comparators import CoverageBetter
from repro.datasets import paper_tables
from repro.privacy import PersonalizedPrivacy


def main() -> None:
    table = paper_tables.table1()
    taxonomy = paper_tables.marital_hierarchy()

    # Guarding nodes: the married individuals hide their exact status only;
    # separated/divorced individuals guard the whole "Not Married" subtree
    # (they consider the category itself sensitive); tuple 3 opts out.
    guarding = []
    for row in table:
        status = row[2]
        if status in ("CF-Spouse", "Spouse Present"):
            guarding.append(status)
        elif status == "Never Married":
            guarding.append("*")  # no protection requested
        else:
            guarding.append("Not Married")

    model = PersonalizedPrivacy(
        taxonomy, guarding, bound=0.8,
        sensitive_attribute=paper_tables.SENSITIVE_ATTRIBUTE,
    )

    releases = paper_tables.all_generalizations()
    vectors = {}
    print("Per-tuple guarding-node breach probabilities:\n")
    header = "tuple  " + "  ".join(f"{name:>5}" for name in releases)
    print(header)
    probabilities = {
        name: model.breach_probabilities(release)
        for name, release in releases.items()
    }
    for row_index in range(len(table)):
        cells = "  ".join(
            f"{probabilities[name][row_index]:5.2f}" for name in releases
        )
        print(f"{row_index + 1:>5}  {cells}")

    print("\nScalar view (max breach probability):")
    for name, release in releases.items():
        satisfied = "satisfied" if model.satisfied_by(release) else "VIOLATED"
        print(f"  {name}: max={max(probabilities[name]):.2f}  bound=0.80  "
              f"-> {satisfied}")

    print("\nVector view (bias across individuals):")
    for name, release in releases.items():
        vectors[name] = model.property_vector(release)
        print(f"  {name}: {bias_summary(vectors[name]).describe()}")

    comparator = CoverageBetter()
    relation = comparator.relation(vectors["T3b"], vectors["T4"])
    print(f"\n▶cov on breach probability, T3b vs T4: {relation.value}")
    print("Equal personal bounds, unequal achieved protection — the bias "
          "persists under personalization.")


if __name__ == "__main__":
    main()
