"""Shared benchmark fixtures and reporting helpers.

Every benchmark regenerates the rows/series of one paper artifact (see
DESIGN.md section 4), asserts the reproduced values, times the computational
kernel with pytest-benchmark, and prints the reproduced table/figure data
(visible with ``pytest -s``; also regenerable standalone via
``python benchmarks/run_all.py``).
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

import pytest

from repro.datasets import adult_dataset, adult_hierarchies
from repro.datasets import paper_tables

#: Schema id of benchmark trajectory files — must match
#: ``repro.lint.artifacts.BENCH_SCHEMA`` (ART012 validates what we emit).
BENCH_SCHEMA = "repro.bench/trajectory@1"


def pytest_addoption(parser):
    """Register ``--quick`` (CI smoke mode) and ``--bench-json`` (trajectory)."""
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="run benchmarks in smoke mode: small inputs, correctness "
        "assertions only, no throughput floors",
    )
    parser.addoption(
        "--bench-json",
        default=None,
        metavar="PATH",
        help="append this run's wall-time percentiles to the BENCH_*.json "
        "trajectory at PATH (created if missing; validated by ART012)",
    )


@pytest.fixture(scope="session")
def quick(request):
    """Whether the run is in ``--quick`` smoke mode."""
    return request.config.getoption("--quick")


@pytest.fixture(scope="session")
def bench_json(request):
    """Path of the ``--bench-json`` trajectory file, or ``None``."""
    return request.config.getoption("--bench-json")


def percentile(values, q):
    """Linear-interpolated ``q``-quantile (0..1) of a non-empty sample."""
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    return ordered[low] + (ordered[high] - ordered[low]) * (rank - low)


def _git_rev():
    """Short git revision of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def record_trajectory(path, suite, cases, quick):
    """Append one ``{git_rev, quick, cases}`` entry to a BENCH trajectory.

    Creates the file with the ``repro.bench/trajectory@1`` envelope if it
    does not exist; otherwise appends to its ``entries`` list so the file
    accumulates wall-time percentiles over the repo's history.  Written
    sorted and indented so trajectory diffs stay reviewable.
    """
    target = Path(path)
    payload = {"schema": BENCH_SCHEMA, "suite": suite, "entries": []}
    if target.exists():
        existing = json.loads(target.read_text(encoding="utf-8"))
        if existing.get("schema") == BENCH_SCHEMA and existing.get("suite") == suite:
            payload = existing
    payload["entries"].append(
        {"git_rev": _git_rev(), "quick": bool(quick), "cases": cases}
    )
    target.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return target


def emit(title: str, lines) -> None:
    """Print one reproduced artifact block (shown under pytest -s)."""
    print(f"\n--- {title} ---")
    for line in lines:
        print(line)


@pytest.fixture(scope="session")
def table1():
    return paper_tables.table1()


@pytest.fixture(scope="session")
def generalizations():
    return paper_tables.all_generalizations()


@pytest.fixture(scope="session")
def adult_1k():
    return adult_dataset(1000, seed=7)


@pytest.fixture(scope="session")
def adult_h():
    return adult_hierarchies()
