"""Shared benchmark fixtures and reporting helpers.

Every benchmark regenerates the rows/series of one paper artifact (see
DESIGN.md section 4), asserts the reproduced values, times the computational
kernel with pytest-benchmark, and prints the reproduced table/figure data
(visible with ``pytest -s``; also regenerable standalone via
``python benchmarks/run_all.py``).
"""

from __future__ import annotations

import pytest

from repro.datasets import adult_dataset, adult_hierarchies
from repro.datasets import paper_tables


def pytest_addoption(parser):
    """Register ``--quick``: smoke mode for CI (tiny sizes, no perf floors)."""
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="run benchmarks in smoke mode: small inputs, correctness "
        "assertions only, no throughput floors",
    )


@pytest.fixture(scope="session")
def quick(request):
    """Whether the run is in ``--quick`` smoke mode."""
    return request.config.getoption("--quick")


def emit(title: str, lines) -> None:
    """Print one reproduced artifact block (shown under pytest -s)."""
    print(f"\n--- {title} ---")
    for line in lines:
        print(line)


@pytest.fixture(scope="session")
def table1():
    return paper_tables.table1()


@pytest.fixture(scope="session")
def generalizations():
    return paper_tables.all_generalizations()


@pytest.fixture(scope="session")
def adult_1k():
    return adult_dataset(1000, seed=7)


@pytest.fixture(scope="session")
def adult_h():
    return adult_hierarchies()
