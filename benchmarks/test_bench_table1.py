"""Experiment T1 — Table 1: the hypothetical microdata.

Regenerates the 10-tuple table and benchmarks dataset construction.
"""

from repro.datasets import paper_tables
from conftest import emit


def test_bench_table1(benchmark):
    data = benchmark(paper_tables.table1)
    assert len(data) == 10
    assert data[0] == ("13053", 28, "CF-Spouse")
    assert data[9] == ("13250", 47, "Separated")
    emit("Table 1: hypothetical microdata", [data.to_text()])
