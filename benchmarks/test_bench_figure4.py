"""Experiment F4 — Figure 4: the hypervolume comparator.

Regenerates the region computation of the figure (A: solely dominated by
D1, B: solely dominated by D2, C: commonly dominated) on a 2-D example, the
Section 5.4 worked example (s vs t), and benchmarks the overflow-safe
log-space comparison at data scale.
"""

import numpy as np

from repro.core.indices.binary import (
    compare_hypervolume,
    hypervolume,
    log_dominated_hypervolume,
)
from repro.core.vector import PropertyVector
from conftest import emit


def test_bench_figure4_regions(benchmark):
    d1 = PropertyVector([6.0, 3.0])
    d2 = PropertyVector([4.0, 5.0])

    def regions():
        common = float(np.prod(np.minimum(d1.values, d2.values)))
        region_a = hypervolume(d1, d2)
        region_b = hypervolume(d2, d1)
        return region_a, region_b, common

    region_a, region_b, common = benchmark(regions)
    assert region_a == 18 - 12
    assert region_b == 20 - 12
    # D2 solely dominates more volume -> D2 ▶hv D1 (the figure's caption).
    assert region_b > region_a
    emit("Figure 4: hypervolume regions (D1=(6,3), D2=(4,5))", [
        f"region A (solely D1) = {region_a:.0f}",
        f"region B (solely D2) = {region_b:.0f}",
        f"region C (common)    = {common:.0f}",
        "volume(B) > volume(A) -> D2 ▶hv D1",
    ])


def test_bench_figure4_section54_example(benchmark):
    s = PropertyVector((3, 3, 3, 5, 5, 5, 5, 5), "S")
    t = PropertyVector((4,) * 8, "T")

    def indices():
        return hypervolume(s, t), hypervolume(t, s)

    hv_st, hv_ts = benchmark(indices)
    assert hv_st == 3**3 * 5**5 - 3**3 * 4**5
    assert hv_ts == 4**8 - 3**3 * 4**5
    emit("Figure 4 / Section 5.4 example", [
        f"P_hv(s, t) = {hv_st:.0f}",
        f"P_hv(t, s) = {hv_ts:.0f}",
        "P_hv(s,t) > P_hv(t,s): more possible anonymizations are worse than S",
    ])


def test_bench_figure4_log_space_at_scale(benchmark):
    rng = np.random.default_rng(1)
    big1 = PropertyVector(rng.integers(2, 100, 20_000))
    big2 = PropertyVector(rng.integers(2, 100, 20_000))

    sign = benchmark(compare_hypervolume, big1, big2)
    assert sign in (-1, 0, 1)
    # The raw product overflows; the log form stays finite.
    assert np.isfinite(log_dominated_hypervolume(big1))
