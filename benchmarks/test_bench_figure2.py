"""Experiment F2 — Figure 2: the rank-based comparator geometry.

Regenerates the figure's structure: ranks as distances from the point of
interest D_max, equi-ranked vectors on the same arc, and the ε tolerance
making nearby arcs equivalent.  Benchmarks rank computation on the paper's
class-size vectors.
"""

from repro.core.indices.unary import RankIndex
from repro.core.vector import PropertyVector
from repro.datasets import paper_tables
from conftest import emit


def test_bench_figure2_ranks(benchmark, generalizations):
    ideal = 10.0  # one class of all N=10 tuples: the most desired vector
    index = RankIndex(ideal=ideal)

    def ranks():
        return {
            name: index(PropertyVector(
                [release.equivalence_classes.size_of(i) for i in range(10)]
            ))
            for name, release in generalizations.items()
        }

    values = benchmark(ranks)
    # Closer to D_max is better: T3b < T4 < T3a in distance.
    assert values["T3b"] < values["T4"] < values["T3a"]
    emit(
        "Figure 2: ranks (distance to D_max = all-10 vector)",
        [f"{name}: rank = {value:.3f}" for name, value in sorted(values.items())],
    )


def test_bench_figure2_equiranked_arc(benchmark):
    index = RankIndex(ideal=PropertyVector([10.0, 10.0]))
    a = PropertyVector([10.0, 6.0])
    b = PropertyVector([6.0, 10.0])

    def on_same_arc():
        return index(a) == index(b) and not index.prefers(a, b)

    assert benchmark(on_same_arc)
    emit("Figure 2: incomparable vectors on one arc",
         [f"rank({a.as_tuple()}) == rank({b.as_tuple()}) == {index(a):.3f}"])


def test_bench_figure2_epsilon_tolerance(benchmark):
    tolerant = RankIndex(ideal=10.0, epsilon=0.5)
    a = PropertyVector([9.0, 9.0, 9.0])
    b = PropertyVector([9.0, 9.0, 8.7])

    def equivalent():
        return tolerant.equivalent(a, b)

    assert benchmark(equivalent)
    emit("Figure 2: ε-tolerance", [
        f"|rank(a) - rank(b)| = {abs(tolerant(a) - tolerant(b)):.3f} <= ε=0.5 "
        "-> equally good",
    ])
