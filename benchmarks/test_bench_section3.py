"""Experiment S3 — Section 3's inline numeric examples.

Every number the section states, computed by the library:
  * the class-size property vector of T3a;
  * the sensitive-count property vector of T3a;
  * P_k-anon = 3, P_s-avg = 3.4, l-diversity index = 1;
  * P_binary(s, t) = 0 and P_binary(t, s) = 7.
"""

import pytest

from repro.core.indices.binary import binary_count
from repro.core.indices.unary import MeanIndex, MinimumIndex
from repro.core.properties import equivalence_class_size, sensitive_value_count
from repro.datasets import paper_tables
from conftest import emit


def test_bench_section3_unary_indices(benchmark, generalizations):
    t3a = generalizations["T3a"]

    def compute():
        s = equivalence_class_size(t3a)
        counts = sensitive_value_count(t3a, paper_tables.SENSITIVE_ATTRIBUTE)
        return (
            s.as_tuple(),
            counts.as_tuple(),
            MinimumIndex()(s),
            MeanIndex()(s),
            MinimumIndex()(counts),
        )

    s_vec, count_vec, k_anon, s_avg, l_div = benchmark(compute)
    assert s_vec == tuple(map(float, paper_tables.CLASS_SIZE_T3A))
    assert count_vec == tuple(map(float, paper_tables.SENSITIVE_COUNT_T3A))
    assert k_anon == 3
    assert s_avg == pytest.approx(3.4)
    assert l_div == 1
    emit("Section 3: unary index examples", [
        f"class-size vector of T3a      = {tuple(map(int, s_vec))}",
        f"sensitive-count vector of T3a = {tuple(map(int, count_vec))}",
        f"P_k-anon(s) = {k_anon:g}    (paper: 3)",
        f"P_s-avg(s)  = {s_avg:g}  (paper: 3.4)",
        f"l-diversity = {l_div:g}    (paper: 1)",
    ])


def test_bench_section3_binary_index(benchmark, generalizations):
    s = equivalence_class_size(generalizations["T3a"])
    t = equivalence_class_size(generalizations["T3b"])

    def compute():
        return binary_count(s, t), binary_count(t, s)

    forward, backward = benchmark(compute)
    assert forward == 0
    assert backward == 7
    emit("Section 3: P_binary example", [
        f"P_binary(s, t) = {forward}  (paper: 0)",
        f"P_binary(t, s) = {backward}  (paper: 7)",
        "T3b is preferable on the class-size property",
    ])
