"""Regenerate every table and figure of the paper (no timing).

Runs the benchmark suite with timing disabled and output capture off, so
each experiment prints the reproduced rows/series (the ``--- ... ---``
blocks).  Use this to eyeball paper-vs-measured; EXPERIMENTS.md records the
comparison.

With ``--jobs N`` (N > 1) the benchmark files fan out over the
``repro.runtime`` executor, one pytest invocation per file in its own
worker process; output is collected per file and printed in deterministic
file order once all workers finish.  ``--jobs 1`` (the default) keeps the
original single in-process pytest run, byte for byte.

Run:  python benchmarks/run_all.py [--jobs N]
"""

import argparse
import io
import sys
from contextlib import redirect_stderr, redirect_stdout
from pathlib import Path
from typing import Any, Mapping

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.runtime.executor import StudyExecutor  # noqa: E402
from repro.runtime.task import TaskGraph, TaskSpec, register_op  # noqa: E402

PYTEST_ARGS = ["--benchmark-disable", "-s", "-q", "--no-header"]


@register_op("benchmarks.pytest-file")
def _op_pytest_file(
    params: Mapping[str, Any], deps: Mapping[str, Any], seed: int
) -> dict[str, Any]:
    """Run one benchmark file under pytest, capturing its output."""
    buffer = io.StringIO()
    with redirect_stdout(buffer), redirect_stderr(buffer):
        status = pytest.main([params["path"], *PYTEST_ARGS])
    return {"path": params["path"], "status": int(status), "output": buffer.getvalue()}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes; 1 = single in-process pytest run (default)",
    )
    args = parser.parse_args(argv)
    here = Path(__file__).parent
    if args.jobs <= 1:
        return pytest.main([str(here), *PYTEST_ARGS])

    files = sorted(here.glob("test_bench_*.py"))
    graph = TaskGraph()
    for path in files:
        graph.add(
            TaskSpec(
                task_id=f"bench:{path.name}",
                op="benchmarks.pytest-file",
                params={"path": str(path)},
            )
        )
    report = StudyExecutor(jobs=args.jobs).run(graph)
    report.raise_on_failure()
    worst = 0
    for path in files:
        cell = report.value(f"bench:{path.name}")
        print(f"=== {path.name} (exit {cell['status']}) ===")
        print(cell["output"], end="")
        worst = max(worst, cell["status"])
    print(f"ran {len(files)} benchmark files with --jobs {args.jobs}")
    return worst


if __name__ == "__main__":
    sys.exit(main())
