"""Regenerate every table and figure of the paper (no timing).

Runs the benchmark suite with timing disabled and output capture off, so
each experiment prints the reproduced rows/series (the ``--- ... ---``
blocks).  Use this to eyeball paper-vs-measured; EXPERIMENTS.md records the
comparison.

Run:  python benchmarks/run_all.py
"""

import sys
from pathlib import Path

import pytest


def main() -> int:
    here = Path(__file__).parent
    return pytest.main(
        [str(here), "--benchmark-disable", "-s", "-q", "--no-header"]
    )


if __name__ == "__main__":
    sys.exit(main())
