"""Experiment E9 — composition: two safe releases, one broken promise.

Each of the paper's T3b and T4 is a >= 3-anonymous release of Table 1, yet
an adversary holding both can intersect their equivalence classes and
isolate an individual completely (effective k = 1).  At workload scale the
same happens with two algorithms at the same k.  Composition risk is one
more per-tuple property vector — and one more place where the scalar story
("both releases are k-anonymous") misleads.
"""

import pytest

from repro import Datafly, Mondrian
from repro.attack import composition_k, composition_risks, prosecutor_risks
from repro.datasets import paper_tables
from conftest import emit

PAPER_H = {paper_tables.SENSITIVE_ATTRIBUTE: paper_tables.marital_hierarchy()}


def test_bench_composition_paper_tables(benchmark, generalizations):
    t3b, t4 = generalizations["T3b"], generalizations["T4"]

    def attack():
        return (
            composition_k([t3b, t4], PAPER_H),
            composition_risks([t3b, t4], hierarchies=PAPER_H),
        )

    effective_k, risks = benchmark(attack)
    assert t3b.k() == 3 and t4.k() == 4
    assert effective_k == 1
    isolated = [i + 1 for i in range(len(risks)) if risks[i] == 1.0]
    emit("E9: composition of T3b and T4", [
        f"individual k: T3b = {t3b.k()}, T4 = {t4.k()}",
        f"effective k against both releases: {effective_k}",
        f"fully isolated tuples: {isolated}",
        "per-tuple joint risks: "
        + ", ".join(f"{risk:.2f}" for risk in risks),
    ])


def test_bench_composition_workload(benchmark, adult_1k, adult_h):
    data = adult_1k.head(300)
    datafly = Datafly(5).anonymize(data, adult_h)
    mondrian = Mondrian(5).anonymize(data, adult_h)

    def attack():
        joint = composition_risks([datafly, mondrian], hierarchies=adult_h)
        single_d = prosecutor_risks(datafly, hierarchies=adult_h)
        single_m = prosecutor_risks(mondrian, hierarchies=adult_h)
        return joint, single_d, single_m

    joint, single_d, single_m = benchmark.pedantic(
        attack, rounds=1, iterations=1
    )
    worst_single = max(single_d.values.max(), single_m.values.max())
    emit("E9: composition of Datafly and Mondrian (N=300, k=5 each)", [
        f"max single-release risk: {worst_single:.3f}",
        f"max joint risk:          {float(joint.values.max()):.3f}",
        f"mean joint risk:         {float(joint.values.mean()):.3f} "
        f"(vs {float(single_d.values.mean()):.3f} / "
        f"{float(single_m.values.mean()):.3f} single)",
    ])
    # Joint risk dominates both single-release risks.
    assert float(joint.values.max()) >= worst_single - 1e-12
    assert float(joint.values.mean()) >= max(
        float(single_d.values.mean()), float(single_m.values.mean())
    ) - 1e-12
