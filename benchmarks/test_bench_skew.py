"""Experiment E7 — anonymization bias as a function of data skew.

Section 2 attributes the bias to anonymizations being "skewed towards a
fraction of the data set".  This experiment turns the driver into a dial:
the same algorithms at the same k, applied to workloads of increasing QI
skew.  Two shape claims emerge:

* a **full-domain** recoder (Datafly) cannot adapt to local density, so
  its per-tuple class-size inequality (Gini) rises sharply from uniform to
  census-like skew (and relaxes again only at extreme skew, where almost
  everything collapses into one giant class);
* an **adaptive local** recoder (Mondrian) tracks the density and keeps
  the bias low at every skew level — adaptivity is a bias-mitigation
  mechanism, exactly the kind of distinction the scalar k cannot see.
"""

import pytest

from repro import Datafly, Mondrian
from repro.analysis import bias_summary
from repro.core.properties import equivalence_class_size
from repro.datasets import skewed_dataset, synthetic_hierarchies
from conftest import emit

SKEWS = [0.0, 0.5, 1.0, 2.0]
K = 10
SIZE = 800


def test_bench_bias_vs_skew(benchmark):
    hierarchies = synthetic_hierarchies()

    def sweep():
        rows = []
        for skew in SKEWS:
            data = skewed_dataset(SIZE, skew, seed=23)
            datafly = Datafly(K, suppression_limit=0.05).anonymize(
                data, hierarchies
            )
            mondrian = Mondrian(K).anonymize(data, hierarchies)
            rows.append((
                skew,
                bias_summary(equivalence_class_size(datafly)),
                bias_summary(equivalence_class_size(mondrian)),
            ))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'skew':>5}  {'datafly gini':>13}  {'mondrian gini':>14}"]
    for skew, datafly_summary, mondrian_summary in rows:
        lines.append(
            f"{skew:5.1f}  {datafly_summary.gini:13.3f}  "
            f"{mondrian_summary.gini:14.3f}"
        )
    emit("E7: class-size bias (Gini) vs workload skew, k=10", lines)

    datafly_gini = {skew: d.gini for skew, d, _ in rows}
    mondrian_gini = {skew: m.gini for skew, _, m in rows}
    # Full-domain bias rises from uniform to census-like skew.
    assert datafly_gini[1.0] > datafly_gini[0.0] * 1.5
    # Adaptive local recoding keeps bias below full-domain at skew >= 0.5.
    for skew in (0.5, 1.0, 2.0):
        assert mondrian_gini[skew] < datafly_gini[skew]
