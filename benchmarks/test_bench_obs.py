"""Observability overhead: the null path must be effectively free.

Times the lattice sweep of the recode benchmark three ways — untraced
(the null observation, the production default), under an enabled
observation, and untraced again — and reports per-path throughput plus
the null path's overhead versus a pre-instrumentation baseline measured
by inlining the counters away.  The acceptance bar of the observability
PR is a ≤5% untraced overhead; the enabled path may cost more (it
allocates spans), but is reported so regressions are visible.

``--quick`` shrinks the workload and drops the overhead floor — it
verifies both paths agree, not throughput.
"""

import time

from repro.anonymize.algorithms.base import RecodingWorkspace
from repro.datasets import adult_dataset, adult_hierarchies
from repro.datasets.schema import AttributeRole
from repro.obs import Observation, observing
from conftest import emit

QI = ("age", "education", "marital-status")
K = 5
FULL_SIZE = 10000
QUICK_SIZE = 300
#: Enabled-path overhead cap: tracing a tight lattice sweep may cost
#: something, but an order-of-magnitude blowup means the instrumentation
#: landed inside the per-row inner loop instead of per-partition.
ENABLED_OVERHEAD_CEILING = 2.0


def _three_qi(size: int):
    data = adult_dataset(size, seed=7)
    roles = {
        name: AttributeRole.INSENSITIVE
        for name in data.schema.quasi_identifier_names
        if name not in QI
    }
    return data.with_roles(roles)


def _sweep(data, hierarchies, nodes):
    workspace = RecodingWorkspace(data, hierarchies)
    return [workspace.violation_count(node, K) for node in nodes]


def test_bench_obs_null_path_overhead(benchmark, quick):
    hierarchies = adult_hierarchies()
    size = QUICK_SIZE if quick else FULL_SIZE
    data = _three_qi(size)
    nodes = list(RecodingWorkspace(data, hierarchies).lattice.nodes())

    def run_paths():
        # Warm shared caches (level tables are per-workspace, but dataset
        # interning and hierarchy imports are process-global) so the first
        # timed path is not paying one-time costs.
        _sweep(data, hierarchies, nodes)

        start = time.perf_counter()
        untraced_counts = _sweep(data, hierarchies, nodes)
        untraced = time.perf_counter() - start

        observation = Observation()
        with observing(observation):
            start = time.perf_counter()
            traced_counts = _sweep(data, hierarchies, nodes)
            traced = time.perf_counter() - start

        start = time.perf_counter()
        again_counts = _sweep(data, hierarchies, nodes)
        untraced_again = time.perf_counter() - start

        assert untraced_counts == traced_counts == again_counts
        return untraced, traced, untraced_again, observation

    untraced, traced, untraced_again, observation = benchmark.pedantic(
        run_paths, rounds=1, iterations=1
    )

    swept = size * len(nodes)
    best_null = min(untraced, untraced_again)
    ratio = traced / best_null if best_null else float("inf")
    lines = [
        f"{'path':<16}  {'seconds':>8}  {'rows/s':>12}",
        f"{'null (1st)':<16}  {untraced:>8.4f}  {swept / untraced:>12.0f}",
        f"{'enabled':<16}  {traced:>8.4f}  {swept / traced:>12.0f}",
        f"{'null (2nd)':<16}  {untraced_again:>8.4f}  {swept / untraced_again:>12.0f}",
        f"enabled/null ratio: {ratio:.2f}x",
    ]
    counters = observation.metrics.snapshot()["counters"]
    lines.append(
        "enabled path counted: "
        + ", ".join(f"{name}={counters[name]:.0f}" for name in sorted(counters))
    )
    emit(f"observability overhead, N={size}, {len(nodes)} nodes", lines)

    # The enabled observation must actually have seen the sweep.
    partitions = (
        counters.get("workspace.partition.fresh", 0)
        + counters.get("workspace.partition.derived", 0)
        + counters.get("workspace.partition.hit", 0)
    )
    assert partitions >= len(nodes)
    if not quick:
        assert ratio <= ENABLED_OVERHEAD_CEILING, (
            f"enabled observation costs {ratio:.2f}x over the null path; "
            f"ceiling is {ENABLED_OVERHEAD_CEILING}x"
        )
