"""Experiment T4 — Table 4: the strict comparator taxonomy.

Exercises every row of the table (weak dominance, strong dominance,
non-dominance, user-defined ▶-better) on vectors, on sets of vectors paired
by property, and on the anonymizations of the running example; benchmarks
the dominance kernel over the paper vectors.
"""

from repro.core.comparators import (
    CoverageBetter,
    Relation,
    non_dominated,
    set_non_dominated,
    set_strongly_dominates,
    set_weakly_dominates,
    strongly_dominates,
    weakly_dominates,
)
from repro.core.properties import equivalence_class_size, sensitive_value_count
from repro.core.vector import PropertyVector
from repro.datasets import paper_tables
from conftest import emit

S = PropertyVector(paper_tables.CLASS_SIZE_T3A, "T3a")
T = PropertyVector(paper_tables.CLASS_SIZE_T3B, "T3b")
U = PropertyVector(paper_tables.CLASS_SIZE_T4, "T4")


def table4_rows():
    rows = []
    # Row 1: weak dominance — "not worse than".
    rows.append(("weak dominance  T3b ⪰ T3a", weakly_dominates(T, S)))
    # Row 2: strong dominance — "better than".
    rows.append(("strong dominance T3b ≻ T3a", strongly_dominates(T, S)))
    # Row 3: non-dominance — incomparable.
    rows.append(("non-dominance   T3b ∥ T4", non_dominated(T, U)))
    # Row 4: user-defined ▶-better.
    rows.append(
        ("▶cov-better     T3b ▶ T4",
         CoverageBetter().relation(T, U) is Relation.BETTER)
    )
    return rows


def test_bench_table4_vector_level(benchmark):
    rows = benchmark(table4_rows)
    assert all(holds for _, holds in rows)
    emit("Table 4: strict comparators (vector level)",
         [f"{label}: {holds}" for label, holds in rows])


def test_bench_table4_set_level(benchmark, generalizations):
    t3a, t3b = generalizations["T3a"], generalizations["T3b"]
    sensitive = paper_tables.SENSITIVE_ATTRIBUTE

    def build_and_compare():
        first = (
            equivalence_class_size(t3b),
            sensitive_value_count(t3b, sensitive),
        )
        second = (
            equivalence_class_size(t3a),
            sensitive_value_count(t3a, sensitive),
        )
        return (
            set_weakly_dominates(first, second),
            set_strongly_dominates(first, second),
            set_non_dominated(first, second),
        )

    weak, strong, incomparable = benchmark(build_and_compare)
    # T3b dominates T3a on class size AND on sensitive counts.
    assert weak and strong and not incomparable
    emit("Table 4: strict comparators (set level, Υ_T3b vs Υ_T3a)",
         [f"Υ1 ⪰ Υ2: {weak}", f"Υ1 ≻ Υ2: {strong}", f"Υ1 ∥ Υ2: {incomparable}"])
