"""Experiment E10 — algorithm runtime scaling with data set size.

Wall-clock of the main algorithm families at k=5 across N — the practical
feasibility picture behind the comparisons.  Full-domain lattice searches
scale with (lattice size × N) via the vectorized frequency-set path;
Mondrian with (N log N × partitions); the cut-based TDS with
(specializations × candidates × N).
"""

import time

import pytest

from repro import Datafly, Mondrian, Samarati, TopDownSpecialization
from repro.datasets import adult_dataset, adult_hierarchies
from conftest import emit

SIZES = [200, 500, 1000, 2000]
FACTORIES = {
    "datafly": lambda: Datafly(5),
    "samarati": lambda: Samarati(5),
    "mondrian": lambda: Mondrian(5),
    "tds": lambda: TopDownSpecialization(5),
}


def test_bench_runtime_vs_n(benchmark):
    hierarchies = adult_hierarchies()

    def sweep():
        rows = []
        for size in SIZES:
            data = adult_dataset(size, seed=7)
            timings = {}
            for name, factory in FACTORIES.items():
                start = time.perf_counter()
                release = factory().anonymize(data, hierarchies)
                timings[name] = time.perf_counter() - start
                assert len(release) == size
            rows.append((size, timings))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    header = f"{'N':>6}  " + "  ".join(f"{name:>9}" for name in FACTORIES)
    lines = [header]
    for size, timings in rows:
        lines.append(
            f"{size:>6}  "
            + "  ".join(f"{timings[name]:9.3f}" for name in FACTORIES)
        )
    emit("E10: algorithm runtime (seconds) vs N, k=5", lines)

    # Shape: every algorithm completes the largest size within sanity
    # bounds, and runtime does not explode super-quadratically.
    for name in FACTORIES:
        smallest = rows[0][1][name]
        largest = rows[-1][1][name]
        ratio = largest / max(smallest, 1e-9)
        growth = (SIZES[-1] / SIZES[0]) ** 2.5
        assert ratio < growth, f"{name} grew {ratio:.1f}x over {growth:.1f}x bound"
