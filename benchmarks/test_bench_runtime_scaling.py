"""Experiment E10 — algorithm runtime scaling with data set size.

Wall-clock of the main algorithm families at k=5 across N — the practical
feasibility picture behind the comparisons.  Full-domain lattice searches
scale with (lattice size × N) via the vectorized frequency-set path;
Mondrian with (N log N × partitions); the cut-based TDS with
(specializations × candidates × N).

Also benchmarks the scheduler's cooperative mode: one executor versus two
executors cooperating over one shared :class:`ResultCache` through file
leases, recorded to ``BENCH_runtime.json`` (ART012) with the
lease-coordination outcome as the plane-equivalence witness.
"""

import hashlib
import tempfile
import threading
import time
from pathlib import Path

import pytest

from repro import Datafly, Mondrian, Samarati, TopDownSpecialization
from repro.datasets import adult_dataset, adult_hierarchies
from repro.runtime import (
    CacheKey,
    ResultCache,
    StudyExecutor,
    TaskGraph,
    TaskSpec,
    register_op,
)
from conftest import emit, percentile, record_trajectory

SIZES = [200, 500, 1000, 2000]
FACTORIES = {
    "datafly": lambda: Datafly(5),
    "samarati": lambda: Samarati(5),
    "mondrian": lambda: Mondrian(5),
    "tds": lambda: TopDownSpecialization(5),
}


def test_bench_runtime_vs_n(benchmark):
    hierarchies = adult_hierarchies()

    def sweep():
        rows = []
        for size in SIZES:
            data = adult_dataset(size, seed=7)
            timings = {}
            for name, factory in FACTORIES.items():
                start = time.perf_counter()
                release = factory().anonymize(data, hierarchies)
                timings[name] = time.perf_counter() - start
                assert len(release) == size
            rows.append((size, timings))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    header = f"{'N':>6}  " + "  ".join(f"{name:>9}" for name in FACTORIES)
    lines = [header]
    for size, timings in rows:
        lines.append(
            f"{size:>6}  "
            + "  ".join(f"{timings[name]:9.3f}" for name in FACTORIES)
        )
    emit("E10: algorithm runtime (seconds) vs N, k=5", lines)

    # Shape: every algorithm completes the largest size within sanity
    # bounds, and runtime does not explode super-quadratically.
    for name in FACTORIES:
        smallest = rows[0][1][name]
        largest = rows[-1][1][name]
        ratio = largest / max(smallest, 1e-9)
        growth = (SIZES[-1] / SIZES[0]) ** 2.5
        assert ratio < growth, f"{name} grew {ratio:.1f}x over {growth:.1f}x bound"


# -- cooperative scheduler benchmark ------------------------------------------

COOP_TASKS = 8


@register_op("bench.coopwork")
def _op_bench_coopwork(params, deps, seed):
    """Deterministic CPU spin: an iterated sha256 chain over the task name."""
    digest = params["name"].encode("utf-8")
    for _ in range(params["iterations"]):
        digest = hashlib.sha256(digest).digest()
    return digest.hex()


def _coop_graph(dataset: str, iterations: int) -> TaskGraph:
    graph = TaskGraph()
    for i in range(COOP_TASKS):
        name = f"w{i}"
        graph.add(
            TaskSpec(
                task_id=name,
                op="bench.coopwork",
                params={"name": name, "iterations": iterations},
                key=CacheKey(dataset=dataset, algorithm=name),
            )
        )
    return graph


def _run_cooperating(executors: int, iterations: int) -> tuple[float, dict]:
    """One cold cooperative run; returns (wall seconds, task values)."""
    with tempfile.TemporaryDirectory() as root:
        cache = ResultCache(Path(root) / "cache")
        reports = {}

        def drive(index: int) -> None:
            executor = StudyExecutor(
                cache=cache, cooperate=executors > 1, lease_ttl=60.0
            )
            reports[index] = executor.run(_coop_graph("bench-coop", iterations))

        start = time.perf_counter()
        if executors == 1:
            drive(0)
        else:
            threads = [
                threading.Thread(target=drive, args=(i,)) for i in range(executors)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        elapsed = time.perf_counter() - start
        executed = 0
        for report in reports.values():
            report.raise_on_failure()
            executed += report.executed
        # The lease-race bound: a cold cooperative run executes each task
        # at most once across all executors.
        assert executed == COOP_TASKS
        values = {t: o.value for t, o in reports[0].outcomes.items()}
        return elapsed, values


def test_bench_cooperative_executors(quick, bench_json):
    """1 vs 2 executors cooperating over one shared cache through leases."""
    iterations = 20_000 if quick else 120_000
    repeats = 2 if quick else 3

    timings = {}
    values_by_config = {}
    for executors in (1, 2):
        samples = []
        for _ in range(repeats):
            elapsed, values = _run_cooperating(executors, iterations)
            samples.append(elapsed)
            values_by_config.setdefault(executors, values)
            # Transport/coordination must never change results.
            assert values == values_by_config[executors]
        timings[executors] = samples
    plane_equivalent = values_by_config[1] == values_by_config[2]
    assert plane_equivalent

    if bench_json:
        cases = [
            {
                "n": executors,
                "repeats": repeats,
                "p50_wall_s": round(percentile(samples, 0.50), 6),
                "p95_wall_s": round(percentile(samples, 0.95), 6),
                "plane_equivalent": plane_equivalent,
            }
            for executors, samples in sorted(timings.items())
        ]
        record_trajectory(bench_json, "runtime", cases, quick)

    lines = [f"{'executors':>9}  {'p50 s':>9}  {'p95 s':>9}"]
    for executors, samples in sorted(timings.items()):
        lines.append(
            f"{executors:>9}  {percentile(samples, 0.50):9.4f}"
            f"  {percentile(samples, 0.95):9.4f}"
        )
    emit(
        f"E10b: cooperative executors over one cache "
        f"({COOP_TASKS} tasks, {iterations} hash iterations each)",
        lines,
    )
