"""Experiment E1 — the algorithm bias study.

The paper's motivating claim at workload scale: disclosure control
algorithms configured for the *same* k produce releases whose scalar
privacy stories agree but whose per-tuple privacy distributions differ, and
the vector comparators order them where the scalar cannot.

Heavy anonymizations run once per benchmark (pedantic mode).
"""

import pytest

from repro import (
    CoverageBetter,
    Datafly,
    Mondrian,
    MuArgus,
    OptimalLattice,
    Relation,
    Samarati,
    bias_summary,
    copeland_ranking,
)
from repro.core.indices.binary import coverage, spread
from repro.core.properties import equivalence_class_size
from repro.utility import general_loss
from conftest import emit

K = 5


@pytest.fixture(scope="module")
def releases(adult_1k, adult_h):
    return {
        "datafly": Datafly(K).anonymize(adult_1k, adult_h),
        "samarati": Samarati(K).anonymize(adult_1k, adult_h),
        "mondrian": Mondrian(K).anonymize(adult_1k, adult_h),
        "optimal": OptimalLattice(K).anonymize(adult_1k, adult_h),
        "muargus": MuArgus(K).anonymize(adult_1k, adult_h),
    }


def non_suppressed_k(release):
    classes = release.equivalence_classes
    return min(
        classes.size_of(i)
        for i in range(len(release))
        if i not in release.suppressed
    )


def _runtime_factories():
    from repro import GeneticAnonymizer, TopDownSpecialization
    from repro.anonymize.algorithms import RandomRecoding

    return {
        "datafly": lambda: Datafly(K),
        "samarati": lambda: Samarati(K),
        "mondrian": lambda: Mondrian(K),
        "optimal": lambda: OptimalLattice(K),
        "muargus": lambda: MuArgus(K),
        "tds": lambda: TopDownSpecialization(K),
        "random": lambda: RandomRecoding(K, seed=2),
        "genetic-small": lambda: GeneticAnonymizer(
            K, population_size=16, generations=10, seed=2
        ),
    }


@pytest.mark.parametrize("name", sorted(_runtime_factories()))
def test_bench_algorithm_runtime(benchmark, adult_1k, adult_h, name):
    """Wall-clock of each algorithm at N=1000, k=5 (one round)."""
    factory = _runtime_factories()[name]
    release = benchmark.pedantic(
        lambda: factory().anonymize(adult_1k, adult_h), rounds=1, iterations=1
    )
    assert len(release) == len(adult_1k)


def test_bench_same_k_different_bias(benchmark, releases, adult_h):
    def analyze():
        rows = []
        for name, release in releases.items():
            vector = equivalence_class_size(release)
            summary = bias_summary(vector)
            rows.append(
                (name, non_suppressed_k(release), len(release.suppressed),
                 general_loss(release, adult_h), summary)
            )
        return rows

    rows = benchmark.pedantic(analyze, rounds=1, iterations=1)
    guaranteeing = [row for row in rows if row[0] != "muargus"]
    assert all(k >= K for _, k, *_ in guaranteeing)
    # Same scalar story, different distributions.
    ginis = {round(row[4].gini, 6) for row in guaranteeing}
    assert len(ginis) > 1
    lines = [f"{'algorithm':>10}  {'k':>3}  {'sup':>4}  {'LM':>6}  "
             f"{'gini':>6}  {'at-min':>7}  {'max':>5}"]
    for name, k, suppressed, lm, summary in rows:
        lines.append(
            f"{name:>10}  {k:>3}  {suppressed:>4}  {lm:6.3f}  "
            f"{summary.gini:6.3f}  {summary.fraction_at_minimum:7.1%}  "
            f"{summary.maximum:5.0f}"
        )
    emit("E1: same k, different per-tuple privacy (N=1000, k=5)", lines)


def test_bench_vector_comparators_order_algorithms(benchmark, releases):
    vectors = {
        name: equivalence_class_size(release)
        for name, release in releases.items()
    }

    def rank():
        return copeland_ranking(vectors, CoverageBetter())

    ranking = benchmark.pedantic(rank, rounds=1, iterations=1)
    assert len(ranking) == len(releases)
    # The full-domain algorithms produce huge classes and win coverage.
    assert ranking[0][0] in ("datafly", "optimal", "samarati")
    emit("E1: ▶cov tournament over algorithms",
         [f"{name}: {wins} wins" for name, wins in ranking])


def test_bench_min_comparator_blind(benchmark, releases):
    guaranteeing = {
        name: equivalence_class_size(release)
        for name, release in releases.items()
        if name != "muargus" and not release.suppressed
    }
    if len(guaranteeing) < 2:
        guaranteeing = {
            name: equivalence_class_size(release)
            for name, release in list(releases.items())[:2]
        }

    def detect():
        from repro import MinBetter

        names = list(guaranteeing)
        scalar_blind = 0
        vector_sees = 0
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                if MinBetter().relation(
                    guaranteeing[a], guaranteeing[b]
                ) is Relation.EQUIVALENT:
                    scalar_blind += 1
                    if coverage(guaranteeing[a], guaranteeing[b]) != coverage(
                        guaranteeing[b], guaranteeing[a]
                    ) or spread(guaranteeing[a], guaranteeing[b]) != spread(
                        guaranteeing[b], guaranteeing[a]
                    ):
                        vector_sees += 1
        return scalar_blind, vector_sees

    scalar_blind, vector_sees = benchmark.pedantic(detect, rounds=1, iterations=1)
    emit("E1: pairs the scalar ▶min cannot distinguish", [
        f"▶min-equivalent pairs: {scalar_blind}",
        f"...of which ▶cov/▶spr separate: {vector_sees}",
    ])
    if scalar_blind:
        assert vector_sees >= 1
