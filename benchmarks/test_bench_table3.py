"""Experiment T3 — Table 3: the 4-anonymous generalization T4."""

from repro.datasets import paper_tables
from repro.hierarchy import Interval
from conftest import emit


def test_bench_table3(benchmark):
    release = benchmark(paper_tables.t4)
    assert release.k() == 4
    assert release.released[0] == ("13***", Interval(20, 40), "*")
    assert tuple(release.equivalence_classes.sizes()) == paper_tables.CLASS_SIZE_T4
    emit("Table 3: T4", [release.released.to_text()])
