"""Experiment E6 — workload utility: aggregate query error.

The multidimensional-vs-full-domain utility comparison that motivates
Mondrian (LeFevre et al., surveyed in the paper's related work), measured
as mean relative COUNT error over a random range workload, across k.
The shape claim: Mondrian's error stays well below Datafly's at every k,
and both grow with k.
"""

import pytest

from repro import Datafly, Mondrian
from repro.utility import mean_workload_error, random_range_workload
from conftest import emit

KS = [2, 5, 10, 25]


@pytest.fixture(scope="module")
def workload(adult_1k):
    return random_range_workload(
        adult_1k.head(500), "age", queries=30, selectivity=0.2, seed=17
    )


def test_bench_query_error_series(benchmark, adult_1k, adult_h, workload):
    data = adult_1k.head(500)

    def sweep():
        rows = []
        for k in KS:
            mondrian = Mondrian(k).anonymize(data, adult_h)
            datafly = Datafly(k).anonymize(data, adult_h)
            rows.append((
                k,
                mean_workload_error(mondrian, workload, adult_h),
                mean_workload_error(datafly, workload, adult_h),
            ))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'k':>4}  {'mondrian':>9}  {'datafly':>9}"]
    for k, mondrian_error, datafly_error in rows:
        lines.append(f"{k:>4}  {mondrian_error:9.4f}  {datafly_error:9.4f}")
        assert mondrian_error <= datafly_error
    # Error grows (weakly) with k for the multidimensional recoder.
    mondrian_series = [row[1] for row in rows]
    assert mondrian_series[0] <= mondrian_series[-1] + 1e-9
    emit("E6: mean relative COUNT error vs k (range workload on age)", lines)
