"""Experiment F3 — Figure 3: computing P_cov and P_spr.

Regenerates the figure's computation — coverage counts tuples with better
property values, spread sums the winning margins — on the Section 5.3
example vectors, and benchmarks both kernels at figure scale and at data
scale (N = 10k).
"""

import numpy as np

from repro.core.indices.binary import coverage, spread
from repro.core.vector import PropertyVector
from conftest import emit

D1 = PropertyVector((2, 2, 3, 4, 5), "D1")
D2 = PropertyVector((3, 2, 4, 2, 3), "D2")


def test_bench_figure3_coverage(benchmark):
    forward = benchmark(coverage, D1, D2)
    assert forward == 3 / 5
    assert coverage(D2, D1) == 3 / 5
    emit("Figure 3: P_cov computation", [
        f"D1 = {D1.as_tuple()}",
        f"D2 = {D2.as_tuple()}",
        f"P_cov(D1, D2) = {coverage(D1, D2):.2f}",
        f"P_cov(D2, D1) = {coverage(D2, D1):.2f}   (tied)",
    ])


def test_bench_figure3_spread(benchmark):
    forward = benchmark(spread, D1, D2)
    assert forward == 4.0
    assert spread(D2, D1) == 2.0
    emit("Figure 3: P_spr computation", [
        f"P_spr(D1, D2) = {spread(D1, D2):.1f}  (margins 2 + 2)",
        f"P_spr(D2, D1) = {spread(D2, D1):.1f}  (margins 1 + 1)",
        "coverage ties, spread breaks the tie for D1 — Section 5.3",
    ])


def test_bench_figure3_scaled_kernels(benchmark):
    rng = np.random.default_rng(0)
    big1 = PropertyVector(rng.integers(2, 100, 10_000))
    big2 = PropertyVector(rng.integers(2, 100, 10_000))

    def both():
        return coverage(big1, big2), spread(big1, big2)

    cov_value, spr_value = benchmark(both)
    assert 0.0 <= cov_value <= 1.0
    assert spr_value >= 0.0
