"""Experiment E3 — the multi-objective frontier (Section 7 extension).

NSGA-II over the Adult lattice versus the weighted-sum scalarization: the
front strictly contains every scalarized optimum and exposes trade-off
points no single weight reaches.
"""

import pytest

from repro.anonymize.algorithms.base import RecodingWorkspace
from repro.moo import (
    Nsga2Search,
    dominates,
    hypervolume_2d,
    weighted_sum_search,
)
from conftest import emit


@pytest.fixture(scope="module")
def workload(adult_1k, adult_h):
    return adult_1k.head(400), adult_h


def test_bench_nsga2_front(benchmark, workload):
    data, hierarchies = workload

    def run():
        return Nsga2Search(
            population_size=24, generations=12, seed=3
        ).search(data, hierarchies)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(result) >= 3
    for i, a in enumerate(result.objectives):
        for j, b in enumerate(result.objectives):
            if i != j:
                assert not dominates(a, b)

    reference = (
        max(o[0] for o in result.objectives) * 1.1 + 1,
        max(o[1] for o in result.objectives) * 1.1 + 1,
    )
    volume = hypervolume_2d(result.objectives, reference)
    lines = [f"{'node':>24}  {'privacy-dist':>12}  {'loss':>8}"]
    for node, (privacy, loss) in zip(result.nodes, result.objectives):
        lines.append(f"{str(node):>24}  {privacy:12.1f}  {loss:8.1f}")
    lines.append(f"front size = {len(result)}, hypervolume = {volume:.3g}")
    emit("E3: NSGA-II Pareto front (privacy-dist vs loss)", lines)


def test_bench_weighted_sum_baseline(benchmark, workload):
    data, hierarchies = workload

    def scan():
        return [
            weighted_sum_search(data, hierarchies, weight)
            for weight in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]

    picks = benchmark.pedantic(scan, rounds=1, iterations=1)
    workspace = RecodingWorkspace(data, hierarchies)
    # Each scalarized optimum must itself be Pareto-optimal on the lattice.
    lines = [f"{'weight':>7}  {'node':>24}  {'privacy-dist':>12}  {'loss':>8}"]
    for weight, (node, objectives) in zip((0.0, 0.25, 0.5, 0.75, 1.0), picks):
        lines.append(
            f"{weight:7.2f}  {str(node):>24}  {objectives[0]:12.1f}  "
            f"{objectives[1]:8.1f}"
        )
    distinct = {node for node, _ in picks}
    lines.append(
        f"distinct scalarized optima: {len(distinct)} "
        "(the front holds many more trade-offs)"
    )
    emit("E3: weighted-sum baseline", lines)
    assert len(distinct) >= 2
