"""Experiment E5 — empirical grounding of the breach probabilities.

The paper's Section 1 reads privacy levels as "probability of privacy
breach" (1/3 vs 1/7 for T3a/T3b members).  This bench validates those
structural numbers against an explicit linkage adversary: analytic
prosecutor risks equal 1/|EC|, and a Monte Carlo attack reproduces the
marketer (bulk) rate empirically.
"""

import pytest

from repro.attack import linkage_report, prosecutor_risks, simulate_linkage
from repro.core.properties import breach_probability
from repro.datasets import paper_tables
from conftest import emit

PAPER_H = {paper_tables.SENSITIVE_ATTRIBUTE: paper_tables.marital_hierarchy()}


def test_bench_attack_structural_vs_analytic(benchmark, generalizations):
    t3b = generalizations["T3b"]

    def attack():
        return prosecutor_risks(t3b, hierarchies=PAPER_H)

    risks = benchmark(attack)
    structural = breach_probability(t3b)
    assert risks.as_tuple() == pytest.approx(structural.as_tuple())
    # Section 1's numbers: members of the 7-class have breach prob 1/7.
    assert risks[1] == pytest.approx(1 / 7)
    assert risks[0] == pytest.approx(1 / 3)
    emit("E5: prosecutor risks on T3b (= Section 1 breach probabilities)", [
        f"tuple {i + 1}: {risk:.4f}" for i, risk in enumerate(risks)
    ])


def test_bench_attack_monte_carlo(benchmark, generalizations):
    t3a = generalizations["T3a"]

    def simulate():
        return simulate_linkage(t3a, trials=2000, seed=7, hierarchies=PAPER_H)

    rate = benchmark.pedantic(simulate, rounds=1, iterations=1)
    expected = linkage_report(t3a, hierarchies=PAPER_H).marketer_risk
    assert rate == pytest.approx(expected, abs=0.04)
    emit("E5: Monte Carlo linkage vs analytic marketer risk (T3a)", [
        f"empirical re-identification rate = {rate:.4f}",
        f"analytic marketer risk           = {expected:.4f}",
    ])


def test_bench_attack_at_workload_scale(benchmark, adult_1k, adult_h):
    from repro import Mondrian

    release = Mondrian(5).anonymize(adult_1k.head(300), adult_h)

    def attack():
        return linkage_report(release, hierarchies=adult_h)

    report = benchmark.pedantic(attack, rounds=1, iterations=1)
    assert report.prosecutor_max <= 1 / 5 + 1e-9
    emit("E5: linkage report, Mondrian k=5 on 300 Adult rows",
         [report.describe()])
