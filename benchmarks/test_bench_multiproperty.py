"""Experiment E8 — the utility cost of multi-property anonymization.

Section 4 notes that optimizing for more than one privacy property at once
is rare.  The constrained lattice search makes it routine; this experiment
measures what each added privacy constraint costs in utility on the Adult
workload: k-anonymity alone, then + distinct l-diversity, then
+ t-closeness.
"""

import pytest

from repro.anonymize.algorithms import ConstrainedLattice
from repro.privacy import DistinctLDiversity, KAnonymity, TCloseness
from repro.utility import general_loss
from conftest import emit

SENSITIVE = "occupation"


@pytest.fixture(scope="module")
def workload(adult_1k, adult_h):
    return adult_1k.head(300), adult_h


def test_bench_constraint_stack(benchmark, workload):
    data, hierarchies = workload
    stacks = [
        ("k=5", [KAnonymity(5)]),
        ("k=5 + 6-diverse + 0.2-close", [
            KAnonymity(5),
            DistinctLDiversity(6, SENSITIVE),
            TCloseness(0.2, SENSITIVE),
        ]),
        ("k=5 + 6-diverse + 0.15-close", [
            KAnonymity(5),
            DistinctLDiversity(6, SENSITIVE),
            TCloseness(0.15, SENSITIVE),
        ]),
    ]

    def sweep():
        rows = []
        for label, models in stacks:
            release = ConstrainedLattice(models).anonymize(data, hierarchies)
            rows.append((label, release, general_loss(release, hierarchies)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'constraints':>28}  {'LM':>6}  {'k':>3}"]
    previous_loss = -1.0
    for label, release, loss in rows:
        lines.append(f"{label:>28}  {loss:6.3f}  {release.k():>3}")
        # Each added constraint can only cost utility.
        assert loss >= previous_loss - 1e-12
        previous_loss = loss
    emit("E8: utility cost of stacking privacy constraints (N=300)", lines)

    # And every stack actually satisfies all its models.
    for (label, models), (_, release, _) in zip(stacks, rows):
        for model in models:
            assert model.satisfied_by(release), f"{label}: {model.name}"
