"""Experiment E2 — scaling of the quality index kernels.

Cost of P_cov / P_spr / P_hv(log) / P_rank as the data set size N grows:
all four are a single vectorized pass, so the series should be ~linear.
"""

import numpy as np
import pytest

from repro.core.indices.binary import (
    compare_hypervolume,
    coverage,
    spread,
)
from repro.core.indices.unary import RankIndex
from repro.core.vector import PropertyVector

SIZES = [100, 1_000, 10_000, 100_000]


def _pair(size: int) -> tuple[PropertyVector, PropertyVector]:
    rng = np.random.default_rng(size)
    return (
        PropertyVector(rng.integers(2, 200, size)),
        PropertyVector(rng.integers(2, 200, size)),
    )


@pytest.mark.parametrize("size", SIZES)
def test_bench_coverage_scaling(benchmark, size):
    a, b = _pair(size)
    value = benchmark(coverage, a, b)
    assert 0.0 <= value <= 1.0


@pytest.mark.parametrize("size", SIZES)
def test_bench_spread_scaling(benchmark, size):
    a, b = _pair(size)
    value = benchmark(spread, a, b)
    assert value >= 0.0


@pytest.mark.parametrize("size", SIZES)
def test_bench_hypervolume_scaling(benchmark, size):
    a, b = _pair(size)
    sign = benchmark(compare_hypervolume, a, b)
    assert sign in (-1, 0, 1)


@pytest.mark.parametrize("size", SIZES)
def test_bench_rank_scaling(benchmark, size):
    a, _ = _pair(size)
    index = RankIndex(ideal=200.0)
    value = benchmark(index.value, a)
    assert value >= 0.0
