"""Experiment E4 — ablations of the design choices called out in DESIGN.md.

  * comparator disagreement: how often ▶min, ▶rank, ▶cov, ▶spr, ▶hv pick
    different winners over random anonymization pairs of the same data set;
  * coverage tie handling: paper's ``>=`` versus the strict ``>`` variant;
  * hypervolume reference point: origin versus per-property minimum;
  * suppressed-tuple handling: retained fully generalized (paper) vs
    dropped — effect on the class-size property vector.
"""

import itertools

import numpy as np
import pytest

from repro.core.comparators import (
    CoverageBetter,
    HypervolumeBetter,
    MinBetter,
    RankBetter,
    Relation,
    SpreadBetter,
)
from repro.core.indices.binary import coverage
from repro.core.vector import PropertyVector
from conftest import emit


def _random_class_size_vectors(count: int, size: int, seed: int):
    """Random *valid* class-size vectors: partitions of `size` rows."""
    rng = np.random.default_rng(seed)
    vectors = []
    for _ in range(count):
        remaining = size
        sizes = []
        while remaining > 0:
            chunk = int(rng.integers(1, min(remaining, max(2, size // 4)) + 1))
            sizes.append(chunk)
            remaining -= chunk
        per_tuple = [s for s in sizes for _ in range(s)]
        rng.shuffle(per_tuple)
        vectors.append(PropertyVector(per_tuple))
    return vectors


def test_bench_comparator_disagreement(benchmark):
    vectors = _random_class_size_vectors(count=20, size=60, seed=5)
    comparators = {
        "min": MinBetter(),
        "rank": RankBetter(ideal=60.0),
        "cov": CoverageBetter(),
        "spr": SpreadBetter(),
        "hv": HypervolumeBetter(),
    }

    def measure():
        pairs = list(itertools.combinations(range(len(vectors)), 2))
        disagreements = 0
        decisive = {name: 0 for name in comparators}
        for i, j in pairs:
            verdicts = {
                name: comparator.relation(vectors[i], vectors[j])
                for name, comparator in comparators.items()
            }
            for name, verdict in verdicts.items():
                if verdict is not Relation.EQUIVALENT:
                    decisive[name] += 1
            directions = {
                verdict for verdict in verdicts.values()
                if verdict is not Relation.EQUIVALENT
            }
            if len(directions) > 1:
                disagreements += 1
        return len(pairs), disagreements, decisive

    total, disagreements, decisive = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    lines = [f"pairs compared: {total}",
             f"pairs where comparators disagree on the winner: "
             f"{disagreements} ({disagreements / total:.0%})"]
    for name, count in decisive.items():
        lines.append(f"▶{name} decisive on {count}/{total} pairs")
    emit("E4: comparator disagreement over random same-N partitions", lines)
    # The paper's point: the choice of comparator matters.
    assert disagreements > 0
    # And ▶min is the least decisive (most blind) of the suite.
    assert decisive["min"] <= min(
        count for name, count in decisive.items() if name != "min"
    )


def test_bench_coverage_tie_ablation(benchmark):
    rng = np.random.default_rng(11)
    base = rng.integers(2, 8, 200)
    # Heavy ties: second vector shares 60% of entries.
    other = base.copy()
    flip = rng.random(200) < 0.4
    other[flip] = rng.integers(2, 8, int(flip.sum()))
    a, b = PropertyVector(base), PropertyVector(other)

    def both_variants():
        return (
            coverage(a, b), coverage(b, a),
            coverage(a, b, strict=True), coverage(b, a, strict=True),
        )

    cov_ab, cov_ba, strict_ab, strict_ba = benchmark(both_variants)
    emit("E4: coverage tie handling (paper >= vs strict >)", [
        f"P_cov(a,b)={cov_ab:.3f}  P_cov(b,a)={cov_ba:.3f}  "
        f"sum={cov_ab + cov_ba:.3f} (>1: ties double-counted)",
        f"strict(a,b)={strict_ab:.3f}  strict(b,a)={strict_ba:.3f}  "
        f"sum={strict_ab + strict_ba:.3f} (<=1)",
        "paper's >= keeps P_cov(D1,D2)+P_cov(D2,D1) >= 1; the strict "
        "variant loses the 'not worse' reading",
    ])
    assert cov_ab + cov_ba >= 1.0
    assert strict_ab + strict_ba <= 1.0
    # Orders must agree whenever both are decisive.
    if (cov_ab - cov_ba) * (strict_ab - strict_ba) != 0:
        assert np.sign(cov_ab - cov_ba) == np.sign(strict_ab - strict_ba)


def test_bench_hypervolume_reference_ablation(benchmark):
    a = PropertyVector([2.0, 8.0])
    b = PropertyVector([5.0, 3.0])

    def verdicts():
        # Volumes 16 vs 15 at the origin; 7 vs 8 from reference 1.
        origin = HypervolumeBetter(reference=0.0).relation(a, b)
        shifted = HypervolumeBetter(reference=1.0).relation(a, b)
        return origin, shifted

    origin, shifted = benchmark(verdicts)
    emit("E4: hypervolume reference point", [
        f"reference 0.0 -> {origin.value} for (2,8) vs (5,3)",
        f"reference 1.0 -> {shifted.value}",
        "the reference point can flip ▶hv verdicts — it must be reported "
        "with any hypervolume comparison",
    ])
    assert origin is not shifted  # this pair flips by construction


def test_bench_suppressed_handling_ablation(benchmark, adult_1k, adult_h):
    from repro import Datafly
    from repro.core.properties import equivalence_class_size

    release = Datafly(10).anonymize(adult_1k.head(400), adult_h)

    def variants():
        retained = equivalence_class_size(release)
        kept_rows = [
            retained[i]
            for i in range(len(release))
            if i not in release.suppressed
        ]
        dropped = PropertyVector(kept_rows) if kept_rows else retained
        return retained, dropped

    retained, dropped = benchmark(variants)
    emit("E4: suppressed-tuple handling", [
        f"retained (paper): N={len(retained)}, min={retained.min():g} "
        f"(suppressed tuples form one overly generalized class)",
        f"dropped: N={len(dropped)}, min={dropped.min():g}",
        "dropping suppressed tuples silently removes exactly the "
        "individuals with the least protection from the property vector",
    ])
    assert len(retained) == 400
    assert len(dropped) == 400 - len(release.suppressed)
