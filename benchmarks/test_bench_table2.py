"""Experiment T2 — Table 2: the two 3-anonymous generalizations T3a / T3b.

Regenerates both releases through the generalization engine and benchmarks
the full-domain recoding kernel.
"""

from repro.datasets import paper_tables
from repro.hierarchy import Interval
from conftest import emit


def test_bench_table2_t3a(benchmark):
    release = benchmark(paper_tables.t3a)
    assert release.k() == 3
    assert release.released[0] == ("1305*", Interval(25, 35), "Married")
    assert tuple(release.equivalence_classes.sizes()) == (
        paper_tables.CLASS_SIZE_T3A
    )
    emit("Table 2 (left): T3a", [release.released.to_text()])


def test_bench_table2_t3b(benchmark):
    release = benchmark(paper_tables.t3b)
    assert release.k() == 3
    assert release.released[0] == ("130**", Interval(15, 35), "Married")
    assert tuple(release.equivalence_classes.sizes()) == (
        paper_tables.CLASS_SIZE_T3B
    )
    emit("Table 2 (right): T3b", [release.released.to_text()])
