"""Experiment S5 — Section 5's inline examples.

  * 5.2: T4 ▶cov T3a and T3b ▶cov T4;
  * 5.3: the 3-anonymous vs 2-anonymous spread example (P_spr 2 vs 8);
  * 5.5: the weighted comparator with Iyengar utility — P_cov values
         (0.3, 1.0, 1.0, 0.3) and the equal-weights tie;
  * 5.6: lexicographic preference;
  * 5.7: goal-based preference.
"""

import pytest

from repro.core.comparators import CoverageBetter, Relation
from repro.core.indices.binary import coverage, spread
from repro.core.indices.multi import goal, lexicographic, weighted
from repro.core.properties import equivalence_class_size
from repro.core.vector import PropertyVector
from repro.datasets import paper_tables
from conftest import emit

# Section 5.5's stated property vectors (privacy from Table 2, utility per
# Iyengar's metric as quoted in the paper).
P_A = PropertyVector(paper_tables.CLASS_SIZE_T3A, "privacy")
P_B = PropertyVector(paper_tables.CLASS_SIZE_T3B, "privacy")
U_A = PropertyVector(paper_tables.PAPER_UTILITY_T3A, "utility")
U_B = PropertyVector(paper_tables.PAPER_UTILITY_T3B, "utility")


def test_bench_section52_coverage_chain(benchmark, generalizations):
    def chain():
        vectors = {
            name: equivalence_class_size(release)
            for name, release in generalizations.items()
        }
        comparator = CoverageBetter()
        return (
            comparator.relation(vectors["T4"], vectors["T3a"]),
            comparator.relation(vectors["T3b"], vectors["T4"]),
        )

    t4_vs_t3a, t3b_vs_t4 = benchmark(chain)
    assert t4_vs_t3a is Relation.BETTER
    assert t3b_vs_t4 is Relation.BETTER
    emit("Section 5.2: coverage chain", [
        "T4 ▶cov T3a (paper: yes)",
        "T3b ▶cov T4 (paper: yes)",
    ])


def test_bench_section53_spread_example(benchmark):
    three_anon = PropertyVector((3, 3, 3, 5, 5, 5, 5, 5, 3, 3, 3, 4, 4, 4, 4))
    two_anon = PropertyVector((2, 2, 6, 6, 6, 6, 6, 6, 3, 3, 3, 4, 4, 4, 4))

    def compute():
        return spread(three_anon, two_anon), spread(two_anon, three_anon)

    spr_32, spr_23 = benchmark(compute)
    assert spr_32 == 2.0
    assert spr_23 == 8.0
    emit("Section 5.3: 3-anonymous vs 2-anonymous spread", [
        f"P_spr(3-anon, 2-anon) = {spr_32:.0f}  (paper: 2)",
        f"P_spr(2-anon, 3-anon) = {spr_23:.0f}  (paper: 8)",
        "the 2-anonymous generalization is the reasonable choice — counter "
        "to established preferential norms",
    ])


def test_bench_section55_weighted(benchmark):
    def compute():
        return (
            coverage(P_A, P_B), coverage(P_B, P_A),
            coverage(U_A, U_B), coverage(U_B, U_A),
            weighted((P_A, U_A), (P_B, U_B), weights=[0.5, 0.5]),
            weighted((P_B, U_B), (P_A, U_A), weights=[0.5, 0.5]),
        )

    cov_pab, cov_pba, cov_uab, cov_uba, wtd_ab, wtd_ba = benchmark(compute)
    assert cov_pab == pytest.approx(0.3)
    assert cov_pba == pytest.approx(1.0)
    assert cov_uab == pytest.approx(1.0)
    assert cov_uba == pytest.approx(0.3)
    assert wtd_ab == pytest.approx(wtd_ba)
    emit("Section 5.5: weighted comparator", [
        f"P_cov(p_a, p_b) = {cov_pab:.1f}  (paper: 0.3)",
        f"P_cov(p_b, p_a) = {cov_pba:.1f}  (paper: 1)",
        f"P_cov(u_a, u_b) = {cov_uab:.1f}  (paper: 1)",
        f"P_cov(u_b, u_a) = {cov_uba:.1f}  (paper: 0.3)",
        f"P_WTD equal weights: {wtd_ab:.2f} vs {wtd_ba:.2f} — equally good "
        "(paper's conclusion)",
    ])


def test_bench_section56_lexicographic(benchmark):
    def compute():
        return (
            lexicographic((P_B, U_B), (P_A, U_A)),
            lexicographic((P_A, U_A), (P_B, U_B)),
        )

    privacy_first_b, privacy_first_a = benchmark(compute)
    assert privacy_first_b == 1  # T3b superior on the first (privacy)
    assert privacy_first_a == 2  # T3a superior only on the second (utility)
    emit("Section 5.6: ε-lexicographic comparator", [
        f"P_LEX(Υ_T3b, Υ_T3a) = {privacy_first_b}",
        f"P_LEX(Υ_T3a, Υ_T3b) = {privacy_first_a}",
        "privacy ordered first -> T3b ▶LEX T3a",
    ])


def test_bench_section57_goal(benchmark):
    goals = [1.0, 0.5]  # demand full privacy coverage, half utility coverage

    def compute():
        return (
            goal((P_B, U_B), (P_A, U_A), goals),
            goal((P_A, U_A), (P_B, U_B), goals),
        )

    score_b, score_a = benchmark(compute)
    assert score_b < score_a  # T3b closer to this goal
    emit("Section 5.7: goal comparator", [
        f"goal = {goals}",
        f"P_GOAL(Υ_T3b, Υ_T3a) = {score_b:.3f}",
        f"P_GOAL(Υ_T3a, Υ_T3b) = {score_a:.3f}",
        "smaller error -> T3b ▶GOAL T3a for a privacy-leaning goal",
    ])
