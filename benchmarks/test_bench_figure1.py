"""Experiment F1 — Figure 1: per-tuple equivalence class sizes.

Regenerates the three series plotted in the paper's Figure 1 (class size of
each tuple under T3a, T3b, T4) and checks the crossover the figure
illustrates: user 8 prefers T4 over T3b, user 3 prefers T3b over T4.
"""

from repro.core.properties import equivalence_class_size
from repro.datasets import paper_tables
from conftest import emit


def test_bench_figure1(benchmark, generalizations):
    def series():
        return {
            name: equivalence_class_size(release).as_tuple()
            for name, release in generalizations.items()
        }

    data = benchmark(series)
    assert data["T3a"] == tuple(map(float, paper_tables.CLASS_SIZE_T3A))
    assert data["T3b"] == tuple(map(float, paper_tables.CLASS_SIZE_T3B))
    assert data["T4"] == tuple(map(float, paper_tables.CLASS_SIZE_T4))

    # Section 2's per-user crossover: tuple 8 (index 7) does better under
    # T4 (class 4 vs 3); tuple 3 (index 2) does better under T3b (7 vs 4).
    assert data["T4"][7] > data["T3b"][7]
    assert data["T3b"][2] > data["T4"][2]

    lines = ["tuple  T3a  T3b  T4"]
    for i in range(10):
        lines.append(
            f"{i + 1:>5}  {data['T3a'][i]:>3.0f}  {data['T3b'][i]:>3.0f}  "
            f"{data['T4'][i]:>2.0f}"
        )
    emit("Figure 1: equivalence class size per tuple", lines)
