"""Recode+measure throughput: row plane vs columnar plane vs numpy kernels.

Sweeps the full generalization lattice of a three-attribute Adult QI
(age × education × marital-status, 72 nodes), counting k-anonymity
violations at every node — the inner loop of Samarati/Incognito/optimal
searches.  Three implementations are raced and pinned against each other
node-for-node:

* the **row plane** groups generalized tuples through a dict per node
  (the pre-columnar implementation);
* the **columnar plane** on the pure-python kernel backend —
  :class:`~repro.anonymize.algorithms.base.RecodingWorkspace` with
  interned codes, level tables and incremental partitions;
* the same workspace on the **numpy kernel backend** (when installed).

At the largest N the columnar plane must clear a 5x speedup over the row
plane, and the numpy backend a further 5x over the pure-python columnar
plane.  A second, numpy-gated benchmark runs the scale tier: the full
72-node sweep on 1M generated rows, timed separately from generation +
interning, with a single-digit-second wall-clock contract.

``--quick`` (smoke mode, used by CI) shrinks the sweep to one small N,
caps ``repeats`` at 1, drops the throughput floors and skips the scale
tier — it verifies agreement, not speed.

With ``--bench-json PATH`` the run also appends its per-N wall-time
percentiles (p50/p95 over the repeats) to the ``BENCH_recode.json``
trajectory at PATH, so performance history is diffable in review and
validated by the ART012 artifact checker; cases name the kernel backend
that produced them.
"""

import time

import pytest

from repro.anonymize.algorithms.base import RecodingWorkspace
from repro.datasets import adult_dataset, adult_hierarchies
from repro.datasets.schema import AttributeRole
from repro.kernels import HAVE_NUMPY, backend_name, force_backend
from conftest import emit, percentile, record_trajectory

QI = ("age", "education", "marital-status")
K = 5
FULL_SIZES = [1000, 5000, 30000]
QUICK_SIZES = [300]
SPEEDUP_FLOOR = 5.0
KERNEL_SPEEDUP_FLOOR = 5.0
REPEATS = 3
SCALE_ROWS = 1_000_000
SCALE_SWEEP_BUDGET_S = 9.9


def _three_qi(size: int):
    data = adult_dataset(size, seed=7)
    roles = {
        name: AttributeRole.INSENSITIVE
        for name in data.schema.quasi_identifier_names
        if name not in QI
    }
    return data.with_roles(roles)


def _row_plane_sweep(data, hierarchies, nodes):
    """Violation counts per node via per-row generalized-tuple grouping."""
    columns = {}
    for name in QI:
        hierarchy = hierarchies[name]
        raw = data.column(name)
        for level in range(hierarchy.height + 1):
            columns[(name, level)] = [
                hierarchy.generalize(value, level)  # lint: disable=REP008
                for value in raw
            ]
    counts = []
    for node in nodes:
        keys = list(zip(*(columns[(name, level)] for name, level in zip(QI, node))))
        sizes: dict = {}
        for key in keys:
            sizes[key] = sizes.get(key, 0) + 1
        counts.append(sum(1 for key in keys if sizes[key] < K))
    return counts


def _columnar_sweep(data, hierarchies, nodes):
    workspace = RecodingWorkspace(data, hierarchies)
    return [workspace.violation_count(node, K) for node in nodes], workspace


def _timed_columnar(data, hierarchies, nodes, repeats):
    """(counts, wall times, last workspace) over ``repeats`` fresh sweeps."""
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        counts, workspace = _columnar_sweep(data, hierarchies, nodes)
        times.append(time.perf_counter() - start)
    return counts, times, workspace


def test_bench_recode_lattice_sweep(benchmark, quick, bench_json):
    hierarchies = adult_hierarchies()
    sizes = QUICK_SIZES if quick else FULL_SIZES
    repeats = 1 if quick else REPEATS
    backends = ["python"] + (["numpy"] if HAVE_NUMPY else [])

    def sweep():
        results = []
        for size in sizes:
            data = _three_qi(size)
            nodes = list(
                RecodingWorkspace(data, hierarchies).lattice.nodes()
            )
            start = time.perf_counter()
            row_counts = _row_plane_sweep(data, hierarchies, nodes)
            row_elapsed = time.perf_counter() - start
            per_backend = {}
            for name in backends:
                with force_backend(name):
                    counts, times, workspace = _timed_columnar(
                        data, hierarchies, nodes, repeats
                    )
                assert row_counts == counts, (
                    f"row and columnar({name}) planes disagree at N={size}"
                )
                per_backend[name] = (times, workspace)
            results.append((size, len(nodes), row_elapsed, per_backend))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    active = backends[-1]

    if bench_json:
        cases = [
            {
                "n": size,
                "repeats": repeats,
                "p50_wall_s": round(percentile(per_backend[active][0], 0.50), 6),
                "p95_wall_s": round(percentile(per_backend[active][0], 0.95), 6),
                "plane_equivalent": True,
                "kernel": active,
            }
            for size, _, _, per_backend in results
        ]
        record_trajectory(bench_json, "recode", cases, quick)

    lines = [
        f"{'N':>7}  {'nodes':>5}  {'row rows/s':>12}  {'col-py rows/s':>13}  "
        f"{'col-np rows/s':>13}"
    ]
    for size, node_count, row_elapsed, per_backend in results:
        swept = size * node_count
        python_p50 = percentile(per_backend["python"][0], 0.50)
        numpy_cell = (
            f"{swept / percentile(per_backend['numpy'][0], 0.50):>13.0f}"
            if "numpy" in per_backend
            else f"{'absent':>13}"
        )
        lines.append(
            f"{size:>7}  {node_count:>5}  {swept / row_elapsed:>12.0f}  "
            f"{swept / python_p50:>13.0f}  {numpy_cell}"
        )
    stats = results[-1][3][active][1].partition_stats
    lines.append(
        f"partitions at N={results[-1][0]}: {stats['fresh']} fresh, "
        f"{stats['derived']} derived incrementally"
    )
    emit(f"recode+measure lattice sweep, k={K}, backend={active}", lines)

    # The incremental path must actually carry the sweep: most nodes derive
    # their partition from a cached finer one instead of regrouping rows.
    assert stats["derived"] > stats["fresh"]
    if not quick:
        size, _, row_elapsed, per_backend = results[-1]
        active_p50 = percentile(per_backend[active][0], 0.50)
        speedup = row_elapsed / active_p50
        assert speedup >= SPEEDUP_FLOOR, (
            f"columnar plane {speedup:.1f}x over row plane at N={size}; "
            f"floor is {SPEEDUP_FLOOR}x"
        )
        if "numpy" in per_backend:
            kernel_speedup = percentile(
                per_backend["python"][0], 0.50
            ) / percentile(per_backend["numpy"][0], 0.50)
            assert kernel_speedup >= KERNEL_SPEEDUP_FLOOR, (
                f"numpy kernels {kernel_speedup:.1f}x over pure-python "
                f"columnar at N={size}; floor is {KERNEL_SPEEDUP_FLOOR}x"
            )


@pytest.mark.skipif(not HAVE_NUMPY, reason="the 1M scale tier needs the numpy kernels")
def test_bench_recode_scale_tier(benchmark, quick, bench_json):
    """Full-lattice k-violation sweep on 1M generated rows.

    Generation + interning are timed separately from the sweep: the
    single-digit-second contract covers the measurement inner loop, which
    a lattice search re-runs per node, not the one-off dataset build.
    The pure-python backend replays the sweep once and must agree
    node-for-node — the scale tier's plane-equivalence witness.
    """
    if quick:
        pytest.skip("scale tier is excluded from --quick smoke runs")
    hierarchies = adult_hierarchies()

    def scale_sweep():
        start = time.perf_counter()
        data = _three_qi(SCALE_ROWS)
        nodes = list(RecodingWorkspace(data, hierarchies).lattice.nodes())
        # Touch every QI partition once so interning and level tables are
        # built before the timed region.
        _columnar_sweep(data, hierarchies, nodes[:1])
        build_elapsed = time.perf_counter() - start
        counts, times, workspace = _timed_columnar(
            data, hierarchies, nodes, REPEATS
        )
        with force_backend("python"):
            python_counts, _ = _columnar_sweep(data, hierarchies, nodes)
        assert counts == python_counts, "backends disagree at the scale tier"
        return build_elapsed, len(nodes), counts, times, workspace

    build_elapsed, node_count, counts, times, workspace = benchmark.pedantic(
        scale_sweep, rounds=1, iterations=1
    )

    if bench_json:
        case = {
            "n": SCALE_ROWS,
            "repeats": REPEATS,
            "p50_wall_s": round(percentile(times, 0.50), 6),
            "p95_wall_s": round(percentile(times, 0.95), 6),
            "plane_equivalent": True,
            "kernel": backend_name(),
        }
        record_trajectory(bench_json, "recode", [case], quick)

    p50 = percentile(times, 0.50)
    stats = workspace.partition_stats
    emit(
        f"scale tier: full-lattice sweep at N={SCALE_ROWS}, k={K}",
        [
            f"build (generate+intern): {build_elapsed:.2f}s",
            f"sweep over {node_count} nodes: p50 {p50:.2f}s "
            f"({SCALE_ROWS * node_count / p50:,.0f} rows/s)",
            f"partitions: {stats['fresh']} fresh, {stats['derived']} derived",
        ],
    )
    assert stats["derived"] > stats["fresh"]
    assert p50 <= SCALE_SWEEP_BUDGET_S, (
        f"1M full-lattice sweep took p50 {p50:.2f}s; the scale-tier "
        f"contract is single-digit seconds (<= {SCALE_SWEEP_BUDGET_S}s)"
    )
