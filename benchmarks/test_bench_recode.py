"""Recode+measure throughput: row plane vs columnar measurement plane.

Sweeps the full generalization lattice of a three-attribute Adult QI
(age × education × marital-status, 72 nodes), counting k-anonymity
violations at every node — the inner loop of Samarati/Incognito/optimal
searches.  The row plane groups generalized tuples through a dict per
node (the pre-columnar implementation); the columnar plane is
:class:`~repro.anonymize.algorithms.base.RecodingWorkspace` with interned
codes, level tables and incremental partitions.  Reports rows/sec for
both planes per N and asserts the planes agree node-for-node; at the
largest N the columnar plane must clear a 5x speedup.

``--quick`` (smoke mode, used by CI) shrinks the sweep to one small N and
drops the speedup floor — it verifies agreement, not throughput.

With ``--bench-json PATH`` the run also appends its per-N columnar wall-time
percentiles (p50/p95 over ``REPEATS`` sweeps) to the ``BENCH_recode.json``
trajectory at PATH, so performance history is diffable in review and
validated by the ART012 artifact checker.
"""

import time

from repro.anonymize.algorithms.base import RecodingWorkspace
from repro.datasets import adult_dataset, adult_hierarchies
from repro.datasets.schema import AttributeRole
from conftest import emit, percentile, record_trajectory

QI = ("age", "education", "marital-status")
K = 5
FULL_SIZES = [1000, 5000, 30000]
QUICK_SIZES = [300]
SPEEDUP_FLOOR = 5.0
REPEATS = 3


def _three_qi(size: int):
    data = adult_dataset(size, seed=7)
    roles = {
        name: AttributeRole.INSENSITIVE
        for name in data.schema.quasi_identifier_names
        if name not in QI
    }
    return data.with_roles(roles)


def _row_plane_sweep(data, hierarchies, nodes):
    """Violation counts per node via per-row generalized-tuple grouping."""
    columns = {}
    for name in QI:
        hierarchy = hierarchies[name]
        raw = data.column(name)
        for level in range(hierarchy.height + 1):
            columns[(name, level)] = [
                hierarchy.generalize(value, level)  # lint: disable=REP008
                for value in raw
            ]
    counts = []
    for node in nodes:
        keys = list(zip(*(columns[(name, level)] for name, level in zip(QI, node))))
        sizes: dict = {}
        for key in keys:
            sizes[key] = sizes.get(key, 0) + 1
        counts.append(sum(1 for key in keys if sizes[key] < K))
    return counts


def _columnar_sweep(data, hierarchies, nodes):
    workspace = RecodingWorkspace(data, hierarchies)
    return [workspace.violation_count(node, K) for node in nodes], workspace


def test_bench_recode_lattice_sweep(benchmark, quick, bench_json):
    hierarchies = adult_hierarchies()
    sizes = QUICK_SIZES if quick else FULL_SIZES

    def sweep():
        results = []
        for size in sizes:
            data = _three_qi(size)
            nodes = list(
                RecodingWorkspace(data, hierarchies).lattice.nodes()
            )
            start = time.perf_counter()
            row_counts = _row_plane_sweep(data, hierarchies, nodes)
            row_elapsed = time.perf_counter() - start
            col_times = []
            for _ in range(REPEATS):
                start = time.perf_counter()
                col_counts, workspace = _columnar_sweep(data, hierarchies, nodes)
                col_times.append(time.perf_counter() - start)
            assert row_counts == col_counts, f"planes disagree at N={size}"
            results.append(
                (size, len(nodes), row_elapsed, col_times, workspace)
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    if bench_json:
        cases = [
            {
                "n": size,
                "repeats": REPEATS,
                "p50_wall_s": round(percentile(col_times, 0.50), 6),
                "p95_wall_s": round(percentile(col_times, 0.95), 6),
                "plane_equivalent": True,
            }
            for size, _, _, col_times, _ in results
        ]
        record_trajectory(bench_json, "recode", cases, quick)

    lines = [
        f"{'N':>6}  {'nodes':>5}  {'row rows/s':>12}  {'col rows/s':>12}  {'speedup':>7}"
    ]
    for size, node_count, row_elapsed, col_times, workspace in results:
        swept = size * node_count
        col_elapsed = percentile(col_times, 0.50)
        lines.append(
            f"{size:>6}  {node_count:>5}  {swept / row_elapsed:>12.0f}  "
            f"{swept / col_elapsed:>12.0f}  {row_elapsed / col_elapsed:>6.1f}x"
        )
    stats = results[-1][4].partition_stats
    lines.append(
        f"partitions at N={results[-1][0]}: {stats['fresh']} fresh, "
        f"{stats['derived']} derived incrementally"
    )
    emit(f"recode+measure lattice sweep, k={K}", lines)

    # The incremental path must actually carry the sweep: most nodes derive
    # their partition from a cached finer one instead of regrouping rows.
    assert stats["derived"] > stats["fresh"]
    if not quick:
        size, _, row_elapsed, col_times, _ = results[-1]
        speedup = row_elapsed / percentile(col_times, 0.50)
        assert speedup >= SPEEDUP_FLOOR, (
            f"columnar plane {speedup:.1f}x at N={size}; floor is "
            f"{SPEEDUP_FLOOR}x"
        )
