"""Recode+measure throughput: row plane vs columnar measurement plane.

Sweeps the full generalization lattice of a three-attribute Adult QI
(age × education × marital-status, 72 nodes), counting k-anonymity
violations at every node — the inner loop of Samarati/Incognito/optimal
searches.  The row plane groups generalized tuples through a dict per
node (the pre-columnar implementation); the columnar plane is
:class:`~repro.anonymize.algorithms.base.RecodingWorkspace` with interned
codes, level tables and incremental partitions.  Reports rows/sec for
both planes per N and asserts the planes agree node-for-node; at the
largest N the columnar plane must clear a 5x speedup.

``--quick`` (smoke mode, used by CI) shrinks the sweep to one small N and
drops the speedup floor — it verifies agreement, not throughput.
"""

import time

from repro.anonymize.algorithms.base import RecodingWorkspace
from repro.datasets import adult_dataset, adult_hierarchies
from repro.datasets.schema import AttributeRole
from conftest import emit

QI = ("age", "education", "marital-status")
K = 5
FULL_SIZES = [1000, 5000, 30000]
QUICK_SIZES = [300]
SPEEDUP_FLOOR = 5.0


def _three_qi(size: int):
    data = adult_dataset(size, seed=7)
    roles = {
        name: AttributeRole.INSENSITIVE
        for name in data.schema.quasi_identifier_names
        if name not in QI
    }
    return data.with_roles(roles)


def _row_plane_sweep(data, hierarchies, nodes):
    """Violation counts per node via per-row generalized-tuple grouping."""
    columns = {}
    for name in QI:
        hierarchy = hierarchies[name]
        raw = data.column(name)
        for level in range(hierarchy.height + 1):
            columns[(name, level)] = [
                hierarchy.generalize(value, level)  # lint: disable=REP008
                for value in raw
            ]
    counts = []
    for node in nodes:
        keys = list(zip(*(columns[(name, level)] for name, level in zip(QI, node))))
        sizes: dict = {}
        for key in keys:
            sizes[key] = sizes.get(key, 0) + 1
        counts.append(sum(1 for key in keys if sizes[key] < K))
    return counts


def _columnar_sweep(data, hierarchies, nodes):
    workspace = RecodingWorkspace(data, hierarchies)
    return [workspace.violation_count(node, K) for node in nodes], workspace


def test_bench_recode_lattice_sweep(benchmark, quick):
    hierarchies = adult_hierarchies()
    sizes = QUICK_SIZES if quick else FULL_SIZES

    def sweep():
        results = []
        for size in sizes:
            data = _three_qi(size)
            nodes = list(
                RecodingWorkspace(data, hierarchies).lattice.nodes()
            )
            start = time.perf_counter()
            row_counts = _row_plane_sweep(data, hierarchies, nodes)
            row_elapsed = time.perf_counter() - start
            start = time.perf_counter()
            col_counts, workspace = _columnar_sweep(data, hierarchies, nodes)
            col_elapsed = time.perf_counter() - start
            assert row_counts == col_counts, f"planes disagree at N={size}"
            results.append(
                (size, len(nodes), row_elapsed, col_elapsed, workspace)
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        f"{'N':>6}  {'nodes':>5}  {'row rows/s':>12}  {'col rows/s':>12}  {'speedup':>7}"
    ]
    for size, node_count, row_elapsed, col_elapsed, workspace in results:
        swept = size * node_count
        lines.append(
            f"{size:>6}  {node_count:>5}  {swept / row_elapsed:>12.0f}  "
            f"{swept / col_elapsed:>12.0f}  {row_elapsed / col_elapsed:>6.1f}x"
        )
    stats = results[-1][4].partition_stats
    lines.append(
        f"partitions at N={results[-1][0]}: {stats['fresh']} fresh, "
        f"{stats['derived']} derived incrementally"
    )
    emit(f"recode+measure lattice sweep, k={K}", lines)

    # The incremental path must actually carry the sweep: most nodes derive
    # their partition from a cached finer one instead of regrouping rows.
    assert stats["derived"] > stats["fresh"]
    if not quick:
        size, _, row_elapsed, col_elapsed, _ = results[-1]
        speedup = row_elapsed / col_elapsed
        assert speedup >= SPEEDUP_FLOOR, (
            f"columnar plane {speedup:.1f}x at N={size}; floor is "
            f"{SPEEDUP_FLOOR}x"
        )
